"""Feed-service capacity: fanout-on-write throughput and read latency.

The PR-9 acceptance bar: the end-to-end feed path must absorb a post
stream at 10⁵+ simulated subscribers — every accepted post fanned out
into bounded per-user mailboxes — while staying inside a memory-governor
budget, and serve concurrent cursor reads with bounded tail latency.
This benchmark builds a synthetic subscription universe (``REPRO_FEED_
SUBSCRIBERS`` overrides the scale default), drives the write path, then
hammers the read path from worker threads and reports:

* ``fanout_posts_per_sec`` — write-path throughput (engine decision +
  mailbox fanout, measured over the whole stream);
* ``read_p99_us`` / ``read_p50_us`` — per-page read latency quantiles
  under 8 concurrent readers paging random users.

Writes ``BENCH_feed.json`` at the repo root and regression-gates against
the committed copy: throughput may not drop below ``1 - REPRO_FEED_
TOLERANCE`` (relative, default 0.5) of the committed value, and read p99
may not grow past ``1 + tolerance``× committed. The gate is skipped when
the committed file was measured on a different cpu_count or subscriber
count (the numbers are not comparable). Set ``REPRO_WRITE_BASELINE=1``
to refresh the committed file.
"""

import json
import math
import os
import random
import threading
import time
from pathlib import Path

from conftest import bench_scale

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds
from repro.feed import FeedService, MailboxConfig
from repro.multiuser import SubscriptionTable, make_multiuser
from repro.resilience import GovernorConfig, MemoryGovernor
from repro.service import DiversificationService

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_feed.json"

ALGORITHM = "s_unibin"
AUTHORS = 500
SUBS_PER_USER = 2
POSTS = int(os.environ.get("REPRO_FEED_POSTS", "2000"))
READERS = 8
READS_PER_THREAD = 200
PAGE_LIMIT = 20
SEED = 23

#: Relative slack on the committed throughput/latency baselines.
TOLERANCE = float(os.environ.get("REPRO_FEED_TOLERANCE", "0.5"))

SCALE_SUBSCRIBERS = {"small": 10_000, "medium": 100_000, "large": 250_000}


def subscriber_count() -> int:
    env = os.environ.get("REPRO_FEED_SUBSCRIBERS")
    if env:
        return int(env)
    return SCALE_SUBSCRIBERS.get(bench_scale(), 100_000)


def build_world(users: int):
    """A seeded universe: ``users`` subscribers over ``AUTHORS`` authors,
    each following ``SUBS_PER_USER`` of them (skewed, like real follow
    graphs), and a post stream round-robining the author space."""
    rng = random.Random(SEED)
    authors = list(range(1, AUTHORS + 1))
    graph = AuthorGraph(nodes=authors, edges=[])
    spec = {
        user: rng.sample(authors, SUBS_PER_USER)
        for user in range(100_000_000, 100_000_000 + users)
    }
    subscriptions = SubscriptionTable(spec)
    posts = []
    now = 0.0
    for i in range(POSTS):
        now += rng.random()
        posts.append(
            Post(
                post_id=i,
                author=authors[i % AUTHORS],
                text=f"post {i}",
                timestamp=now,
                fingerprint=rng.getrandbits(64),
            )
        )
    return graph, subscriptions, posts


def _percentile(sorted_values, q: float) -> float:
    index = min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[max(index, 0)]


def _run(users: int):
    graph, subscriptions, posts = build_world(users)
    thresholds = Thresholds(lambda_c=8, lambda_t=120.0, lambda_a=1.0)
    engine = make_multiuser(ALGORITHM, thresholds, graph, subscriptions)
    # Budget: entry/box estimates plus engine windows, with ~40% headroom —
    # tight enough that the governor is a real bound, loose enough that the
    # run must stay at the normal rung to pass.
    from repro.storage.accounting import estimate_mailbox_bytes

    expected_entries = POSTS * SUBS_PER_USER * users // AUTHORS
    budget = int(estimate_mailbox_bytes(users, expected_entries, 0) * 1.4) + (
        64 << 20
    )
    governor = MemoryGovernor(
        engine, GovernorConfig(budget_bytes=budget, check_every=256)
    )
    service = DiversificationService(engine, governor=governor)
    feed = FeedService(
        service,
        mailboxes=MailboxConfig(capacity=64, window=thresholds.lambda_t),
    )
    feed.bind_metrics()

    start = time.perf_counter()
    summary = feed.replay(posts)
    fanout_time = time.perf_counter() - start
    assert summary["shed"] == 0, "no overload controller: nothing may shed"
    assert summary["accepted"] == POSTS

    governor.observe(256)  # final tick so status reflects the full stream
    status = governor.status()
    assert status["level"] == "normal", (
        f"governor escalated to {status['level']}: mailbox bytes "
        f"({feed.store.approx_bytes():,}) blew the budget ({budget:,})"
    )

    # Read path: worker threads page random subscribed users.
    user_ids = sorted(feed.store.users)
    latencies: list[list[float]] = [[] for _ in range(READERS)]
    errors: list[str] = []

    def reader(slot: int) -> None:
        rng = random.Random(SEED + slot)
        bucket = latencies[slot]
        try:
            for _ in range(READS_PER_THREAD):
                user = user_ids[rng.randrange(len(user_ids))]
                t0 = time.perf_counter()
                page = feed.read(user, None, PAGE_LIMIT)
                bucket.append(time.perf_counter() - t0)
                if page.next_cursor is not None:
                    t0 = time.perf_counter()
                    feed.read(user, page.next_cursor, PAGE_LIMIT)
                    bucket.append(time.perf_counter() - t0)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(repr(exc))

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(READERS)]
    read_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    read_time = time.perf_counter() - read_start
    assert not errors, errors

    samples = sorted(s for bucket in latencies for s in bucket)
    feed.close()
    return {
        "benchmark": "feed_capacity",
        "scale": bench_scale(),
        "algorithm": ALGORITHM,
        "cpu_count": os.cpu_count(),
        "subscribers": users,
        "authors": AUTHORS,
        "posts": POSTS,
        "mailbox_capacity": 64,
        "budget_bytes": budget,
        "deliveries": feed.store.deliveries,
        "fanout_amplification": feed.store.deliveries / POSTS,
        "fanout_posts_per_sec": POSTS / fanout_time,
        "mailboxes_materialized": feed.store.mailbox_count,
        "mailbox_bytes": feed.store.approx_bytes(),
        "governor": status,
        "reads": len(samples),
        "readers": READERS,
        "reads_per_sec": len(samples) / read_time,
        "read_p50_us": _percentile(samples, 0.50) * 1e6,
        "read_p99_us": _percentile(samples, 0.99) * 1e6,
    }


def _check_against_committed(result) -> list[str]:
    if not RESULT_PATH.exists():
        return []
    committed = json.loads(RESULT_PATH.read_text())
    if (
        committed.get("cpu_count") != result["cpu_count"]
        or committed.get("subscribers") != result["subscribers"]
    ):
        print(
            "note: committed baseline measured at "
            f"cpu_count={committed.get('cpu_count')}, "
            f"subscribers={committed.get('subscribers')}; gate skipped"
        )
        return []
    failures = []
    floor = committed["fanout_posts_per_sec"] * (1.0 - TOLERANCE)
    if result["fanout_posts_per_sec"] < floor:
        failures.append(
            f"fanout throughput {result['fanout_posts_per_sec']:.0f}/s < "
            f"{floor:.0f}/s (committed "
            f"{committed['fanout_posts_per_sec']:.0f}/s - {TOLERANCE:.0%})"
        )
    ceiling = committed["read_p99_us"] * (1.0 + TOLERANCE)
    if result["read_p99_us"] > ceiling:
        failures.append(
            f"read p99 {result['read_p99_us']:.0f}us > {ceiling:.0f}us "
            f"(committed {committed['read_p99_us']:.0f}us + {TOLERANCE:.0%})"
        )
    return failures


def test_feed_capacity(benchmark):
    users = subscriber_count()
    result = benchmark.pedantic(lambda: _run(users), rounds=1, iterations=1)
    print()
    print(
        f"{ALGORITHM}: {result['subscribers']:,} subscribers x "
        f"{result['posts']} posts -> {result['deliveries']:,} deliveries "
        f"(amplification {result['fanout_amplification']:.1f})"
    )
    print(
        f"write path: {result['fanout_posts_per_sec']:,.0f} posts/s; "
        f"{result['mailboxes_materialized']:,} mailboxes, "
        f"{result['mailbox_bytes'] / 1e6:.1f} MB accounted "
        f"(budget {result['budget_bytes'] / 1e6:.1f} MB, governor "
        f"{result['governor']['level']})"
    )
    print(
        f"read path: {result['readers']} readers, "
        f"{result['reads_per_sec']:,.0f} pages/s, "
        f"p50 {result['read_p50_us']:.0f}us, p99 {result['read_p99_us']:.0f}us"
    )

    failures = _check_against_committed(result)
    assert not failures, "; ".join(failures)

    if os.environ.get("REPRO_WRITE_BASELINE"):
        RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {RESULT_PATH}")
