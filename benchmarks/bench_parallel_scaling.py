"""Parallel scaling: the sharded engine vs the serial S_* baseline.

Measures posts/sec for the serial shared-component engine and for
``ParallelSharedMultiUser`` across worker counts and batch sizes, asserts
the sharded outputs are *identical* to serial (exactness is never traded
for speed), and writes ``BENCH_parallel.json`` at the repo root — the
first entry of the perf trajectory and the baseline the CI smoke step
compares against.

Hardware portability: absolute posts/sec are machine-dependent (this may
run on a single-core container, where extra workers cannot pay for their
IPC), so the committed baseline is compared on *relative* numbers — each
configuration's speedup over the serial run measured in the same process
on the same machine. Override the sweep with
``REPRO_PARALLEL_WORKERS=1,2`` (comma-separated) for quick CI passes.
"""

import json
import os
import time
from pathlib import Path

from conftest import bench_scale

from repro.multiuser import SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

ALGORITHM = "unibin"

#: A committed configuration's speedup may drift this far below the
#: committed value before the run fails (timer noise on small streams).
REGRESSION_TOLERANCE = float(os.environ.get("REPRO_PARALLEL_TOLERANCE", "0.2"))

#: Timing repeats per configuration; the minimum elapsed wins. Scheduler
#: noise on a loaded (or single-core) machine only ever slows a run down,
#: so best-of-N converges on the clean measurement.
REPEATS = int(os.environ.get("REPRO_PARALLEL_REPEATS", "3"))

#: Shard transport under test: "auto" (shm when available), "shm", "pipe".
TRANSPORT = os.environ.get("REPRO_PARALLEL_TRANSPORT", "auto")

#: Absolute speedup floors the sharded engine must clear on a machine
#: with at least that many cores (workers -> floor). On smaller machines
#: the floor is skipped loudly — a 1-core box cannot speed anything up.
SPEEDUP_FLOORS = {2: 1.0, 4: 1.6}


def worker_counts() -> tuple[int, ...]:
    env = os.environ.get("REPRO_PARALLEL_WORKERS")
    if env:
        return tuple(int(token) for token in env.split(","))
    return (1, 2, 4, 8)


def batch_sizes() -> tuple[int, ...]:
    env = os.environ.get("REPRO_PARALLEL_BATCHES")
    if env:
        return tuple(int(token) for token in env.split(","))
    return (64, 512)


def _measure_serial(thresholds, graph, subscriptions, posts):
    best = float("inf")
    receivers = None
    for _ in range(REPEATS):
        engine = SharedComponentMultiUser(ALGORITHM, thresholds, graph, subscriptions)
        start = time.perf_counter()
        receivers = [engine.offer(post) for post in posts]
        best = min(best, time.perf_counter() - start)
    return receivers, best


def _measure_parallel(thresholds, graph, subscriptions, posts, workers, batch):
    best = float("inf")
    received = None
    for _ in range(REPEATS):
        with ParallelSharedMultiUser(
            ALGORITHM,
            thresholds,
            graph,
            subscriptions,
            workers=workers,
            transport=TRANSPORT,
        ) as engine:
            received = []
            start = time.perf_counter()
            for lo in range(0, len(posts), batch):
                received.extend(engine.offer_batch(posts[lo : lo + batch]))
            best = min(best, time.perf_counter() - start)
            effective, imbalance = engine.workers, engine.shard_imbalance()
            transport = engine.transport
    return received, best, effective, imbalance, transport


def _sweep(dataset, thresholds):
    graph = dataset.graph(thresholds.lambda_a)
    subscriptions = dataset.subscriptions()
    posts = dataset.posts

    serial_receivers, serial_time = _measure_serial(
        thresholds, graph, subscriptions, posts
    )
    serial_rate = len(posts) / serial_time
    rows = []
    for workers in worker_counts():
        for batch in batch_sizes():
            received, elapsed, effective, imbalance, transport = _measure_parallel(
                thresholds, graph, subscriptions, posts, workers, batch
            )
            assert received == serial_receivers, (
                f"workers={workers} batch={batch}: sharded output "
                "diverged from serial — exactness broken"
            )
            rows.append(
                {
                    "workers": workers,
                    "effective_workers": effective,
                    "batch_size": batch,
                    "transport": transport,
                    "time_s": elapsed,
                    "posts_per_sec": len(posts) / elapsed,
                    "speedup_vs_serial": serial_time / elapsed,
                    "shard_imbalance": imbalance,
                }
            )
    return {
        "benchmark": "parallel_scaling",
        "scale": bench_scale(),
        "algorithm": ALGORITHM,
        "cpu_count": os.cpu_count(),
        "posts": len(posts),
        "users": len(subscriptions.users),
        "serial": {"time_s": serial_time, "posts_per_sec": serial_rate},
        "parallel": rows,
    }


def _check_against_committed(result) -> list[str]:
    """Relative-regression check vs the committed baseline; returns
    human-readable failures (empty when clean or no baseline exists).
    Speedups only transfer between same-shaped machines: a baseline
    recorded with a different core count is skipped loudly."""
    if not RESULT_PATH.exists():
        return []
    committed = json.loads(RESULT_PATH.read_text())
    committed_cpus = committed.get("cpu_count")
    if committed_cpus != result["cpu_count"]:
        print(
            f"SKIPPING committed-baseline speedup check: baseline recorded "
            f"with cpu_count={committed_cpus}, this machine has "
            f"cpu_count={result['cpu_count']} — speedups do not transfer"
        )
        return []
    baseline = {
        (row["workers"], row["batch_size"]): row["speedup_vs_serial"]
        for row in committed.get("parallel", ())
    }
    failures = []
    for row in result["parallel"]:
        expected = baseline.get((row["workers"], row["batch_size"]))
        if expected is None:
            continue
        floor = expected * (1.0 - REGRESSION_TOLERANCE)
        if row["speedup_vs_serial"] < floor:
            failures.append(
                f"workers={row['workers']} batch={row['batch_size']}: "
                f"speedup {row['speedup_vs_serial']:.3f} < "
                f"{floor:.3f} (committed {expected:.3f} - "
                f"{REGRESSION_TOLERANCE:.0%})"
            )
    return failures


def _check_speedup_floors(result) -> list[str]:
    """Absolute speedup floors (the PR gate): parallel must actually beat
    serial on machines with the cores to do it. Skips loudly on machines
    too small for a configuration (extra workers cannot pay for their IPC
    without cores to run on)."""
    cpus = result["cpu_count"] or 1
    best: dict[int, float] = {}
    for row in result["parallel"]:
        w = row["workers"]
        best[w] = max(best.get(w, 0.0), row["speedup_vs_serial"])
    failures = []
    for workers, floor in sorted(SPEEDUP_FLOORS.items()):
        if workers not in best:
            continue
        if cpus < workers:
            print(
                f"SKIPPING speedup floor {floor:.1f}x at workers={workers}: "
                f"machine has only cpu_count={cpus}"
            )
            continue
        if best[workers] < floor:
            failures.append(
                f"workers={workers}: best speedup {best[workers]:.3f} < "
                f"required floor {floor:.1f} (cpu_count={cpus})"
            )
    return failures


def test_parallel_scaling(benchmark, dataset, thresholds):
    result = benchmark.pedantic(
        lambda: _sweep(dataset, thresholds),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"serial {ALGORITHM}: {result['serial']['posts_per_sec']:,.0f} posts/s "
        f"({result['posts']} posts, {result['users']} users, "
        f"cpu_count={result['cpu_count']})"
    )
    for row in result["parallel"]:
        print(
            f"workers={row['workers']:>2} (effective {row['effective_workers']}) "
            f"batch={row['batch_size']:>5} [{row.get('transport', '?')}]: "
            f"{row['posts_per_sec']:>10,.0f} posts/s "
            f"speedup {row['speedup_vs_serial']:.2f}x "
            f"imbalance {row['shard_imbalance']:.3f}"
        )

    failures = _check_against_committed(result)
    failures += _check_speedup_floors(result)
    # A narrowed sweep (CI smoke) must not truncate the committed
    # baseline: carry over rows for configurations not re-measured.
    if RESULT_PATH.exists():
        measured = {(r["workers"], r["batch_size"]) for r in result["parallel"]}
        carried = [
            row
            for row in json.loads(RESULT_PATH.read_text()).get("parallel", ())
            if (row["workers"], row["batch_size"]) not in measured
        ]
        result["parallel"] = sorted(
            result["parallel"] + carried,
            key=lambda row: (row["workers"], row["batch_size"]),
        )
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")
    assert not failures, "; ".join(failures)
