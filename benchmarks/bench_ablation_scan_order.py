"""Ablation: newest-first vs oldest-first bin scan order.

The paper scans "from the most recent post to the older ones". Duplicates
cluster in time near their source, so the newest-first scan short-circuits
sooner; the output Z is identical either way (the greedy rule only asks
whether *any* covering post exists).
"""

from conftest import show

from repro.core import Thresholds, make_diversifier
from repro.eval.ablations import ablation_scan_order


def test_ablation_scan_order(benchmark, dataset, thresholds):
    graph = dataset.graph(thresholds.lambda_a)

    def run_newest_first():
        algo = make_diversifier("unibin", thresholds, graph, newest_first=True)
        return len(algo.diversify(dataset.posts))

    benchmark.pedantic(run_newest_first, rounds=1, iterations=1)
    result = ablation_scan_order(dataset, thresholds=thresholds)
    show(result)

    newest, oldest = result.rows
    assert newest["admitted"] == oldest["admitted"]
    assert newest["comparisons"] <= oldest["comparisons"]
