"""Figure 9: author similarity distribution (CCDF).

Paper: 2.3% of author pairs have similarity ≥ 0.2 and 0.6% ≥ 0.3 — a
heavy-tailed distribution where a small fraction of pairs are similar.
"""

from conftest import show

from repro.eval import author_similarity_ccdf
from repro.eval.experiments import figure9_author_similarity


def test_fig09_author_similarity(benchmark, dataset):
    ccdf = benchmark.pedantic(
        lambda: author_similarity_ccdf(dataset.vectors), rounds=1, iterations=1
    )
    show(figure9_author_similarity(dataset))

    fractions = list(ccdf.fractions)
    assert all(a >= b for a, b in zip(fractions, fractions[1:]))
    # Heavy tail in the paper's ballpark: a few percent at 0.2, well under
    # at 0.3, and a tiny residue at 0.7.
    assert 0.001 <= ccdf.fraction_at_least(0.2) <= 0.1
    assert ccdf.fraction_at_least(0.3) < ccdf.fraction_at_least(0.2)
    assert ccdf.fraction_at_least(0.7) < 0.01
