"""Dynamic topology: incremental migration vs teardown-and-rebuild.

Feeds the same mixed post/follow/unfollow stream (sustained churn woven
into the dataset's post stream) to :class:`~repro.dynamic.DynamicMultiUser`
and to :class:`~repro.dynamic.RebuildMultiUser` — the brute-force baseline
that rebuilds every per-user engine on each effective topology change.
Asserts the two deliver *identical* receiver sets post-for-post (the
rebuild-equivalence bar, at benchmark scale), then compares events/sec.

Writes ``BENCH_dynamic.json`` at the repo root; the CI smoke step re-runs
at small scale and fails if incremental maintenance stops beating the
full rebuild or its advantage regresses below the committed baseline.

Hardware portability: absolute rates are machine-dependent, so the
committed numbers are compared on the *relative* speedup of incremental
over rebuild, measured in the same process on the same machine.
"""

import json
import os
import time
from pathlib import Path

from conftest import bench_scale

from repro.dynamic import DynamicMultiUser, RebuildMultiUser
from repro.social import ChurnConfig, interleave_churn

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dynamic.json"

ALGORITHMS = ("neighborbin", "cliquebin")

#: Sustained churn: mean topology events per post.
CHURN_RATE = float(os.environ.get("REPRO_DYNAMIC_CHURN", "0.05"))

#: Posts drawn from the dataset stream (the rebuild baseline is O(users)
#: per effective delta — the cap keeps the slow arm bounded at any scale).
POST_CAP = int(os.environ.get("REPRO_DYNAMIC_POSTS", "1000"))

#: A committed configuration's speedup may drift this far below the
#: committed value before the run fails (timer noise).
REGRESSION_TOLERANCE = float(os.environ.get("REPRO_DYNAMIC_TOLERANCE", "0.3"))

#: Timing repeats for the incremental arm; best-of-N (noise only slows).
REPEATS = int(os.environ.get("REPRO_DYNAMIC_REPEATS", "2"))


def _world(dataset, thresholds):
    sampled = set(dataset.authors)
    friends = {
        author: dataset.network.followees[author] & sampled
        for author in dataset.authors
    }
    posts = dataset.posts[:POST_CAP]
    events = list(
        interleave_churn(posts, friends, ChurnConfig(rate=CHURN_RATE))
    )
    return friends, dataset.subscriptions(), events


def _run_rebuild(algorithm, thresholds, friends, subscriptions, events):
    engine = RebuildMultiUser(algorithm, thresholds, dict(friends), subscriptions)
    start = time.perf_counter()
    receivers = [engine.apply(event) for event in events]
    elapsed = time.perf_counter() - start
    return receivers, elapsed, engine.rebuilds


def _run_dynamic(algorithm, thresholds, friends, subscriptions, events):
    best = float("inf")
    receivers = None
    migrations = 0
    for _ in range(REPEATS):
        engine = DynamicMultiUser(
            algorithm, thresholds, dict(friends), subscriptions
        )
        start = time.perf_counter()
        receivers = [engine.apply(event) for event in events]
        best = min(best, time.perf_counter() - start)
        migrations = engine.migrations
    return receivers, best, migrations


def _sweep(dataset, thresholds):
    friends, subscriptions, events = _world(dataset, thresholds)
    churn = sum(1 for e in events if not hasattr(e, "post_id"))
    rows = []
    for algorithm in ALGORITHMS:
        rebuilt, rebuild_time, rebuilds = _run_rebuild(
            algorithm, thresholds, friends, subscriptions, events
        )
        incremental, dynamic_time, migrations = _run_dynamic(
            algorithm, thresholds, friends, subscriptions, events
        )
        assert incremental == rebuilt, (
            f"{algorithm}: incremental receivers diverged from the "
            "teardown-and-rebuild baseline — exactness broken"
        )
        rows.append(
            {
                "algorithm": algorithm,
                "migrations": migrations,
                "rebuilds": rebuilds,
                "dynamic_time_s": dynamic_time,
                "rebuild_time_s": rebuild_time,
                "dynamic_events_per_sec": len(events) / dynamic_time,
                "rebuild_events_per_sec": len(events) / rebuild_time,
                "speedup_vs_rebuild": rebuild_time / dynamic_time,
            }
        )
    return {
        "benchmark": "dynamic_topology",
        "scale": bench_scale(),
        "churn_rate": CHURN_RATE,
        "events": len(events),
        "churn_events": churn,
        "users": len(subscriptions.users),
        "rows": rows,
    }


def _check_against_committed(result) -> list[str]:
    """Relative-regression check vs the committed baseline; returns
    human-readable failures (empty when clean or no baseline exists)."""
    if not RESULT_PATH.exists():
        return []
    committed = json.loads(RESULT_PATH.read_text())
    baseline = {
        (committed.get("scale"), row["algorithm"]): row["speedup_vs_rebuild"]
        for row in committed.get("rows", ())
    }
    failures = []
    for row in result["rows"]:
        expected = baseline.get((result["scale"], row["algorithm"]))
        if expected is None:
            continue
        floor = expected * (1.0 - REGRESSION_TOLERANCE)
        if row["speedup_vs_rebuild"] < floor:
            failures.append(
                f"{row['algorithm']}: speedup {row['speedup_vs_rebuild']:.2f} "
                f"< {floor:.2f} (committed {expected:.2f} - "
                f"{REGRESSION_TOLERANCE:.0%})"
            )
    return failures


def test_dynamic_topology(benchmark, dataset, thresholds):
    result = benchmark.pedantic(
        lambda: _sweep(dataset, thresholds), rounds=1, iterations=1
    )
    print()
    print(
        f"{result['events']} events ({result['churn_events']} churn, "
        f"rate {result['churn_rate']}), {result['users']} users"
    )
    for row in result["rows"]:
        print(
            f"{row['algorithm']:>12}: incremental "
            f"{row['dynamic_events_per_sec']:>9,.0f} ev/s "
            f"({row['migrations']} migrations) vs rebuild "
            f"{row['rebuild_events_per_sec']:>9,.0f} ev/s "
            f"({row['rebuilds']} rebuilds) — "
            f"speedup {row['speedup_vs_rebuild']:.2f}x"
        )

    for row in result["rows"]:
        assert row["speedup_vs_rebuild"] > 1.0, (
            f"{row['algorithm']}: incremental maintenance "
            f"({row['dynamic_events_per_sec']:,.0f} ev/s) failed to beat "
            f"the full rebuild ({row['rebuild_events_per_sec']:,.0f} ev/s)"
        )

    failures = _check_against_committed(result)
    # Only overwrite the baseline when re-measuring the committed scale.
    if RESULT_PATH.exists():
        committed = json.loads(RESULT_PATH.read_text())
        if committed.get("scale") != result["scale"]:
            print(
                f"(scale {result['scale']} != committed "
                f"{committed.get('scale')}; baseline left untouched)"
            )
            assert not failures, "; ".join(failures)
            return
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")
    assert not failures, "; ".join(failures)
