"""Table 4: use-case → algorithm guidance, validated empirically.

Paper: UniBin for very small λt / low throughput / dense G / tight RAM;
NeighborBin for large λt, sparse G, high throughput; CliqueBin for
moderate λt, sparse G, high throughput. The benchmark asks the advisor
for each regime and then *runs* the regime to confirm the recommended
algorithm is not beaten badly on its decisive metric.
"""

from conftest import show

from repro.core import Thresholds, WorkloadProfile, recommend
from repro.eval import compare_algorithms
from repro.eval.experiments import table4_use_cases


def test_table4_advisor(benchmark, dataset):
    show(table4_use_cases())

    graph = dataset.graph(0.7)

    def advise_and_run():
        # The three regimes of Table 4, with paper-scale throughputs
        # (the paper's stream is ~4,400 posts per 30-minute window).
        results = {}
        for label, profile in [
            ("low_throughput", WorkloadProfile(1800.0, 0.7, posts_per_window=20.0)),
            ("moderate_lambda_t", WorkloadProfile(600.0, 0.7, posts_per_window=1500.0)),
            ("large_lambda_t", WorkloadProfile(3600.0, 0.7, posts_per_window=9000.0)),
        ]:
            results[label] = recommend(profile).algorithm
        return results

    choices = benchmark.pedantic(advise_and_run, rounds=1, iterations=1)
    assert choices["low_throughput"] == "unibin"
    assert choices["moderate_lambda_t"] == "cliquebin"
    assert choices["large_lambda_t"] == "neighborbin"

    # Empirical spot-check of the low-throughput rule: on a 1% stream,
    # UniBin must not do more total bin work than the alternatives.
    sampled = dataset.stream.subsample_posts(0.01)
    runs = {
        r.algorithm: r for r in compare_algorithms(Thresholds(), graph, sampled.posts)
    }
    uni_ops = runs["unibin"].comparisons + runs["unibin"].insertions
    for algo in ("neighborbin", "cliquebin"):
        assert uni_ops <= runs[algo].comparisons + runs[algo].insertions
