"""Bounded-memory operation: the spill rung under a real budget.

The PR-6 acceptance bar: a multi-user run under ``--memory-budget`` must
stay inside its accounted budget by *spilling* — the verdict-neutral
rung — and deliver receiver sets byte-equal to the unbounded all-in-RAM
run. This benchmark drives the same synthetic dataset through both
configurations and asserts:

* the governor never climbs past ``spill`` (so equality is structural,
  not luck — the probe rung is allowed to change verdicts);
* receiver sets, aggregate stats and stored copies are byte-identical;
* the bounded run's peak accounted bytes land well under the unbounded
  peak (the whole point of the tiered store).

Writes ``BENCH_memory.json`` at the repo root and regression-gates
against the committed copy: the peak-memory reduction ratio may not
worsen by more than ``REPRO_MEMORY_TOLERANCE`` (absolute, default 0.15),
and the tiered run's time overhead over in-memory may not grow more than
``REPRO_MEMORY_TIME_TOLERANCE`` (absolute, default 2.0 — segment I/O is
disk- and machine-dependent, and the in-memory denominator is fast).
Peak RSS is reported but never gated.
"""

import json
import os
import resource
import time
from pathlib import Path

from conftest import bench_scale

from repro.multiuser import make_multiuser
from repro.resilience import GovernorConfig, MemoryGovernor
from repro.storage import SpillConfig

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_memory.json"

ALGORITHM = "s_unibin"
BATCH = int(os.environ.get("REPRO_MEMORY_BATCH", "64"))

#: Absolute growth allowed on the committed peak-reduction ratio.
REDUCTION_TOLERANCE = float(os.environ.get("REPRO_MEMORY_TOLERANCE", "0.15"))
#: Absolute growth allowed on the committed tiered-time overhead.
TIME_TOLERANCE = float(os.environ.get("REPRO_MEMORY_TIME_TOLERANCE", "2.0"))


def _run_stream(engine, posts, governor=None):
    """Feed the stream in batches, tracking peak accounted bytes at the
    same cadence for every configuration."""
    received = []
    peak = 0
    start = time.perf_counter()
    for lo in range(0, len(posts), BATCH):
        chunk = posts[lo : lo + BATCH]
        received.extend(engine.offer_batch(chunk))
        if governor is not None:
            governor.observe(len(chunk))
        peak = max(peak, sum(engine.memory_breakdown().values()))
    return received, peak, time.perf_counter() - start


def _sweep(dataset, thresholds, tmp_path):
    graph = dataset.graph(thresholds.lambda_a)
    subscriptions = dataset.subscriptions()
    posts = dataset.posts

    unbounded = make_multiuser(ALGORITHM, thresholds, graph, subscriptions)
    expected, unbounded_peak, unbounded_time = _run_stream(unbounded, posts)

    # Calibrate the spill floor: the peak accounted bytes the governor will
    # observe at tick time when every tick spills (heads accumulated over one
    # batch plus the 24-byte stubs for everything already on disk). The
    # budget goes midway between that floor and the unbounded peak, so the
    # ladder engages but the spill rung alone satisfies it — never `probe`,
    # which is allowed to change verdicts.
    calib = make_multiuser(
        ALGORITHM,
        thresholds,
        graph,
        subscriptions,
        storage=SpillConfig(str(tmp_path / "calib"), head_limit=64, segment_size=32),
    )
    spill_floor = 0
    for lo in range(0, len(posts), BATCH):
        calib.offer_batch(posts[lo : lo + BATCH])
        spill_floor = max(spill_floor, sum(calib.memory_breakdown().values()))
        calib.spill()
    assert spill_floor < unbounded_peak, (
        "dataset too small: spilling cannot reduce the accounted peak"
    )
    budget = (spill_floor + unbounded_peak) // 2
    bounded = make_multiuser(
        ALGORITHM,
        thresholds,
        graph,
        subscriptions,
        storage=SpillConfig(str(tmp_path), head_limit=64, segment_size=32),
    )
    governor = MemoryGovernor(
        bounded, GovernorConfig(budget_bytes=budget, check_every=BATCH)
    )
    received, bounded_peak, bounded_time = _run_stream(bounded, posts, governor)

    assert received == expected, (
        "bounded receiver sets diverged from the unbounded run — the spill "
        "rung must be verdict-neutral"
    )
    assert (
        bounded.aggregate_stats().snapshot() == unbounded.aggregate_stats().snapshot()
    ), "bounded aggregate stats diverged from the unbounded run"
    assert bounded.stored_copies() == unbounded.stored_copies()
    levels = {t.level for t in governor.transitions}
    assert "probe" not in levels and "shed" not in levels, (
        f"governor climbed past spill ({sorted(levels)}): the budget is too "
        "tight for a verdict-neutral comparison"
    )
    assert governor.escalations >= 1, "budget never engaged the ladder"
    assert bounded_peak < unbounded_peak, "spilling did not reduce peak bytes"

    return {
        "benchmark": "memory_bounded",
        "scale": bench_scale(),
        "algorithm": ALGORITHM,
        "posts": len(posts),
        "users": len(subscriptions.users),
        "batch_size": BATCH,
        "budget_bytes": budget,
        "unbounded": {
            "peak_accounted_bytes": unbounded_peak,
            "time_s": unbounded_time,
        },
        "bounded": {
            "peak_accounted_bytes": bounded_peak,
            "time_s": bounded_time,
            "time_overhead_vs_unbounded": bounded_time / unbounded_time - 1.0,
            "governor": governor.status(),
        },
        "peak_reduction_ratio": bounded_peak / unbounded_peak,
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _check_against_committed(result) -> list[str]:
    if not RESULT_PATH.exists():
        return []
    committed = json.loads(RESULT_PATH.read_text())
    failures = []
    measured = result["peak_reduction_ratio"]
    ceiling = committed["peak_reduction_ratio"] + REDUCTION_TOLERANCE
    if measured > ceiling:
        failures.append(
            f"peak-memory reduction ratio {measured:.3f} > {ceiling:.3f} "
            f"(committed {committed['peak_reduction_ratio']:.3f} "
            f"+ {REDUCTION_TOLERANCE})"
        )
    measured_overhead = result["bounded"]["time_overhead_vs_unbounded"]
    baseline = max(committed["bounded"]["time_overhead_vs_unbounded"], 0.0)
    if measured_overhead > baseline + TIME_TOLERANCE:
        failures.append(
            f"tiered time overhead {measured_overhead:.3f} > "
            f"{baseline + TIME_TOLERANCE:.3f} "
            f"(committed {baseline:.3f} + {TIME_TOLERANCE})"
        )
    return failures


def test_memory_bounded(benchmark, dataset, thresholds, tmp_path):
    result = benchmark.pedantic(
        lambda: _sweep(dataset, thresholds, tmp_path),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"{ALGORITHM}, batch {result['batch_size']} "
        f"({result['posts']} posts, {result['users']} users, "
        f"budget {result['budget_bytes']:,} accounted bytes)"
    )
    print(
        f"peak accounted bytes: unbounded {result['unbounded']['peak_accounted_bytes']:,}  "
        f"bounded {result['bounded']['peak_accounted_bytes']:,}  "
        f"(ratio {result['peak_reduction_ratio']:.3f})"
    )
    governor = result["bounded"]["governor"]
    print(
        f"governor: level {governor['level']}, {governor['ticks']} ticks, "
        f"{governor['escalations']} escalations / {governor['releases']} releases; "
        f"time overhead {result['bounded']['time_overhead_vs_unbounded']:+.1%}; "
        f"peak RSS {result['peak_rss_kib'] / 1024:.0f} MiB"
    )

    failures = _check_against_committed(result)
    assert not failures, "; ".join(failures)

    if os.environ.get("REPRO_WRITE_BASELINE"):
        RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {RESULT_PATH}")
