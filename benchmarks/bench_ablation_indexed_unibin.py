"""Ablation: index-accelerated UniBin across content thresholds.

Quantifies the regime boundary behind §3's design decision from the
diversifier's point of view: at small λc the pigeonhole index slashes
UniBin's verified candidates; at the paper's λc = 18 it buys little (and
pays index maintenance), which is why the paper's algorithms use
author/time pruning instead.
"""

from conftest import show

from repro.eval import ablation_indexed_unibin


def test_ablation_indexed_unibin(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: ablation_indexed_unibin(dataset), rounds=1, iterations=1
    )
    show(result)

    by_lc = {r["lambda_c"]: r for r in result.rows}
    # Small radius: the index removes almost all candidate verifications.
    assert by_lc[3]["candidate_reduction"] > 0.95
    # The advantage shrinks monotonically toward the paper's lambda_c=18.
    reductions = [by_lc[lc]["candidate_reduction"] for lc in sorted(by_lc)]
    assert reductions == sorted(reductions, reverse=True)
    # And at small lambda_c the indexed variant also wins on wall time.
    assert by_lc[3]["indexed_time_s"] < by_lc[3]["unibin_time_s"]
