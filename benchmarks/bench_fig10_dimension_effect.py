"""Figure 10: posts left after diversification, by dimension subset.

Paper: all three dimensions at the default thresholds prune ~10% of the
stream; removing any dimension changes the retained count substantially
(each dimension has bite).
"""

from conftest import show

from repro.eval.experiments import figure10_dimension_effect

MAX_POSTS = 3000  # the time-disabled variant scans quadratically


def test_fig10_dimension_effect(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure10_dimension_effect(dataset, max_posts=MAX_POSTS),
        rounds=1,
        iterations=1,
    )
    show(result)

    by_label = {r["dimensions"]: r for r in result.rows}
    full = by_label["content+time+author"]
    # Paper's headline: roughly 10% pruned with all three dimensions.
    assert 2.0 <= full["pruned_pct"] <= 25.0
    # Every relaxed variant prunes at least as much.
    for label, row in by_label.items():
        if "off" in label or "only" in label:
            assert row["posts_left"] <= full["posts_left"]
    # And each dimension individually matters (visible change when removed).
    assert by_label["time+author (content off)"]["posts_left"] < full["posts_left"]
    assert by_label["content+author (time off)"]["posts_left"] < full["posts_left"]
    assert by_label["content+time (author off)"]["posts_left"] < full["posts_left"]
