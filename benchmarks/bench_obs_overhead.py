"""Observability overhead: instrumented vs unbound offer path.

The obs layer promises to be (a) free when disabled — the default engine
runs the byte-identical pre-instrumentation code apart from one attribute
check — and (b) cheap when enabled, since counters are collection-time
callbacks and only the two per-event histograms (latency, scan width) sit
on the hot path. This benchmark replays the same stream through both
configurations (min-of-rounds, interleaved) and asserts the enabled
overhead stays under 10%.
"""

import time

from conftest import bench_scale

from repro.core import Thresholds, make_diversifier
from repro.eval import default_dataset
from repro.obs import Registry

ROUNDS = 5
OVERHEAD_BUDGET = 0.10


def _replay_seconds(posts, graph, thresholds, *, registry) -> float:
    engine = make_diversifier("unibin", thresholds, graph)
    if registry is not None:
        engine.bind_metrics(registry)
    start = time.perf_counter()
    for post in posts:
        engine.offer(post)
    return time.perf_counter() - start


def test_obs_overhead_under_budget(benchmark):
    dataset = default_dataset(bench_scale())
    thresholds = Thresholds()
    graph = dataset.graph(thresholds.lambda_a)
    posts = dataset.posts

    # Interleave rounds so frequency scaling and cache state hit both arms
    # equally; min-of-rounds discards scheduler noise.
    plain_times, instrumented_times = [], []
    for _ in range(ROUNDS):
        plain_times.append(
            _replay_seconds(posts, graph, thresholds, registry=None)
        )
        instrumented_times.append(
            _replay_seconds(posts, graph, thresholds, registry=Registry())
        )
    plain = min(plain_times)
    instrumented = min(instrumented_times)
    overhead = instrumented / plain - 1.0

    benchmark.pedantic(
        lambda: _replay_seconds(posts, graph, thresholds, registry=Registry()),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nplain {plain * 1e3:.1f} ms, instrumented {instrumented * 1e3:.1f} ms "
        f"-> overhead {overhead * 100:+.1f}% (budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"instrumentation overhead {overhead * 100:.1f}% exceeds the "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget"
    )
