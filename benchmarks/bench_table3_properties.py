"""Table 3: qualitative algorithm comparison — validated against a run.

Paper: UniBin Low RAM / High comparisons / Low insertions; NeighborBin
High/Low/High; CliqueBin Moderate/Moderate/Moderate. The benchmark runs
the three algorithms at the defaults and checks the measured quantities
realise the claimed Low < Moderate < High orderings.
"""

from conftest import show

from repro.eval import compare_algorithms
from repro.eval.experiments import table3_properties


def test_table3_properties(benchmark, dataset, thresholds):
    graph = dataset.graph(thresholds.lambda_a)
    runs = benchmark.pedantic(
        lambda: compare_algorithms(thresholds, graph, dataset.posts),
        rounds=1,
        iterations=1,
    )
    show(table3_properties())

    by_name = {r.algorithm: r for r in runs}
    uni, neigh, clique = (
        by_name["unibin"],
        by_name["neighborbin"],
        by_name["cliquebin"],
    )
    # RAM: Low (uni) < Moderate (clique) < High (neighbor).
    assert uni.peak_stored_copies < clique.peak_stored_copies < neigh.peak_stored_copies
    # Comparisons: Low (neighbor) < Moderate (clique) < High (uni).
    assert neigh.comparisons < clique.comparisons < uni.comparisons
    # Insertions: Low (uni) < Moderate (clique) < High (neighbor).
    assert uni.insertions < clique.insertions < neigh.insertions
