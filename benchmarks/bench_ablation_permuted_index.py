"""Ablation: the pigeonhole SimHash index across Hamming radii.

The paper (§3, end) rejects the Manku-style index for λc = 18 because the
table count/candidate volume explodes with the radius. This benchmark
measures exactly that collapse: candidate fraction per query vs radius.
"""

from conftest import show

from repro.eval.ablations import ablation_permuted_index


def test_ablation_permuted_index(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_permuted_index(
            radii=(2, 4, 6, 10, 14, 18), n_fingerprints=3000, n_queries=300
        ),
        rounds=1,
        iterations=1,
    )
    show(result)

    by_radius = {r["radius"]: r for r in result.rows}
    # Small radius: the index prunes candidates by an order of magnitude.
    assert by_radius[2]["candidate_fraction"] < 0.15
    # The paper's regime: at radius 18 the index is no better than a scan.
    assert by_radius[18]["candidate_fraction"] > 0.5
    # Monotone collapse.
    fractions = [by_radius[r]["candidate_fraction"] for r in (2, 4, 6, 10, 14, 18)]
    assert fractions == sorted(fractions)
