"""Flash-crowd burst behaviour: the firehose motivation, measured.

A breaking-news burst multiplies the arrival rate 9× for half an hour.
Pruning and resident memory must spike inside the burst and relax after,
with the coverage guarantee intact throughout.
"""

from conftest import show

from repro.eval import burst_behaviour


def test_burst_behaviour(benchmark):
    result = benchmark.pedantic(lambda: burst_behaviour(), rounds=1, iterations=1)
    show(result)

    assert result.parameters["coverage_violations"] == 0

    center = result.parameters["burst_center_s"]
    width = result.parameters["burst_width_s"]
    in_burst = [
        r
        for r in result.rows
        if r["window_start"] < center + width / 2
        and r["window_end"] > center - width / 2
    ]
    outside = [r for r in result.rows if r not in in_burst]
    assert in_burst and outside

    def mean(rows, key):
        return sum(float(r[key]) for r in rows) / len(rows)

    # The burst windows carry several times the baseline arrivals…
    assert mean(in_burst, "arrivals") > 3 * mean(outside, "arrivals")
    # …prune harder (echo storms are redundant)…
    assert mean(in_burst, "prune_rate") > mean(outside, "prune_rate")
    # …and the engine's footprint relaxes after the burst passes.
    last = result.rows[-1]
    peak = max(int(r["stored_copies"]) for r in result.rows)
    assert int(last["stored_copies"]) < peak / 2
