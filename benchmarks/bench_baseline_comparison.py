"""§7 comparison: SPSD vs MaxMin top-k vs leader stream clustering.

The paper argues in prose that the prior models cannot provide its
guarantees; this benchmark runs all three on the same stream and asserts
the measurable form of that argument.
"""

from conftest import show

from repro.core import Thresholds
from repro.eval.ablations import baseline_comparison


def test_baseline_comparison(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: baseline_comparison(dataset, thresholds=Thresholds()),
        rounds=1,
        iterations=1,
    )
    show(result)

    rows = {r["method"]: r for r in result.rows}
    # SPSD's defining property: not one uncovered post.
    assert rows["spsd_unibin"]["coverage_violations"] == 0
    # Budgeted top-k abandons coverage wholesale.
    assert rows["maxmin_top_k"]["coverage_violations"] > 0
    # Content-only clustering over-prunes across author/time.
    assert rows["leader_clustering"]["coverage_violations"] > 0
    assert (
        rows["leader_clustering"]["collateral_prunes"]
        > rows["spsd_unibin"]["collateral_prunes"]
    )
