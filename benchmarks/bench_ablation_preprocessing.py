"""Ablation: §3's extra preprocessing trials.

Paper: "expanding shortened URLs, varying the weights of user mentions and
hashtags …, and expanding abbreviations … had no significant impact to the
precision and recall." The benchmark re-measures every variant's crossover
F1 against plain normalisation.
"""

from conftest import show

from repro.eval import ablation_preprocessing


def test_ablation_preprocessing(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_preprocessing(pairs_per_distance=25),
        rounds=1,
        iterations=1,
    )
    show(result)

    for row in result.rows:
        assert abs(row["delta_f1_vs_default"]) < 0.08, (
            f"{row['variant']} moved F1 by {row['delta_f1_vs_default']}"
        )
