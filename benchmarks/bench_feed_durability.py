"""Feed durability: WAL write-path overhead and recovery replay speed.

The PR-10 acceptance bar: crash-safe mailbox persistence must be cheap
enough to leave on — fanout throughput with the write-ahead log enabled
(group-commit ``fsync="interval"``, the production default) may cost at
most 15% over the WAL-off path at reference amplification — and a
restart must finish its replay inside an operational budget
(``snapshot_every`` bounds the tail a recovery ever pays, so the
benchmark's full-log replay is the worst case).

Methodology: every timed run executes in a **fresh subprocess**. Timing
base and WAL paths sequentially inside one interpreter is systematically
biased — each 100k-mailbox run bloats the heap and slows whichever mode
runs later by more than the WAL signal itself — and cycle-GC pauses land
arbitrarily; children therefore time a single run each with GC disabled,
and the parent takes best-of-``ROUNDS`` per mode. Every child also
reports a SHA-256 of its final mailbox state: base, WAL and recovered
runs must agree byte-for-byte before any number is trusted.

Reports:

* ``wal_overhead`` — relative fanout slowdown with the WAL on (gated
  <15% at reference scale; below it the absolute per-post budget
  ``wal_cost_us_per_post`` gates instead, because tiny-fanout baselines
  make any fixed cost look huge relatively);
* ``recovery_seconds`` — wall-clock full-log replay (gated by
  ``RECOVERY_BUDGET_SECONDS``);
* ``recovery_replay_speedup`` — replay rate over live WAL-on ingest
  rate (informational; tracked in the trajectory).

Writes ``BENCH_durability.json`` at the repo root and regression-gates
against the committed copy with relative slack ``REPRO_FEED_TOLERANCE``
(default 0.5); the gate is skipped when the committed file was measured
at a different cpu_count or subscriber count. Set
``REPRO_WRITE_BASELINE=1`` to refresh the committed file.
"""

import gc
import hashlib
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import bench_scale

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds
from repro.feed import DurabilityConfig, FeedService, MailboxConfig
from repro.multiuser import SubscriptionTable, make_multiuser
from repro.service import DiversificationService

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_durability.json"

ALGORITHM = "s_unibin"
AUTHORS = 500
SUBS_PER_USER = 2
POSTS = int(os.environ.get("REPRO_FEED_POSTS", "1000"))
ROUNDS = 3
SEED = 29

#: The durability budget: at reference scale the log may cost at most
#: this much of fanout throughput, relative.
WAL_OVERHEAD_CEILING = 0.15
#: Reference scale for the relative gate (fanout amplification 400, the
#: capacity benchmark's world). Below it the per-post fanout is so cheap
#: that a fixed WAL cost dominates any ratio, so the absolute budget
#: gates instead — it is what implies <15% at reference amplification.
REFERENCE_SUBSCRIBERS = 100_000
WAL_COST_CEILING_US = 150.0
#: Operational restart budget for the full-log replay at this scale
#: (production replays are bounded by ``snapshot_every``, a fraction of
#: this log).
RECOVERY_BUDGET_SECONDS = 10.0

#: Relative slack on the committed baselines.
TOLERANCE = float(os.environ.get("REPRO_FEED_TOLERANCE", "0.5"))

SCALE_SUBSCRIBERS = {"small": 10_000, "medium": 100_000, "large": 250_000}


def subscriber_count() -> int:
    env = os.environ.get("REPRO_FEED_SUBSCRIBERS")
    if env:
        return int(env)
    return SCALE_SUBSCRIBERS.get(bench_scale(), 100_000)


def build_world(users: int):
    rng = random.Random(SEED)
    authors = list(range(1, AUTHORS + 1))
    graph = AuthorGraph(nodes=authors, edges=[])
    spec = {
        user: rng.sample(authors, SUBS_PER_USER)
        for user in range(100_000_000, 100_000_000 + users)
    }
    subscriptions = SubscriptionTable(spec)
    posts = []
    now = 0.0
    for i in range(POSTS):
        now += rng.random()
        posts.append(
            Post(
                post_id=i,
                author=authors[i % AUTHORS],
                text=f"post {i}",
                timestamp=now,
                fingerprint=rng.getrandbits(64),
            )
        )
    return graph, subscriptions, posts


def build_feed(graph, subscriptions, wal_dir=None):
    thresholds = Thresholds(lambda_c=8, lambda_t=120.0, lambda_a=1.0)
    engine = make_multiuser(ALGORITHM, thresholds, graph, subscriptions)
    durability = (
        DurabilityConfig(
            wal_dir=wal_dir, fsync="interval", snapshot_every=1_000_000
        )
        if wal_dir is not None
        else None
    )
    feed = FeedService(
        DiversificationService(engine),
        mailboxes=MailboxConfig(capacity=64, window=thresholds.lambda_t),
        durability=durability,
    )
    # Production configuration on both sides of the comparison: the
    # serving path (`repro serve`, bench_feed_capacity) always binds
    # instruments, so the WAL's relative cost is measured against the
    # write path as actually deployed.
    feed.bind_metrics()
    return feed


def _state_digest(feed) -> str:
    return hashlib.sha256(
        json.dumps(feed.store.state_dict(), sort_keys=True).encode()
    ).hexdigest()


def _child_main(mode: str, wal_dir: str, users: int) -> None:
    """One timed run in a pristine interpreter; emits a JSON line."""
    graph, subscriptions, posts = build_world(users)
    records = 0
    if mode == "recover":
        feed = build_feed(graph, subscriptions, wal_dir)
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        report = feed.recover(snapshot_after=False)
        elapsed = time.perf_counter() - start
        records = report.records_total
    else:
        feed = build_feed(
            graph, subscriptions, wal_dir if mode == "wal" else None
        )
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        for i, post in enumerate(posts):
            feed.ingest(post, idempotency_key=f"bench-{i}")
        elapsed = time.perf_counter() - start
    print(
        json.dumps(
            {"elapsed": elapsed, "digest": _state_digest(feed), "records": records}
        )
    )


def _spawn(mode: str, wal_dir: Path, users: int) -> dict:
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(src)
    result = subprocess.run(
        [sys.executable, __file__, "--child", mode, str(wal_dir), str(users)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, (
        f"{mode} child failed ({result.returncode}):\n{result.stderr}"
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def _run(users: int):
    wal_root = Path(tempfile.mkdtemp(prefix="bench-wal-"))
    try:
        base_time = wal_time = float("inf")
        survivor = None
        digests = set()
        for round_index in range(ROUNDS):
            reply = _spawn("base", wal_root / "unused", users)
            base_time = min(base_time, reply["elapsed"])
            digests.add(reply["digest"])

            wal_dir = wal_root / f"round-{round_index}"
            reply = _spawn("wal", wal_dir, users)
            digests.add(reply["digest"])
            if reply["elapsed"] < wal_time:
                wal_time = reply["elapsed"]
                survivor = wal_dir
        assert len(digests) == 1, (
            f"base/WAL runs disagree on final mailbox state: {digests}"
        )

        # The WAL-on children crashed by construction (no close, no
        # flush): recovery gets the fastest round's log alone.
        reply = _spawn("recover", survivor, users)
        assert reply["digest"] in digests, (
            "recovered mailbox state diverged from the live runs"
        )
        recovery_seconds = reply["elapsed"]
        records_replayed = reply["records"]
        assert records_replayed >= POSTS
    finally:
        shutil.rmtree(wal_root, ignore_errors=True)

    wal_posts_per_sec = POSTS / wal_time
    replay_posts_per_sec = POSTS / recovery_seconds
    return {
        "benchmark": "feed_durability",
        "scale": bench_scale(),
        "algorithm": ALGORITHM,
        "cpu_count": os.cpu_count(),
        "subscribers": users,
        "authors": AUTHORS,
        "posts": POSTS,
        "rounds": ROUNDS,
        "fsync": "interval",
        "base_posts_per_sec": POSTS / base_time,
        "wal_posts_per_sec": wal_posts_per_sec,
        "wal_overhead": (wal_time / base_time) - 1.0,
        "wal_cost_us_per_post": (wal_time - base_time) / POSTS * 1e6,
        "recovery_seconds": recovery_seconds,
        "recovery_records_replayed": records_replayed,
        "recovery_replay_posts_per_sec": replay_posts_per_sec,
        "recovery_replay_speedup": replay_posts_per_sec / wal_posts_per_sec,
    }


def _check_against_committed(result) -> list[str]:
    if not RESULT_PATH.exists():
        return []
    committed = json.loads(RESULT_PATH.read_text())
    if (
        committed.get("cpu_count") != result["cpu_count"]
        or committed.get("subscribers") != result["subscribers"]
    ):
        print(
            "note: committed baseline measured at "
            f"cpu_count={committed.get('cpu_count')}, "
            f"subscribers={committed.get('subscribers')}; gate skipped"
        )
        return []
    failures = []
    ceiling = committed["wal_overhead"] * (1.0 + TOLERANCE) + 0.02
    if result["wal_overhead"] > ceiling:
        failures.append(
            f"WAL overhead {result['wal_overhead']:.1%} > {ceiling:.1%} "
            f"(committed {committed['wal_overhead']:.1%} + {TOLERANCE:.0%})"
        )
    floor = committed["recovery_replay_speedup"] * (1.0 - TOLERANCE)
    if result["recovery_replay_speedup"] < floor:
        failures.append(
            f"recovery replay speedup {result['recovery_replay_speedup']:.2f}x "
            f"< {floor:.2f}x (committed "
            f"{committed['recovery_replay_speedup']:.2f}x - {TOLERANCE:.0%})"
        )
    return failures


def test_feed_durability(benchmark):
    users = subscriber_count()
    result = benchmark.pedantic(lambda: _run(users), rounds=1, iterations=1)
    print()
    print(
        f"{ALGORITHM}: {result['subscribers']:,} subscribers x "
        f"{result['posts']} posts, fsync={result['fsync']}"
    )
    print(
        f"write path: {result['base_posts_per_sec']:,.0f} posts/s bare, "
        f"{result['wal_posts_per_sec']:,.0f} posts/s with WAL "
        f"(overhead {result['wal_overhead']:.1%}, "
        f"{result['wal_cost_us_per_post']:.0f}us/post)"
    )
    print(
        f"recovery: {result['recovery_records_replayed']} records in "
        f"{result['recovery_seconds']:.3f}s = "
        f"{result['recovery_replay_posts_per_sec']:,.0f} posts/s "
        f"({result['recovery_replay_speedup']:.2f}x live ingest)"
    )

    if users >= REFERENCE_SUBSCRIBERS:
        assert result["wal_overhead"] <= WAL_OVERHEAD_CEILING, (
            f"WAL costs {result['wal_overhead']:.1%} of fanout throughput; "
            f"the durability budget is {WAL_OVERHEAD_CEILING:.0%}"
        )
    assert result["wal_cost_us_per_post"] <= WAL_COST_CEILING_US, (
        f"WAL costs {result['wal_cost_us_per_post']:.0f}us per post; "
        f"the absolute budget is {WAL_COST_CEILING_US:.0f}us"
    )
    assert result["recovery_seconds"] <= RECOVERY_BUDGET_SECONDS, (
        f"recovery took {result['recovery_seconds']:.2f}s; the restart "
        f"budget is {RECOVERY_BUDGET_SECONDS:.0f}s"
    )

    failures = _check_against_committed(result)
    assert not failures, "; ".join(failures)

    if os.environ.get("REPRO_WRITE_BASELINE"):
        RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {RESULT_PATH}")


if __name__ == "__main__":
    if len(sys.argv) == 5 and sys.argv[1] == "--child":
        _child_main(sys.argv[2], sys.argv[3], int(sys.argv[4]))
    else:  # pragma: no cover - manual invocation guard
        sys.exit("usage: bench_feed_durability.py --child MODE WAL_DIR USERS")
