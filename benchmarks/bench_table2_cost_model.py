"""Table 2: the §4.4 analytical cost model vs measured counts.

Paper: per-λt-window estimates — UniBin r·n RAM / r·n² comparisons,
NeighborBin (d+1)·r·n / ((d+1)/m)·r·n², CliqueBin c·r·n / (s·c/m)·r·n².
The benchmark measures all six parameters from the synthetic workload and
checks the model predicts the measured *ordering* on every metric.
"""

from conftest import show

from repro.eval.experiments import table2_cost_model


def test_table2_cost_model(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: table2_cost_model(dataset), rounds=1, iterations=1
    )
    show(result)

    rows = {r["algorithm"]: r for r in result.rows}
    for metric in ("ram", "cmp_per_window", "ins_per_window"):
        predicted_order = sorted(rows, key=lambda a: rows[a][f"{metric}_predicted"])
        measured_order = sorted(rows, key=lambda a: rows[a][f"{metric}_measured"])
        assert predicted_order == measured_order, metric

    # Predictions should be right to within a small constant factor.
    for algo, row in rows.items():
        for metric in ("ram", "cmp_per_window", "ins_per_window"):
            predicted = row[f"{metric}_predicted"]
            measured = row[f"{metric}_measured"]
            if measured > 0 and predicted > 0:
                ratio = predicted / measured
                assert 0.2 <= ratio <= 5.0, f"{algo} {metric}: ratio {ratio:.2f}"
