"""Figure 16: M-SPSD — per-user (M_*) vs shared-component (S_*) engines.

Paper: S_UniBin uses 43% less running time and 27% less memory than
M_UniBin; S_NeighborBin and S_CliqueBin improve their baselines by ~8%
and ~4% in running time; outputs are identical. (Our synthetic
subscription graph shares *more* than the paper's crawl, so the measured
savings are larger; the ordering and the sign of every delta match.)
"""

from conftest import show

from repro.eval.experiments import figure16_multiuser


def test_fig16_multiuser(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure16_multiuser(dataset),
        rounds=1,
        iterations=1,
    )
    show(result)

    rows = {r["algorithm"]: r for r in result.rows}
    for algo in ("unibin", "neighborbin", "cliquebin"):
        m, s = rows[f"m_{algo}"], rows[f"s_{algo}"]
        # The optimisation must not change any user's timeline.
        assert m["admitted"] == s["admitted"]
        # And must not cost more on any counted metric.
        assert s["comparisons"] <= m["comparisons"]
        assert s["insertions"] <= m["insertions"]
        assert s["ram_copies"] <= m["ram_copies"]
    # The paper's headline: S_UniBin is the clear winner on time.
    s_times = {a: rows[a]["time_s"] for a in rows if a.startswith("s_")}
    assert min(s_times, key=s_times.get) == "s_unibin"
