"""Figure 13: performance vs the author diversity threshold λa.

Paper: larger λa densifies the author graph (d, c, s all grow), which
sharply inflates NeighborBin's and CliqueBin's RAM and insertions while
UniBin stays stable; at large λa UniBin becomes the best choice.
"""

from conftest import show

from repro.eval.experiments import figure13_vary_author_threshold


def test_fig13_vary_lambda_a(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure13_vary_author_threshold(dataset),
        rounds=1,
        iterations=1,
    )
    show(result)

    def series(algorithm, metric):
        return [r[metric] for r in result.rows if r["algorithm"] == algorithm]

    # The binned algorithms' replication explodes with lambda_a…
    for algo in ("neighborbin", "cliquebin"):
        ram = series(algo, "ram_copies")
        assert ram == sorted(ram)
        assert ram[-1] > 3 * ram[0], f"{algo} RAM should grow sharply"
    # …while UniBin stays flat (its only driver is retention, which is
    # nearly constant).
    uni_ram = series("unibin", "ram_copies")
    assert max(uni_ram) < 1.5 * max(1, min(uni_ram))
