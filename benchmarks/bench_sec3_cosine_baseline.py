"""§3 cosine baseline: crossover ≈ 0.7 similarity, quality matching SimHash.

Paper: "the precision and recall lines cross at cosine similarity 0.7 …
precision and recall of 0.96 and 0.95 respectively, which is the same as
what we achieved using SimHash" — i.e. SimHash sacrifices no quality.
"""

from conftest import show

from repro.eval import (
    cosine_crossover,
    cosine_curve,
    crossover,
    generate_labeled_pairs,
    precision_recall_curve,
)
from repro.eval.experiments import sec3_cosine_baseline

PAIRS_PER_DISTANCE = 40


def test_sec3_cosine_baseline(benchmark):
    pairs = generate_labeled_pairs(
        pairs_per_distance=PAIRS_PER_DISTANCE, seed=101
    )
    curve = benchmark.pedantic(
        lambda: cosine_curve(pairs), rounds=1, iterations=1
    )
    show(sec3_cosine_baseline(pairs=pairs))

    cos_cross = cosine_crossover(curve)
    sim_cross = crossover(precision_recall_curve(pairs, normalized=True))
    assert 0.4 <= cos_cross.threshold <= 0.9
    # Equal effectiveness: the two measures' crossover F1 within a few points.
    cos_f1 = 2 * cos_cross.precision * cos_cross.recall / (
        cos_cross.precision + cos_cross.recall
    )
    sim_f1 = 2 * sim_cross.precision * sim_cross.recall / (
        sim_cross.precision + sim_cross.recall
    )
    assert abs(cos_f1 - sim_f1) < 0.1
