"""Fault tolerance: the resilient pipeline under a seeded adversary.

The resilience subsystem claims exact degradation: a bounded arrival
shuffle is absorbed to a bit-identical output, transport damage is
quarantined with counts equal to what the injector reports, duplicates
never double the output, and the coverage guarantee holds over every post
the pipeline did not refuse. This benchmark drives all of it per seed on
the standard synthetic stream and asserts each claim, plus an
overload-controlled replay whose shed accounting must conserve posts.
"""

import json

from conftest import show

from repro.core import CoverageChecker, UniBin, make_diversifier
from repro.eval import verify_coverage
from repro.eval.experiments import ExperimentResult
from repro.io import post_to_dict
from repro.resilience import (
    FaultSchedule,
    LatencySpikes,
    LineFaultInjector,
    OverloadController,
    ResilientIngest,
    ingest_jsonl,
)
from repro.service import DiversificationService

SEEDS = (3, 17, 4242)
MAX_SKEW = 30.0


def _damaged_trace(posts, seed, tmp_path):
    lines = (json.dumps(post_to_dict(p), sort_keys=True) for p in posts)
    injector = LineFaultInjector(
        seed=seed,
        malformed_prob=0.02,
        torn_prob=0.02,
        missing_field_prob=0.02,
        bad_timestamp_prob=0.02,
    )
    path = tmp_path / f"damaged-{seed}.jsonl"
    path.write_text("\n".join(injector.apply(lines)) + "\n")
    return path, injector.counts


def test_fault_injection_exact_accounting(benchmark, dataset, thresholds, tmp_path):
    graph = dataset.graph(thresholds.lambda_a)
    posts = dataset.posts
    baseline = make_diversifier("unibin", thresholds, graph)
    clean_ids = [p.post_id for p in posts if baseline.offer(p)]

    def sweep():
        rows = []
        for seed in SEEDS:
            # Post-level adversary: bounded shuffle + duplicates, fully
            # absorbed by a matching skew window.
            schedule = FaultSchedule(
                seed=seed, max_displacement=MAX_SKEW, duplicate_prob=0.1
            )
            pipeline = ResilientIngest(
                UniBin(thresholds, graph), max_skew=MAX_SKEW, late_policy="raise"
            )
            admitted = [
                p.post_id for p in pipeline.diversify(schedule.apply(posts))
            ]
            reorder = pipeline.reorder.counters

            # Transport adversary: damaged JSONL through the quarantine.
            path, injected = _damaged_trace(posts, seed, tmp_path)
            q_pipeline = ResilientIngest(UniBin(thresholds, graph))
            events = ingest_jsonl(q_pipeline, path, on_error="quarantine")
            survivors = [
                e.post for e in events if e.status in ("admitted", "rejected")
            ]
            q_admitted = frozenset(
                e.post.post_id for e in events if e.admitted
            )
            verify_coverage(
                survivors, q_admitted, CoverageChecker(thresholds, graph)
            )

            rows.append(
                {
                    "seed": seed,
                    "posts": len(posts),
                    "shuffled": schedule.shuffler.counts.shuffled,
                    "duplicated": schedule.post_faults.counts.duplicated,
                    "late_events": reorder.late_dropped + reorder.late_clamped,
                    "output_identical": admitted == clean_ids,
                    "injected_bad": injected.malformed
                    + injected.torn
                    + injected.missing_field
                    + injected.bad_timestamp,
                    "quarantined": q_pipeline.quarantine.total,
                    "coverage_violations": 0,  # verify_coverage raised otherwise
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ExperimentResult(
            experiment_id="fault_tolerance",
            title="Resilient pipeline vs seeded fault injection",
            parameters={"seeds": SEEDS, "max_skew": MAX_SKEW},
            rows=rows,
        )
    )
    for row in rows:
        seed = row["seed"]
        assert row["shuffled"] > 0 and row["duplicated"] > 0, f"seed {seed}: adversary idle"
        assert row["late_events"] == 0, f"seed {seed}: skew window not absorbed"
        assert row["output_identical"], f"seed {seed}: output diverged under faults"
        assert row["quarantined"] == row["injected_bad"], (
            f"seed {seed}: quarantine count {row['quarantined']} != "
            f"injected {row['injected_bad']}"
        )


def test_overload_shedding_conserves_posts(benchmark, dataset, thresholds):
    graph = dataset.graph(thresholds.lambda_a)
    posts = dataset.posts

    def replay():
        rows = []
        for seed in SEEDS:
            engine = LatencySpikes(
                UniBin(thresholds, graph),
                seed=seed,
                spike_prob=0.2,
                spike_seconds=0.002,
            )
            controller = OverloadController(
                max_delay=0.01, resume_delay=0.005, policy="drop"
            )
            service = DiversificationService(engine, overload=controller)
            (report,) = service.replay(posts, speedups=(1e8,))
            rows.append(
                {
                    "seed": seed,
                    "posts": report.posts,
                    "processed": report.processed,
                    "shed": report.shed_total,
                    "episodes": report.shed_episodes,
                    "conserved": report.processed + report.shed_total
                    == report.posts,
                }
            )
        return rows

    rows = benchmark.pedantic(replay, rounds=1, iterations=1)
    show(
        ExperimentResult(
            experiment_id="overload_shedding",
            title="Overload-controlled replay: exact shed accounting",
            parameters={"seeds": SEEDS, "max_delay_s": 0.01},
            rows=rows,
        )
    )
    for row in rows:
        assert row["conserved"], f"seed {row['seed']}: posts not conserved"
        assert row["shed"] > 0, f"seed {row['seed']}: overload never triggered"
        assert row["episodes"] >= 1, f"seed {row['seed']}: no shedding episode"
