"""Figure 14: performance vs post generation rate (stream subsampling).

Paper: at low throughput (1%–5% sample) UniBin beats the binned
algorithms — with few posts per window the comparison savings cannot pay
for the extra insertions; at full rate the binned algorithms win.
"""

from conftest import show

from repro.eval.experiments import figure14_vary_post_rate


def test_fig14_vary_post_rate(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure14_vary_post_rate(dataset),
        rounds=1,
        iterations=1,
    )
    show(result)

    def rows_at(ratio):
        return {r["algorithm"]: r for r in result.rows if r["sample_ratio"] == ratio}

    low = rows_at(0.01)
    full = rows_at(1.0)
    # Low throughput: UniBin does no more total bin operations (comparisons
    # + insertions) than the binned algorithms — the regime where it wins.
    uni_ops = low["unibin"]["comparisons"] + low["unibin"]["insertions"]
    for algo in ("neighborbin", "cliquebin"):
        binned_ops = low[algo]["comparisons"] + low[algo]["insertions"]
        assert uni_ops <= binned_ops
    # Full throughput: UniBin's comparisons dominate everything.
    assert full["unibin"]["comparisons"] > 10 * full["neighborbin"]["comparisons"]
