"""Real-time capacity: decision latency and sustainable speedup.

The paper's engineering requirement is an instant decision per arriving
post at firehose rates. This benchmark measures each algorithm's
per-decision latency distribution and the largest real-time compression
of the stream a single-threaded engine can absorb.
"""

from conftest import show

from repro.eval import service_capacity


def test_service_capacity(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: service_capacity(dataset), rounds=1, iterations=1
    )
    show(result)

    rows = {r["algorithm"]: r for r in result.rows}
    for algorithm, row in rows.items():
        # Real-time requirement with massive headroom at this scale.
        assert row["sustainable_speedup"] > 10, algorithm
        assert row["p99_us"] < 100_000, algorithm  # every decision < 100 ms
    # The binned algorithms' latency advantage mirrors Figure 11.
    assert rows["neighborbin"]["mean_us"] < rows["unibin"]["mean_us"]
