"""Robustness: the headline orderings must hold across generator seeds.

Every reproduced conclusion is measured on seeded synthetic data; this
benchmark regenerates small datasets under three different seeds and
checks the core relationships on each — algorithm cost orderings (Table
3), the ~10% default pruning (Figure 10), the zero-violation guarantee,
and the S_*/M_* equivalence. A conclusion that held for exactly one seed
would be an artifact, not a reproduction.
"""

from conftest import show

from repro.core import CoverageChecker, Thresholds
from repro.eval import compare_algorithms, verify_coverage
from repro.eval.experiments import ExperimentResult
from repro.social import DatasetConfig, NetworkConfig, StreamConfig, build_dataset

SEEDS = (7, 101, 9001)


def _dataset(seed):
    return build_dataset(
        DatasetConfig(
            network=NetworkConfig(
                n_authors=400, n_communities=20, mean_followees=25, seed=seed
            ),
            stream=StreamConfig(
                duration=6 * 3600.0, posts_per_author_per_day=16.0, seed=seed + 1
            ),
            sample_size=250,
        )
    )


def test_orderings_hold_across_seeds(benchmark):
    thresholds = Thresholds()

    def sweep():
        rows = []
        for seed in SEEDS:
            dataset = _dataset(seed)
            graph = dataset.graph(thresholds.lambda_a)
            runs = {
                r.algorithm: r
                for r in compare_algorithms(thresholds, graph, dataset.posts)
            }
            rows.append(
                {
                    "seed": seed,
                    "posts": len(dataset.posts),
                    "pruned_pct": round(
                        100 * (1 - runs["unibin"].retention_ratio), 2
                    ),
                    "cmp_order_ok": runs["neighborbin"].comparisons
                    < runs["cliquebin"].comparisons
                    < runs["unibin"].comparisons,
                    "ram_order_ok": runs["unibin"].peak_stored_copies
                    < runs["cliquebin"].peak_stored_copies
                    < runs["neighborbin"].peak_stored_copies,
                    "outputs_agree": runs["unibin"].admitted_ids
                    == runs["neighborbin"].admitted_ids
                    == runs["cliquebin"].admitted_ids,
                }
            )
            checker = CoverageChecker(thresholds, graph)
            verify_coverage(dataset.posts, runs["unibin"].admitted_ids, checker)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ExperimentResult(
            experiment_id="robustness_seeds",
            title="Headline orderings across generator seeds",
            parameters={"seeds": SEEDS},
            rows=rows,
        )
    )
    for row in rows:
        assert row["cmp_order_ok"], f"seed {row['seed']}: comparison order broke"
        assert row["ram_order_ok"], f"seed {row['seed']}: RAM order broke"
        assert row["outputs_agree"], f"seed {row['seed']}: outputs diverged"
        assert 3.0 <= row["pruned_pct"] <= 25.0, f"seed {row['seed']}: pruning off"
