"""Figure 11: performance vs the time diversity threshold λt.

Paper: all algorithms get faster as λt shrinks; NeighborBin and CliqueBin
outperform UniBin on running time; NeighborBin uses the most RAM; smaller
λt also means less RAM for everyone.
"""

from conftest import show

from repro.eval.experiments import figure11_vary_time_threshold


def test_fig11_vary_lambda_t(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure11_vary_time_threshold(dataset),
        rounds=1,
        iterations=1,
    )
    show(result)

    def series(algorithm, metric):
        return [r[metric] for r in result.rows if r["algorithm"] == algorithm]

    # Comparisons and RAM grow with lambda_t for every algorithm.
    for algo in ("unibin", "neighborbin", "cliquebin"):
        cmp = series(algo, "comparisons")
        assert cmp == sorted(cmp), f"{algo} comparisons not monotone in lambda_t"

    # At every lambda_t: UniBin most comparisons / least RAM; NeighborBin
    # fewest comparisons / most RAM (the paper's Figure 11b/11c ordering).
    lambda_ts = sorted({r["lambda_t_s"] for r in result.rows})
    for lt in lambda_ts:
        rows = {r["algorithm"]: r for r in result.rows if r["lambda_t_s"] == lt}
        assert rows["unibin"]["comparisons"] >= rows["cliquebin"]["comparisons"]
        assert rows["cliquebin"]["comparisons"] >= rows["neighborbin"]["comparisons"]
        assert rows["unibin"]["ram_copies"] <= rows["cliquebin"]["ram_copies"]
        assert rows["cliquebin"]["ram_copies"] <= rows["neighborbin"]["ram_copies"]
