"""§6.2.2's omitted data point: λt = 1 minute.

Paper: "we did not include the results by setting λt = 1 min where UniBin
performs best among the three algorithms". At a one-minute window the
global bin holds only a handful of posts, so UniBin's scan is tiny while
the binned algorithms still pay their full insertion replication.
"""

from conftest import show

from repro.eval.experiments import sec622_tiny_lambda_t


def test_sec622_tiny_lambda_t(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: sec622_tiny_lambda_t(dataset), rounds=1, iterations=1
    )
    show(result)

    rows = {r["algorithm"]: r for r in result.rows}
    fastest_time = min(float(r["time_s"]) for r in result.rows)
    # UniBin is (at least) competitive on time at this window size — the
    # regime where its quadratic term vanishes…
    assert float(rows["unibin"]["time_s"]) <= 1.3 * fastest_time
    # …while keeping by far the smallest footprint (Table 4's RAM rule).
    assert rows["unibin"]["ram_copies"] < rows["cliquebin"]["ram_copies"]
    assert rows["unibin"]["ram_copies"] < rows["neighborbin"]["ram_copies"]
    # And UniBin's quadratic term collapsed: only a handful of live posts
    # per scan (cf. Figure 11's ~165 comparisons/post at lambda_t = 30 min).
    assert rows["unibin"]["comparisons"] < 15 * rows["unibin"]["posts"]
