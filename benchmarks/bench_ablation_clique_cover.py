"""Ablation: greedy clique edge cover (§4.3) vs the trivial per-edge cover.

CliqueBin's replication factor is the average clique membership per
author (c); the greedy heuristic exists to shrink it. The benchmark times
cover construction and compares both covers' total membership.
"""

from conftest import show

from repro.authors import greedy_clique_cover
from repro.eval.ablations import ablation_clique_cover


def test_ablation_clique_cover(benchmark, dataset):
    graph = dataset.graph(0.7)
    benchmark(lambda: greedy_clique_cover(graph))
    result = ablation_clique_cover(dataset)
    show(result)

    greedy_row, trivial_row = result.rows
    assert greedy_row["total_membership"] <= trivial_row["total_membership"]
    assert greedy_row["cliques"] <= trivial_row["cliques"]
