"""Figure 3: precision/recall vs SimHash Hamming threshold on RAW text.

Paper: curves over 2000 labelled pairs (100 per distance 3–22); raw-text
fingerprints give a lower curve than the normalised ones of Figure 4.
"""

from conftest import show

from repro.eval import crossover, generate_labeled_pairs, precision_recall_curve
from repro.eval.experiments import figure3_pr_raw

PAIRS_PER_DISTANCE = 40  # 800 pairs; paper uses 2000


def test_fig03_pr_raw(benchmark):
    pairs = generate_labeled_pairs(
        pairs_per_distance=PAIRS_PER_DISTANCE, seed=101
    )
    curve = benchmark(lambda: precision_recall_curve(pairs, normalized=False))
    show(figure3_pr_raw(pairs=pairs))
    cross = crossover(curve)
    assert 10 <= cross.threshold <= 24
    recalls = [p.recall for p in curve]
    assert all(b >= a for a, b in zip(recalls, recalls[1:]))
