"""Ablation: SimHash Hamming vs TF cosine per-comparison cost.

This is the quantitative backing of §3's design decision — SimHash is
chosen over cosine because it matches cosine's near-duplicate quality
(bench_sec3_cosine_baseline) at a fraction of the comparison cost.
"""

import random

from conftest import show

from repro.eval.ablations import ablation_simhash_speed
from repro.simhash import TfVector, hamming, simhash
from repro.social import TextGenerator, Vocabulary


def _make_texts(n, seed=13):
    rng = random.Random(seed)
    vocabulary = Vocabulary(seed=seed)
    generator = TextGenerator(vocabulary, seed=seed + 1)
    return [
        generator.fresh(rng.randrange(vocabulary.topic_count), rng=rng).text
        for _ in range(n)
    ]


def test_ablation_simhash_comparison_speed(benchmark):
    texts = _make_texts(500)
    fingerprints = [simhash(t) for t in texts]
    pairs = [(i, (i * 37 + 11) % len(texts)) for i in range(len(texts))]

    def compare_all():
        total = 0
        for i, j in pairs:
            total += hamming(fingerprints[i], fingerprints[j])
        return total

    benchmark(compare_all)
    show(ablation_simhash_speed(n_texts=500, n_comparisons=50_000))


def test_ablation_cosine_comparison_speed(benchmark):
    texts = _make_texts(500)
    vectors = [TfVector.from_text(t) for t in texts]
    pairs = [(i, (i * 37 + 11) % len(texts)) for i in range(len(texts))]

    def compare_all():
        total = 0.0
        for i, j in pairs:
            total += vectors[i].cosine(vectors[j])
        return total

    benchmark(compare_all)
