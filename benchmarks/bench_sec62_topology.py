"""§6.2 topology statistics: d, c, s vs λa.

Paper (on its 20,150-author sample): λa = 0.7 → d = 113.7, c = 29,
s = 20; λa = 0.8 → d = 437.3, c = 106, s = 38. The absolute values are
graph-specific; the reproduced property is the sharp densification —
every parameter grows substantially from 0.7 to 0.8.
"""

from conftest import show

from repro.eval.experiments import topology_statistics


def test_sec62_topology(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: topology_statistics(dataset, lambda_as=(0.7, 0.8)),
        rounds=1,
        iterations=1,
    )
    show(result)

    at07, at08 = result.rows
    # Densification factors: the paper sees ~3.8x on d; require clear growth.
    assert at08["d_neighbors_per_author"] > 1.5 * at07["d_neighbors_per_author"]
    assert at08["c_cliques_per_author"] >= at07["c_cliques_per_author"]
    assert at08["s_avg_clique_size"] >= at07["s_avg_clique_size"]
    # c <= d (an author is in at most as many cliques as it has edges).
    assert at07["c_cliques_per_author"] <= at07["d_neighbors_per_author"] + 1
