"""Table 1: example near-duplicate tweet pairs with Hamming distances.

Paper: three example pairs at distances 3, 8 and 13 (re-shortened URL,
hashtag-decorated quote, wire-service long form). The benchmark times the
pair search and prints generated counterparts.
"""

from conftest import show

from repro.eval.experiments import table1_example_pairs


def test_table1_example_pairs(benchmark):
    result = benchmark.pedantic(
        lambda: table1_example_pairs(seed=77), rounds=1, iterations=1
    )
    show(result)
    distances = [row["hamming"] for row in result.rows]
    assert len(distances) == 3
    for measured, target in zip(distances, (3, 8, 13)):
        assert abs(measured - target) <= 3
