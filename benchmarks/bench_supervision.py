"""Supervision: steady-state overhead and chaos-recovery latency.

The self-healing layer (:mod:`repro.supervise`) may not tax the healthy
path: journalling acknowledged batches and rolling checkpoints must cost
under ``REPRO_SUPERVISION_MAX_OVERHEAD`` (default 10%) over the same
pool run unsupervised. And when a worker *is* killed mid-stream, the
recovery — respawn, checkpoint restore, journal replay, re-issued
in-flight batch — must leave receiver sets byte-identical to the serial
run, with the measured recovery latency recorded.

Writes ``BENCH_supervision.json`` at the repo root and regression-gates
against the committed copy: overhead may not grow more than
``REPRO_SUPERVISION_TOLERANCE`` (absolute, default 0.08) past it, and
recovery latency may not exceed the committed value by more than
``REPRO_SUPERVISION_LATENCY_FACTOR`` (default 3x — process spawn time is
machine- and load-dependent). Absolute posts/sec are reported but never
gated; like the other execution-layer benchmarks this may run on a
single-core container.
"""

import json
import os
import time
from pathlib import Path

from conftest import bench_scale

from repro.multiuser import SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser
from repro.resilience import WorkerFaultPlan
from repro.supervise import SupervisionConfig

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_supervision.json"

ALGORITHM = "unibin"
WORKERS = int(os.environ.get("REPRO_SUPERVISION_WORKERS", "2"))
BATCH = int(os.environ.get("REPRO_SUPERVISION_BATCH", "64"))
REPEATS = int(os.environ.get("REPRO_SUPERVISION_REPEATS", "3"))

#: Hard ceiling on supervised-over-unsupervised steady-state overhead.
MAX_OVERHEAD = float(os.environ.get("REPRO_SUPERVISION_MAX_OVERHEAD", "0.10"))
#: Absolute overhead growth allowed past the committed baseline.
REGRESSION_TOLERANCE = float(os.environ.get("REPRO_SUPERVISION_TOLERANCE", "0.08"))
#: Multiplier on the committed recovery latency before the gate fails.
LATENCY_FACTOR = float(os.environ.get("REPRO_SUPERVISION_LATENCY_FACTOR", "3.0"))

#: Production-shaped supervision for the overhead measurement; the chaos
#: run shrinks the backoff so the latency number is the recovery itself.
STEADY_CONFIG = SupervisionConfig()
CHAOS_CONFIG = SupervisionConfig(backoff_base=0.001, backoff_cap=0.01, jitter=0.0)


def _run_stream(engine, posts):
    received = []
    start = time.perf_counter()
    for lo in range(0, len(posts), BATCH):
        received.extend(engine.offer_batch(posts[lo : lo + BATCH]))
    return received, time.perf_counter() - start


def _measure_parallel(thresholds, graph, subscriptions, posts, **kwargs):
    best = float("inf")
    received = None
    for _ in range(REPEATS):
        with ParallelSharedMultiUser(
            ALGORITHM, thresholds, graph, subscriptions, workers=WORKERS, **kwargs
        ) as engine:
            received, elapsed = _run_stream(engine, posts)
            best = min(best, elapsed)
    return received, best


def _measure_chaos(thresholds, graph, subscriptions, posts):
    """Crash one worker mid-stream; return outputs + recovery accounting."""
    crash_batch = max(2, (len(posts) // BATCH) // 2)  # mid-stream
    with ParallelSharedMultiUser(
        ALGORITHM,
        thresholds,
        graph,
        subscriptions,
        workers=WORKERS,
        supervised=True,
        supervision=CHAOS_CONFIG,
        fault_plans={0: WorkerFaultPlan(crash_on_batch=crash_batch)},
    ) as engine:
        received, elapsed = _run_stream(engine, posts)
        supervisor = engine.supervisor
        return received, {
            "crash_on_batch": crash_batch,
            "time_s": elapsed,
            "restarts": supervisor.restarts_total,
            "recovery_latency_s": max(supervisor.recovery_latencies, default=0.0),
            "replayed_commands": supervisor.replayed_commands,
            "checkpoints": supervisor.checkpoints_taken,
            "degraded_shards": list(supervisor.degraded_shards()),
        }


def _measure_degradation(thresholds, graph, subscriptions, posts):
    """Poison one shard past its budget; exactness must survive."""
    with ParallelSharedMultiUser(
        ALGORITHM,
        thresholds,
        graph,
        subscriptions,
        workers=WORKERS,
        supervised=True,
        supervision=SupervisionConfig(
            backoff_base=0.001, backoff_cap=0.01, jitter=0.0, max_restarts=1
        ),
        fault_plans={0: WorkerFaultPlan(crash_on_batch=2, survive_restarts=True)},
    ) as engine:
        received, elapsed = _run_stream(engine, posts)
        supervisor = engine.supervisor
        return received, {
            "time_s": elapsed,
            "restarts": supervisor.restarts_total,
            "degradations": supervisor.degradations,
            "degraded_shards": list(supervisor.degraded_shards()),
        }


def _sweep(dataset, thresholds):
    graph = dataset.graph(thresholds.lambda_a)
    subscriptions = dataset.subscriptions()
    posts = dataset.posts

    serial = SharedComponentMultiUser(ALGORITHM, thresholds, graph, subscriptions)
    start = time.perf_counter()
    expected = [serial.offer(post) for post in posts]
    serial_time = time.perf_counter() - start

    plain, plain_time = _measure_parallel(thresholds, graph, subscriptions, posts)
    assert plain == expected, "unsupervised sharded output diverged from serial"

    supervised, supervised_time = _measure_parallel(
        thresholds,
        graph,
        subscriptions,
        posts,
        supervised=True,
        supervision=STEADY_CONFIG,
    )
    assert supervised == expected, "supervised sharded output diverged from serial"
    overhead = supervised_time / plain_time - 1.0

    chaos, recovery = _measure_chaos(thresholds, graph, subscriptions, posts)
    assert chaos == expected, "post-crash receiver sets diverged — recovery inexact"
    assert recovery["restarts"] == 1, recovery
    assert recovery["degraded_shards"] == [], recovery

    degraded, degradation = _measure_degradation(
        thresholds, graph, subscriptions, posts
    )
    assert degraded == expected, "degraded receiver sets diverged from serial"
    assert degradation["degradations"] == 1, degradation

    return {
        "benchmark": "supervision",
        "scale": bench_scale(),
        "algorithm": ALGORITHM,
        "cpu_count": os.cpu_count(),
        "posts": len(posts),
        "users": len(subscriptions.users),
        "workers": WORKERS,
        "batch_size": BATCH,
        "serial": {"time_s": serial_time},
        "unsupervised": {
            "time_s": plain_time,
            "posts_per_sec": len(posts) / plain_time,
        },
        "supervised": {
            "time_s": supervised_time,
            "posts_per_sec": len(posts) / supervised_time,
            "overhead_vs_unsupervised": overhead,
        },
        "recovery": recovery,
        "degradation": degradation,
    }


def _check_against_committed(result) -> list[str]:
    if not RESULT_PATH.exists():
        return []
    committed = json.loads(RESULT_PATH.read_text())
    failures = []
    measured = result["supervised"]["overhead_vs_unsupervised"]
    # A negative committed overhead is timer noise (supervision cannot
    # speed anything up); clamp at zero so the ceiling never tightens
    # below the tolerance itself.
    baseline = max(committed["supervised"]["overhead_vs_unsupervised"], 0.0)
    ceiling = baseline + REGRESSION_TOLERANCE
    if measured > ceiling:
        failures.append(
            f"steady-state overhead {measured:.3f} > {ceiling:.3f} "
            f"(committed {baseline:.3f} + {REGRESSION_TOLERANCE})"
        )
    measured_lat = result["recovery"]["recovery_latency_s"]
    baseline_lat = committed["recovery"]["recovery_latency_s"]
    if baseline_lat > 0 and measured_lat > baseline_lat * LATENCY_FACTOR:
        failures.append(
            f"recovery latency {measured_lat:.4f}s > "
            f"{baseline_lat * LATENCY_FACTOR:.4f}s "
            f"(committed {baseline_lat:.4f}s x {LATENCY_FACTOR})"
        )
    return failures


def test_supervision(benchmark, dataset, thresholds):
    result = benchmark.pedantic(
        lambda: _sweep(dataset, thresholds),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"{ALGORITHM} x{result['workers']} workers, batch {result['batch_size']} "
        f"({result['posts']} posts, {result['users']} users, "
        f"cpu_count={result['cpu_count']})"
    )
    print(
        f"unsupervised: {result['unsupervised']['posts_per_sec']:>10,.0f} posts/s  "
        f"supervised: {result['supervised']['posts_per_sec']:>10,.0f} posts/s  "
        f"overhead {result['supervised']['overhead_vs_unsupervised']:+.1%}"
    )
    recovery = result["recovery"]
    print(
        f"crash recovery: {recovery['recovery_latency_s'] * 1000:.1f}ms "
        f"({recovery['restarts']} restart, "
        f"{recovery['replayed_commands']} commands replayed, "
        f"{recovery['checkpoints']} checkpoints) — output exact"
    )
    print(
        f"degradation: shards {result['degradation']['degraded_shards']} "
        "quarantined — output exact"
    )

    overhead = result["supervised"]["overhead_vs_unsupervised"]
    assert overhead < MAX_OVERHEAD, (
        f"supervision steady-state overhead {overhead:.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} budget"
    )
    failures = _check_against_committed(result)
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")
    assert not failures, "; ".join(failures)
