"""Figure 15: performance vs number of subscribed authors.

Paper: UniBin slightly outperforms the binned algorithms when the
subscription set is small (low resulting throughput); costs grow with the
subscription count for every algorithm.
"""

from conftest import show

from repro.eval.experiments import figure15_vary_subscriptions


def test_fig15_vary_subscriptions(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure15_vary_subscriptions(dataset),
        rounds=1,
        iterations=1,
    )
    show(result)

    counts = sorted({r["subscriptions"] for r in result.rows})

    def series(algorithm, metric):
        out = []
        for count in counts:
            row = next(
                r
                for r in result.rows
                if r["algorithm"] == algorithm and r["subscriptions"] == count
            )
            out.append(row[metric])
        return out

    # Post volume (and so processed posts) grows with subscriptions.
    posts = series("unibin", "posts")
    assert posts == sorted(posts)
    # Comparisons grow super-linearly for UniBin (r·n² effect).
    cmp = series("unibin", "comparisons")
    assert cmp == sorted(cmp)
    assert cmp[-1] > (posts[-1] / max(1, posts[0])) * max(1, cmp[0])
