"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper figure/table and prints its rows
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them). The
dataset scale defaults to ``medium`` — the paper's ratios at 1/20 size —
and can be lowered with ``REPRO_BENCH_SCALE=small`` for quick passes.
"""

import os

import pytest

from repro.core import Thresholds
from repro.eval import default_dataset


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "medium")


@pytest.fixture(scope="session")
def dataset():
    return default_dataset(bench_scale())


@pytest.fixture(scope="session")
def thresholds():
    return Thresholds()


def show(result) -> None:
    """Print an ExperimentResult below the benchmark table."""
    print()
    print(result.render())
