"""Figure 2: Hamming distance distribution of random tweet pairs.

Paper: a normal-shaped distribution with mean 32, bulk within 24–40.
The benchmark times the full distribution study (fingerprint 5k synthetic
posts, 50k random pairs) and prints the histogram series.
"""

from conftest import show

from repro.eval import hamming_distribution
from repro.eval.experiments import figure2_hamming_distribution


def test_fig02_hamming_distribution(benchmark):
    result = benchmark.pedantic(
        lambda: figure2_hamming_distribution(n_posts=5000, n_pairs=50_000, seed=31),
        rounds=1,
        iterations=1,
    )
    show(result)
    # Reproduction gate: the distribution the paper shows.
    dist = hamming_distribution(n_posts=2000, n_pairs=20_000, seed=31)
    assert 28.0 <= dist.mean <= 34.0
    assert dist.fraction_between(24, 40) > 0.8
