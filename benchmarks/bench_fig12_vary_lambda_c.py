"""Figure 12: performance vs the content diversity threshold λc.

Paper: varying λc from 9 to 18 only slightly affects every metric —
SimHash catches the true near-duplicates well below 18 bits, so the
retained-post count (and hence all costs) barely moves.
"""

from conftest import show

from repro.eval.experiments import figure12_vary_content_threshold


def test_fig12_vary_lambda_c(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figure12_vary_content_threshold(dataset),
        rounds=1,
        iterations=1,
    )
    show(result)

    for algo in ("unibin", "neighborbin", "cliquebin"):
        retentions = [
            r["retention"] for r in result.rows if r["algorithm"] == algo
        ]
        spread = max(retentions) - min(retentions)
        assert spread < 0.08, f"{algo} retention moved {spread:.3f} across lambda_c"
