"""Figure 4: precision/recall vs Hamming threshold on NORMALISED text.

Paper: the normalised curves dominate the raw ones, crossing at h = 18
with precision 0.96 / recall 0.95 — the source of the λc = 18 default.
"""

from conftest import show

from repro.eval import crossover, generate_labeled_pairs, precision_recall_curve
from repro.eval.experiments import figure4_pr_normalized

PAIRS_PER_DISTANCE = 40


def test_fig04_pr_normalized(benchmark):
    pairs = generate_labeled_pairs(
        pairs_per_distance=PAIRS_PER_DISTANCE, seed=101
    )
    curve = benchmark(lambda: precision_recall_curve(pairs, normalized=True))
    show(figure4_pr_normalized(pairs=pairs))

    cross = crossover(curve)
    assert 12 <= cross.threshold <= 20, "crossover should sit near the paper's 18"
    assert cross.precision > 0.85
    assert cross.recall > 0.85
    # Normalisation must dominate the raw curves (Figure 4 vs Figure 3).
    raw = precision_recall_curve(pairs, normalized=False)
    raw_area = sum(p.precision + p.recall for p in raw[3:23])
    norm_area = sum(p.precision + p.recall for p in curve[3:23])
    assert norm_area > raw_area
