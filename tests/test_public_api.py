"""The public API surface: everything in __all__ importable and coherent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.multiuser",
    "repro.simhash",
    "repro.authors",
    "repro.social",
    "repro.eval",
    "repro.baselines",
    "repro.service",
    "repro.resilience",
    "repro.feed",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_exist(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted_and_unique(self, package):
        module = importlib.import_module(package)
        entries = [n for n in module.__all__ if n != "__version__"]
        assert len(entries) == len(set(entries)), f"duplicates in {package}.__all__"

    def test_top_level_version(self):
        import repro

        assert repro.__version__

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__) > 40

    def test_public_classes_documented(self):
        """Every public class/function in core packages has a docstring."""
        for package in PACKAGES:
            module = importlib.import_module(package)
            for name in module.__all__:
                obj = getattr(module, name)
                if callable(obj):
                    assert obj.__doc__, f"{package}.{name} lacks a docstring"


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_catchable_as_base(self):
        from repro import ReproError, Thresholds
        from repro.errors import ConfigurationError

        with pytest.raises(ReproError):
            Thresholds(lambda_c=-5)
        with pytest.raises(ConfigurationError):
            Thresholds(lambda_c=-5)
