"""Tests for repro.io — JSONL traces and JSON graph/subscription files."""

import json

import pytest

from repro.authors import AuthorGraph
from repro.core import Post
from repro.errors import DatasetError
from repro.io import (
    post_from_dict,
    post_to_dict,
    read_graph_json,
    read_posts_jsonl,
    read_subscriptions_json,
    write_graph_json,
    write_posts_jsonl,
    write_subscriptions_json,
)
from repro.multiuser import SubscriptionTable


@pytest.fixture()
def posts():
    return [
        Post.create(1, 10, "hello world of streams", 0.5),
        Post.create(2, 11, "another post entirely", 3.25),
    ]


class TestPostRoundTrip:
    def test_dict_round_trip(self, posts):
        for post in posts:
            assert post_from_dict(post_to_dict(post)) == post

    def test_fingerprint_recomputed_when_absent(self, posts):
        record = post_to_dict(posts[0])
        del record["fingerprint"]
        assert post_from_dict(record) == posts[0]

    def test_missing_field_rejected(self):
        with pytest.raises(DatasetError, match="missing fields"):
            post_from_dict({"post_id": 1, "author": 2, "text": "x"})

    def test_jsonl_round_trip(self, posts, tmp_path):
        path = tmp_path / "posts.jsonl"
        assert write_posts_jsonl(posts, path) == 2
        assert list(read_posts_jsonl(path)) == posts

    def test_blank_lines_skipped(self, posts, tmp_path):
        path = tmp_path / "posts.jsonl"
        write_posts_jsonl(posts, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_posts_jsonl(path))) == 2

    def test_invalid_json_line_reported_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"post_id": 1}\nnot json\n')
        with pytest.raises(DatasetError, match="bad.jsonl:1|missing fields"):
            list(read_posts_jsonl(path))

    def test_lazy_reading(self, posts, tmp_path):
        path = tmp_path / "posts.jsonl"
        write_posts_jsonl(posts, path)
        iterator = read_posts_jsonl(path)
        assert next(iterator).post_id == 1


class TestGraphRoundTrip:
    def test_round_trip(self, tmp_path):
        graph = AuthorGraph([1, 2, 3, 9], [(1, 2), (2, 3)])
        path = tmp_path / "graph.json"
        write_graph_json(graph, path)
        loaded = read_graph_json(path)
        assert sorted(loaded.nodes) == [1, 2, 3, 9]
        assert set(loaded.edges()) == {(1, 2), (2, 3)}

    def test_isolated_nodes_survive(self, tmp_path):
        graph = AuthorGraph([5], [])
        path = tmp_path / "graph.json"
        write_graph_json(graph, path)
        assert 5 in read_graph_json(path)

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "graph.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(DatasetError):
            read_graph_json(path)

    def test_deterministic_output(self, tmp_path):
        graph = AuthorGraph([3, 1, 2], [(2, 1), (3, 1)])
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_graph_json(graph, a)
        write_graph_json(graph, b)
        assert a.read_text() == b.read_text()


class TestSubscriptionsRoundTrip:
    def test_round_trip(self, tmp_path):
        table = SubscriptionTable({100: [1, 2], 200: [2, 3]})
        path = tmp_path / "subs.json"
        write_subscriptions_json(table, path)
        loaded = read_subscriptions_json(path)
        assert loaded.subscriptions_of(100) == frozenset({1, 2})
        assert loaded.subscriptions_of(200) == frozenset({2, 3})

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "subs.json"
        path.write_text("[]")
        with pytest.raises(DatasetError):
            read_subscriptions_json(path)

    def test_json_is_valid(self, tmp_path):
        table = SubscriptionTable({1: [7]})
        path = tmp_path / "subs.json"
        write_subscriptions_json(table, path)
        assert json.loads(path.read_text()) == {"1": [7]}
