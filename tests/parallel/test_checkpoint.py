"""Checkpoint/restore under sharding.

The positional-components layout is shared with the serial S_* engines, so
a parallel checkpoint restores into a serial engine (and vice versa), and
a checkpoint taken under one worker count restores under another — the
shard layout is an execution detail, never part of the persisted state.
"""

import pytest

from repro.errors import CheckpointError
from repro.multiuser import SharedComponentMultiUser, SubscriptionTable
from repro.parallel import ParallelSharedMultiUser
from repro.resilience import (
    load_checkpoint,
    restore_engine,
    save_checkpoint,
    snapshot_engine,
)

from .conftest import chunked


def run_batches(engine, posts, batch: int = 32):
    out = []
    for chunk in chunked(posts, batch):
        out.extend(engine.offer_batch(chunk))
    return out


class TestMidStreamHandover:
    @pytest.mark.parametrize("algorithm", ("unibin", "cliquebin", "indexed_unibin"))
    def test_resume_under_different_worker_count(
        self, graph, subscriptions, thresholds, posts, algorithm
    ):
        """First half under workers=2, restore under workers=3: the second
        half must match an uninterrupted serial run post-for-post."""
        serial = SharedComponentMultiUser(algorithm, thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        half = len(posts) // 2

        with ParallelSharedMultiUser(
            algorithm, thresholds, graph, subscriptions, workers=2
        ) as first:
            assert run_batches(first, posts[:half]) == expected[:half]
            state = first.state_dict()

        with ParallelSharedMultiUser(
            algorithm, thresholds, graph, subscriptions, workers=3
        ) as second:
            second.load_state(state)
            assert run_batches(second, posts[half:]) == expected[half:]
            assert (
                second.aggregate_stats().snapshot()
                == serial.aggregate_stats().snapshot()
            )

    def test_parallel_state_restores_into_serial(
        self, graph, subscriptions, thresholds, posts
    ):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        half = len(posts) // 2

        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as parallel:
            run_batches(parallel, posts[:half])
            state = parallel.state_dict()

        resumed = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        resumed.load_state(state)
        assert [resumed.offer(post) for post in posts[half:]] == expected[half:]

    def test_serial_state_restores_into_parallel(
        self, graph, subscriptions, thresholds, posts
    ):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        half = len(posts) // 2

        warm = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        for post in posts[:half]:
            warm.offer(post)

        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=3
        ) as resumed:
            resumed.load_state(warm.state_dict())
            assert run_batches(resumed, posts[half:]) == expected[half:]

    def test_component_count_mismatch_rejected(self, graph, subscriptions, thresholds):
        other = SubscriptionTable({100: [1, 2, 3, 4]})
        donor = ParallelSharedMultiUser("unibin", thresholds, graph, other, workers=1)
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            with pytest.raises(CheckpointError):
                engine.load_state(donor.state_dict())


class TestJsonRoundTrip:
    def test_snapshot_restore_continues_exactly(
        self, graph, subscriptions, thresholds, posts, tmp_path
    ):
        serial = SharedComponentMultiUser("cliquebin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        half = len(posts) // 2
        path = tmp_path / "parallel.ckpt.json"

        with ParallelSharedMultiUser(
            "cliquebin", thresholds, graph, subscriptions, workers=2
        ) as first:
            run_batches(first, posts[:half])
            save_checkpoint(snapshot_engine(first), path)

        restored = restore_engine(
            load_checkpoint(path), graph=graph, subscriptions=subscriptions
        )
        try:
            assert isinstance(restored, ParallelSharedMultiUser)
            assert restored.name == "p_cliquebin"
            assert restored.workers == 2  # snapshot carries the pool size
            assert run_batches(restored, posts[half:]) == expected[half:]
        finally:
            restored.close()

    def test_snapshot_records_worker_count(self, graph, subscriptions, thresholds):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=3
        ) as engine:
            snap = snapshot_engine(engine)
        assert snap["kind"] == "multi"
        assert snap["engine"] == "p_unibin"
        assert snap["workers"] == 3

    def test_serial_snapshot_has_no_worker_field(
        self, graph, subscriptions, thresholds
    ):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        assert "workers" not in snapshot_engine(serial)
