"""Fixtures for the parallel execution-layer suite.

A deterministic multi-component world, big enough that sharding has real
work to split: ten distinct components (a 4-clique-plus-tail, three
chains, a pair, and singletons), six users whose subscriptions overlap so
the catalog actually deduplicates (sharing ratio 1/3), and a seeded
stream mixing fresh fingerprints with near-duplicates so every algorithm
exercises both admit and cover paths.
"""

from __future__ import annotations

import random

import pytest

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds
from repro.multiuser import SubscriptionTable

AUTHORS = list(range(1, 21))

EDGES = [
    (1, 2), (1, 3), (2, 3), (3, 4),       # triangle + tail
    (5, 6),                               # pair
    (7, 8), (8, 9),                       # chain
    (11, 12),                             # pair
    (17, 18), (18, 19), (19, 20),         # chain
]
# 10 and 13..16 stay singletons.


@pytest.fixture(scope="module")
def graph() -> AuthorGraph:
    return AuthorGraph(nodes=AUTHORS, edges=EDGES)


# Overlapping interests: components {1..4}, {5,6}, {7,8,9}, {10} and
# {17..20} are each shared by at least two users.
SUBSCRIPTIONS_SPEC = {
    100: [1, 2, 3, 4, 10, 13],
    200: [1, 2, 3, 4, 5, 6],
    300: [5, 6, 7, 8, 9, 14],
    400: [7, 8, 9, 17, 18, 19, 20],
    500: [10, 11, 12, 15, 16],
    600: [1, 2, 3, 4, 17, 18, 19, 20],
}


@pytest.fixture(scope="module")
def subscriptions() -> SubscriptionTable:
    return SubscriptionTable(SUBSCRIPTIONS_SPEC)


@pytest.fixture(scope="module")
def thresholds() -> Thresholds:
    return Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5)


def make_posts(n: int = 240, seed: int = 11) -> list[Post]:
    """Seeded stream over the fixture authors: strictly ordered timestamps,
    ~half the posts perturbations of an earlier fingerprint (0–3 bit flips,
    inside λc=8) so coverage actually fires, the rest fresh 64-bit values."""
    rng = random.Random(seed)
    posts: list[Post] = []
    now = 0.0
    for i in range(n):
        now += rng.random() * 2.0
        if posts and rng.random() < 0.5:
            fingerprint = posts[rng.randrange(len(posts))].fingerprint
            for _ in range(rng.randrange(4)):
                fingerprint ^= 1 << rng.randrange(64)
        else:
            fingerprint = rng.getrandbits(64)
        posts.append(
            Post(
                post_id=i,
                author=rng.choice(AUTHORS),
                text=f"p{i}",
                timestamp=now,
                fingerprint=fingerprint,
            )
        )
    return posts


@pytest.fixture(scope="module")
def posts() -> list[Post]:
    return make_posts()


def chunked(seq, size: int):
    for start in range(0, len(seq), size):
        yield seq[start : start + size]
