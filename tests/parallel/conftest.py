"""Fixtures for the parallel execution-layer suite.

A deterministic multi-component world, big enough that sharding has real
work to split: ten distinct components (a 4-clique-plus-tail, three
chains, a pair, and singletons), six users whose subscriptions overlap so
the catalog actually deduplicates (sharing ratio 1/3), and a seeded
stream mixing fresh fingerprints with near-duplicates so every algorithm
exercises both admit and cover paths. The world itself lives in
``tests/support.py`` (shared with the supervision, storage and
resilience suites); this conftest only wraps it in fixtures.
"""

from __future__ import annotations

import pytest

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds
from repro.multiuser import SubscriptionTable

from ..support import AUTHORS, EDGES, SUBSCRIPTIONS_SPEC, chunked, make_posts

__all__ = ["AUTHORS", "EDGES", "SUBSCRIPTIONS_SPEC", "chunked", "make_posts"]


@pytest.fixture(scope="module")
def graph() -> AuthorGraph:
    return AuthorGraph(nodes=AUTHORS, edges=EDGES)


@pytest.fixture(scope="module")
def subscriptions() -> SubscriptionTable:
    return SubscriptionTable(SUBSCRIPTIONS_SPEC)


@pytest.fixture(scope="module")
def thresholds() -> Thresholds:
    return Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5)


@pytest.fixture(scope="module")
def posts() -> list[Post]:
    return make_posts()
