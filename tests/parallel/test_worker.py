"""The shard worker protocol, driven in-process.

``shard_worker_main`` normally runs in a forked child; here it runs on a
thread over a real multiprocessing pipe so every protocol branch — batch,
stats, stored, purge, state, load, stop, error forwarding, unknown
command — executes under the test (and coverage) process.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.authors import ComponentCatalog
from repro.core import Post, RunStats, make_diversifier
from repro.parallel.worker import ShardSpec, build_shard_engines, shard_worker_main


@pytest.fixture()
def spec(graph, subscriptions, thresholds) -> ShardSpec:
    catalog = ComponentCatalog(graph, subscriptions.as_dict())
    return ShardSpec(
        algorithm="unibin",
        thresholds=thresholds,
        graph=graph,
        components=tuple(enumerate(catalog.components)),
    )


@pytest.fixture()
def worker(spec):
    parent, child = multiprocessing.Pipe()
    thread = threading.Thread(target=shard_worker_main, args=(child, spec))
    thread.start()
    assert parent.recv() == ("ok", "ready")
    try:
        yield parent
    finally:
        if not parent.closed:
            try:
                parent.send(("stop",))
                parent.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            parent.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()


def _rpc(conn, *message):
    conn.send(message)
    return conn.recv()


class TestBuildShardEngines:
    def test_one_engine_per_component_with_exact_subgraph(self, spec):
        engines = build_shard_engines(spec)
        assert sorted(engines) == [idx for idx, _ in spec.components]
        for idx, component in spec.components:
            twin = make_diversifier(
                spec.algorithm, spec.thresholds, spec.graph.subgraph(component)
            )
            assert engines[idx].name == twin.name
            assert engines[idx].state_dict() == twin.state_dict()


class TestProtocol:
    def test_batch_reports_admitting_components(self, worker, posts, spec):
        engines = build_shard_engines(spec)  # serial twin of the worker
        for chunk_start in (0, 40):
            chunk = posts[chunk_start : chunk_start + 40]
            items = []
            for seq, post in enumerate(chunk):
                indices = [
                    idx for idx, component in spec.components if post.author in component
                ]
                items.append((seq, post, indices))
            status, reply = _rpc(worker, "batch", items)
            assert status == "ok"
            expected = [
                (seq, [idx for idx in indices if engines[idx].offer(post)])
                for seq, post, indices in items
            ]
            assert reply == expected

    def test_stats_merge_all_engines(self, worker, posts, spec):
        items = [
            (0, posts[0], [idx for idx, c in spec.components if posts[0].author in c])
        ]
        _rpc(worker, "batch", items)
        status, payload = _rpc(worker, "stats")
        assert status == "ok"
        stats = RunStats()
        stats.load_state(payload)
        assert stats.posts_processed == len(items[0][2])

    def test_stored_purge_cycle(self, worker, posts, spec):
        items = []
        for seq, post in enumerate(posts[:30]):
            indices = [idx for idx, c in spec.components if post.author in c]
            items.append((seq, post, indices))
        _rpc(worker, "batch", items)
        status, stored = _rpc(worker, "stored")
        assert status == "ok" and stored > 0
        assert _rpc(worker, "purge", posts[29].timestamp + 1e9) == ("ok", None)
        assert _rpc(worker, "stored") == ("ok", 0)

    def test_state_load_round_trip(self, worker, spec, posts):
        items = []
        for seq, post in enumerate(posts[:20]):
            indices = [idx for idx, c in spec.components if post.author in c]
            items.append((seq, post, indices))
        _rpc(worker, "batch", items)
        status, states = _rpc(worker, "state")
        assert status == "ok"
        assert [idx for idx, _ in states] == sorted(idx for idx, _ in spec.components)
        # Loading its own state back must be accepted and idempotent.
        assert _rpc(worker, "load", states) == ("ok", None)
        assert _rpc(worker, "state") == ("ok", states)

    def test_engine_error_is_reported_not_fatal(self, worker, posts, spec):
        indices = [idx for idx, c in spec.components if posts[10].author in c]
        _rpc(worker, "batch", [(0, posts[10], indices)])
        # Same component, older timestamp: the engine's order check throws;
        # the worker must forward the error and keep serving.
        stale = Post(
            post_id=9999,
            author=posts[10].author,
            text="stale",
            timestamp=posts[10].timestamp - 1000.0,
            fingerprint=0,
        )
        status, type_name, message = _rpc(worker, "batch", [(0, stale, indices)])
        assert status == "error"
        assert "order" in (type_name + message).lower()
        assert _rpc(worker, "stored")[0] == "ok"  # still alive

    def test_unknown_command_rejected(self, worker):
        status, type_name, message = _rpc(worker, "frobnicate")
        assert status == "error"
        assert type_name == "ValueError"
        assert "frobnicate" in message

    def test_stop_acknowledges_and_exits(self, spec):
        parent, child = multiprocessing.Pipe()
        thread = threading.Thread(target=shard_worker_main, args=(child, spec))
        thread.start()
        assert parent.recv() == ("ok", "ready")
        parent.send(("stop",))
        assert parent.recv() == ("ok", None)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        parent.close()

    def test_parent_hangup_ends_worker(self, spec):
        parent, child = multiprocessing.Pipe()
        thread = threading.Thread(target=shard_worker_main, args=(child, spec))
        thread.start()
        assert parent.recv() == ("ok", "ready")
        parent.close()  # EOF on the worker's recv
        thread.join(timeout=5.0)
        assert not thread.is_alive()


class TestStartupFailure:
    def test_bad_algorithm_reported_before_ready(self, spec):
        broken = ShardSpec(
            algorithm="turbobin",
            thresholds=spec.thresholds,
            graph=spec.graph,
            components=spec.components,
        )
        parent, child = multiprocessing.Pipe()
        thread = threading.Thread(target=shard_worker_main, args=(child, broken))
        thread.start()
        status, type_name, message = parent.recv()
        assert status == "error"
        assert "turbobin" in message
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        parent.close()
