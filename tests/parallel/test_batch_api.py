"""The batch offer fast path and the parallel engine's lifecycle edges."""

import pytest

from repro.core import Thresholds, make_diversifier
from repro.errors import ConfigurationError, ParallelError, UnknownAlgorithmError
from repro.multiuser import (
    PARALLEL_NAMES,
    IndependentMultiUser,
    SharedComponentMultiUser,
    make_multiuser,
)
from repro.parallel import ParallelSharedMultiUser

ALGORITHMS = ("unibin", "neighborbin", "cliquebin", "indexed_unibin")


class TestSingleUserBatch:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_batch_equals_loop(self, graph, thresholds, posts, algorithm):
        looped = make_diversifier(algorithm, thresholds, graph)
        batched = make_diversifier(algorithm, thresholds, graph)
        assert batched.offer_batch(posts) == [looped.offer(p) for p in posts]
        assert batched.stats.snapshot() == looped.stats.snapshot()

    def test_empty_batch(self, graph, thresholds):
        assert make_diversifier("unibin", thresholds, graph).offer_batch([]) == []


class TestMultiUserBatch:
    @pytest.mark.parametrize(
        "factory", (IndependentMultiUser, SharedComponentMultiUser)
    )
    def test_batch_equals_loop(
        self, graph, subscriptions, thresholds, posts, factory
    ):
        looped = factory("unibin", thresholds, graph, subscriptions)
        batched = factory("unibin", thresholds, graph, subscriptions)
        assert batched.offer_batch(posts) == [looped.offer(p) for p in posts]
        assert (
            batched.aggregate_stats().snapshot()
            == looped.aggregate_stats().snapshot()
        )


class TestFactoryRouting:
    def test_parallel_names_cover_all_algorithms(self):
        assert PARALLEL_NAMES == tuple(f"p_{a}" for a in ALGORITHMS)

    def test_make_multiuser_builds_parallel_engine(
        self, graph, subscriptions, thresholds
    ):
        engine = make_multiuser(
            "p_cliquebin", thresholds, graph, subscriptions, workers=2, batch_size=64
        )
        try:
            assert isinstance(engine, ParallelSharedMultiUser)
            assert engine.name == "p_cliquebin"
            assert engine.workers == 2
            assert engine.batch_size == 64
        finally:
            engine.close()

    def test_indexed_unibin_only_via_parallel_prefix(
        self, graph, subscriptions, thresholds
    ):
        engine = make_multiuser("p_indexed_unibin", thresholds, graph, subscriptions)
        try:
            assert engine.algorithm == "indexed_unibin"
        finally:
            engine.close()
        with pytest.raises(UnknownAlgorithmError):
            make_multiuser("s_indexed_unibin", thresholds, graph, subscriptions)

    def test_unknown_prefix_still_rejected(self, graph, subscriptions, thresholds):
        with pytest.raises(UnknownAlgorithmError):
            make_multiuser("q_unibin", thresholds, graph, subscriptions)


class TestLifecycle:
    def test_workers_clamped_to_distinct_components(
        self, graph, subscriptions, thresholds
    ):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=99
        ) as engine:
            assert engine.workers == engine.catalog.distinct_count
            assert engine.shard_count() == engine.workers

    def test_invalid_config_rejected(self, graph, subscriptions, thresholds):
        with pytest.raises(ConfigurationError):
            ParallelSharedMultiUser(
                "unibin", thresholds, graph, subscriptions, workers=0
            )
        with pytest.raises(ConfigurationError):
            ParallelSharedMultiUser(
                "unibin", thresholds, graph, subscriptions, batch_size=0
            )

    def test_empty_batch_is_empty(self, graph, subscriptions, thresholds):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            assert engine.offer_batch([]) == []

    def test_close_is_idempotent_and_use_after_close_raises(
        self, graph, subscriptions, thresholds, posts
    ):
        engine = ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        )
        engine.offer_batch(posts[:5])
        engine.close()
        engine.close()  # second close must be a no-op
        with pytest.raises(ParallelError):
            engine.offer_batch(posts[5:10])
        with pytest.raises(ParallelError):
            engine.aggregate_stats()

    def test_sharing_ratio_matches_serial(self, graph, subscriptions, thresholds):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            assert engine.sharing_ratio() == pytest.approx(serial.sharing_ratio())
            assert engine.instance_count() == serial.instance_count()

    def test_purge_drops_stored_copies(self, graph, subscriptions, thresholds, posts):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            engine.offer_batch(posts)
            assert engine.stored_copies() > 0
            engine.purge(posts[-1].timestamp + 1e6)
            assert engine.stored_copies() == 0
