"""Cost-model sharding: plan determinism, completeness and balance."""

import pytest

from repro.authors import AuthorGraph, ComponentCatalog
from repro.errors import ConfigurationError
from repro.parallel import ShardPlan, component_cost, plan_shards


class TestPlanShards:
    def test_every_component_assigned_exactly_once(self):
        plan = plan_shards([5.0, 3.0, 2.0, 2.0, 1.0], workers=3)
        assigned = [idx for shard in plan.assignments for idx in shard]
        assert sorted(assigned) == [0, 1, 2, 3, 4]

    def test_deterministic(self):
        costs = [7.0, 7.0, 3.0, 3.0, 1.0, 1.0]
        assert plan_shards(costs, 3) == plan_shards(costs, 3)

    def test_loads_sum_to_total_cost(self):
        costs = [5.0, 3.0, 2.0, 2.0, 1.0]
        plan = plan_shards(costs, workers=2)
        assert sum(plan.loads) == pytest.approx(sum(costs))
        for shard, indices in enumerate(plan.assignments):
            assert plan.loads[shard] == pytest.approx(
                sum(costs[i] for i in indices)
            )

    def test_lpt_separates_the_two_giants(self):
        # Largest-first onto least-loaded: the two dominant costs must not
        # share a shard while an empty one exists.
        plan = plan_shards([100.0, 90.0, 1.0, 1.0], workers=2)
        owner = plan.shard_of_component()
        assert owner[0] != owner[1]

    def test_assignments_sorted_within_shard(self):
        plan = plan_shards([1.0, 9.0, 1.0, 9.0, 1.0], workers=2)
        for indices in plan.assignments:
            assert list(indices) == sorted(indices)

    def test_more_workers_than_components(self):
        plan = plan_shards([2.0, 1.0], workers=4)
        assert plan.shard_count == 4
        assert plan.loads[2] == plan.loads[3] == 0.0

    def test_workers_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards([1.0], workers=0)

    def test_single_worker_takes_everything(self):
        plan = plan_shards([3.0, 2.0, 1.0], workers=1)
        assert plan.assignments == ((0, 1, 2),)


class TestImbalance:
    def test_perfect_balance_is_zero(self):
        assert plan_shards([2.0, 2.0, 2.0, 2.0], 2).imbalance() == pytest.approx(0.0)

    def test_giant_component_dominates(self):
        # One unsplittable giant: imbalance approaches workers - 1.
        imbalance = plan_shards([1000.0, 1.0, 1.0, 1.0], 4).imbalance()
        assert imbalance == pytest.approx(3.0, rel=0.05)

    def test_empty_plan_is_zero(self):
        assert ShardPlan(assignments=(), loads=()).imbalance() == 0.0


class TestComponentCost:
    @pytest.fixture()
    def graph(self) -> AuthorGraph:
        return AuthorGraph(
            nodes=[1, 2, 3, 4, 5, 6, 7],
            edges=[(1, 2), (1, 3), (2, 3), (3, 4), (5, 6)],
        )

    @pytest.mark.parametrize(
        "algorithm", ["unibin", "neighborbin", "cliquebin", "indexed_unibin"]
    )
    def test_positive_for_every_algorithm(self, graph, algorithm):
        for component in ({1, 2, 3, 4}, {5, 6}, {7}):
            cost = component_cost(algorithm, graph, frozenset(component))
            assert cost > 0.0

    def test_bigger_component_costs_more(self, graph):
        small = component_cost("unibin", graph, frozenset({5, 6}))
        big = component_cost("unibin", graph, frozenset({1, 2, 3, 4}))
        assert big > small

    def test_singleton_has_nonzero_floor(self, graph):
        assert component_cost("unibin", graph, frozenset({7})) >= 1.0

    def test_empty_component_is_unit(self, graph):
        assert component_cost("unibin", graph, frozenset()) == 1.0

    def test_catalog_plan_end_to_end(self, graph):
        catalog = ComponentCatalog(graph, {1: {1, 2, 3, 4}, 2: {5, 6, 7}})
        costs = [
            component_cost("cliquebin", graph, component)
            for component in catalog.components
        ]
        plan = plan_shards(costs, workers=2)
        assert plan.shard_count == 2
        owner = plan.shard_of_component()
        assert sorted(owner) == list(range(catalog.distinct_count))
