"""Shard autoscaling: policy hysteresis, live splits/merges, crash safety.

Two layers. The policy layer is tested against a scripted fake engine so
every threshold/patience interaction is pinned without process overhead.
The execution layer pits live ``split_shard``/``merge_shards`` on a
supervised pool — including worker crashes before, during and after the
topology change — against the serial shared-component oracle: per-post
receiver sets, aggregate stats and the checkpoint state must stay
byte-identical, exactly as for plain crash recovery.
"""

import pytest

from repro.errors import ConfigurationError, ParallelError
from repro.multiuser import SharedComponentMultiUser
from repro.parallel import (
    AutoscaleEvent,
    AutoscalePolicy,
    ParallelSharedMultiUser,
    ShardAutoscaler,
)
from repro.resilience import WorkerFaultPlan, snapshot_engine

from ..supervise.conftest import fast_config
from .conftest import chunked


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"split_bytes": 0},
            {"split_bytes": 100, "merge_bytes": 100},
            {"split_bytes": 100, "merge_bytes": 150},
            {"split_bytes": 100, "min_shards": 0},
            {"split_bytes": 100, "min_shards": 4, "max_shards": 2},
            {"split_bytes": 100, "check_every": 0},
            {"split_bytes": 100, "patience": 0},
        ),
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(**kwargs)

    def test_merge_threshold_defaults_to_half_split(self):
        assert AutoscalePolicy(split_bytes=1000).effective_merge_bytes == 500
        assert (
            AutoscalePolicy(split_bytes=1000, merge_bytes=200).effective_merge_bytes
            == 200
        )


class FakeSupervisor:
    def __init__(self):
        self.retired = set()

    def is_retired(self, shard):
        return shard in self.retired


class FakeTopology:
    """Scripted per-shard usage; splits/merges mutate the script."""

    def __init__(self, usage, components=4):
        self._usage = dict(usage)  # shard -> bytes
        self._components = {s: components for s in usage}
        self.supervisor = FakeSupervisor()
        self.split_calls = []
        self.merge_calls = []

    def memory_by_shard(self):
        return {s: {"window": b} for s, b in self._usage.items()}

    def components_of_shard(self, shard):
        return tuple(range(self._components[shard]))

    def shard_count(self):
        return len(self._usage)

    def split_shard(self, shard):
        self.split_calls.append(shard)
        new = max(self._usage) + 1
        self._usage[shard] //= 2
        self._usage[new] = self._usage[shard]
        moved = self._components[shard] // 2
        self._components[shard] -= moved
        self._components[new] = moved
        return new

    def merge_shards(self, target, source):
        self.merge_calls.append((target, source))
        self._usage[target] += self._usage.pop(source)
        self._components[target] += self._components.pop(source)
        self.supervisor.retired.add(source)


class TestPolicyDecisions:
    def test_split_waits_for_patience(self):
        engine = FakeTopology({0: 5000, 1: 100})
        scaler = ShardAutoscaler(engine, AutoscalePolicy(split_bytes=1000, patience=2))
        assert scaler.evaluate() is None  # hot streak 1 < patience
        event = scaler.evaluate()
        assert event == AutoscaleEvent("split", 0, 2, 5000)
        assert engine.split_calls == [0]
        assert scaler.splits == 1

    def test_cooling_off_resets_the_hot_streak(self):
        engine = FakeTopology({0: 5000, 1: 100})
        scaler = ShardAutoscaler(engine, AutoscalePolicy(split_bytes=1000, patience=2))
        scaler.evaluate()
        engine._usage[0] = 100  # dips below the threshold for one evaluation
        assert scaler.evaluate() is None
        engine._usage[0] = 5000
        assert scaler.evaluate() is None  # streak restarted at 1
        assert scaler.evaluate() is not None

    def test_single_component_shards_never_split(self):
        engine = FakeTopology({0: 5000}, components=1)
        scaler = ShardAutoscaler(engine, AutoscalePolicy(split_bytes=1000, patience=1))
        assert scaler.evaluate() is None
        assert engine.split_calls == []

    def test_max_shards_clamps_splits(self):
        engine = FakeTopology({0: 5000, 1: 5000})
        scaler = ShardAutoscaler(
            engine, AutoscalePolicy(split_bytes=1000, patience=1, max_shards=2)
        )
        assert scaler.evaluate() is None
        assert engine.split_calls == []

    def test_hottest_ripe_shard_splits_first(self):
        engine = FakeTopology({0: 3000, 1: 9000, 2: 100})
        scaler = ShardAutoscaler(engine, AutoscalePolicy(split_bytes=1000, patience=1))
        event = scaler.evaluate()
        assert event.action == "split"
        assert event.shard == 1

    def test_merge_needs_cold_patience_and_respects_min_shards(self):
        engine = FakeTopology({0: 100, 1: 100, 2: 5000})
        scaler = ShardAutoscaler(
            engine,
            AutoscalePolicy(split_bytes=100000, merge_bytes=1000, patience=2),
        )
        assert scaler.evaluate() is None  # cold streak 1
        event = scaler.evaluate()
        assert event == AutoscaleEvent("merge", 0, 1, 200)
        assert engine.merge_calls == [(0, 1)]
        assert scaler.merges == 1

    def test_min_shards_blocks_merges(self):
        engine = FakeTopology({0: 10, 1: 10})
        scaler = ShardAutoscaler(
            engine,
            AutoscalePolicy(split_bytes=100000, merge_bytes=1000, patience=1, min_shards=2),
        )
        assert scaler.evaluate() is None
        assert engine.merge_calls == []

    def test_warm_pair_resets_the_cold_streak(self):
        engine = FakeTopology({0: 100, 1: 100})
        scaler = ShardAutoscaler(
            engine,
            AutoscalePolicy(split_bytes=100000, merge_bytes=1000, patience=2),
        )
        scaler.evaluate()
        engine._usage[1] = 2000  # pair no longer cold
        assert scaler.evaluate() is None
        engine._usage[1] = 100
        assert scaler.evaluate() is None  # cold streak restarted
        assert scaler.evaluate() is not None

    def test_at_most_one_change_per_evaluation(self):
        # Shards 0 and 1 are freezing, shard 2 is boiling: the split wins
        # the round and the merge must wait for the next evaluation.
        engine = FakeTopology({0: 10, 1: 10, 2: 50000})
        scaler = ShardAutoscaler(
            engine,
            AutoscalePolicy(split_bytes=1000, merge_bytes=900, patience=1),
        )
        event = scaler.evaluate()
        assert event.action == "split"
        assert engine.merge_calls == []
        engine._usage[2] = engine._usage[3] = 950  # halves cooled below split
        event = scaler.evaluate()
        assert event.action == "merge"

    def test_retired_shards_drop_out_of_the_usage_signal(self):
        engine = FakeTopology({0: 100, 1: 100, 2: 100})
        engine.supervisor.retired.add(2)
        scaler = ShardAutoscaler(
            engine,
            AutoscalePolicy(split_bytes=100000, merge_bytes=1000, patience=1),
        )
        event = scaler.evaluate()
        assert event.action == "merge"
        assert {event.shard, event.other} <= {0, 1}

    def test_observe_paces_evaluations(self):
        engine = FakeTopology({0: 5000})
        scaler = ShardAutoscaler(
            engine, AutoscalePolicy(split_bytes=1000, patience=1, check_every=100)
        )
        scaler.observe(99)
        assert scaler._since_check == 99
        scaler.observe(1)  # evaluation ran (single-component: no event)
        assert scaler._since_check == 0

    def test_status_reports_counts_and_shards(self):
        engine = FakeTopology({0: 5000, 1: 10})
        scaler = ShardAutoscaler(engine, AutoscalePolicy(split_bytes=1000, patience=1))
        scaler.evaluate()
        assert scaler.status() == {"splits": 1, "merges": 0, "shards": 3}


# -- live execution against the serial oracle --------------------------------


def serial_oracle(thresholds, graph, subscriptions, posts):
    serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
    expected = [serial.offer(post) for post in posts]
    return serial, expected


def supervised(thresholds, graph, subscriptions, *, plans=None, autoscale=None):
    return ParallelSharedMultiUser(
        "unibin",
        thresholds,
        graph,
        subscriptions,
        workers=3,
        supervised=True,
        supervision=fast_config(),
        fault_plans=plans,
        autoscale=autoscale,
    )


def assert_equivalent(engine, serial, received, expected):
    assert received == expected
    assert engine.aggregate_stats().snapshot() == serial.aggregate_stats().snapshot()
    assert engine.stored_copies() == serial.stored_copies()
    assert (
        snapshot_engine(engine)["components"] == snapshot_engine(serial)["components"]
    )


def run_with_topology_changes(engine, posts, *, at=None):
    """Feed the stream in batches, running `at[batch_index]()` callbacks
    between batches (the live topology changes under test)."""
    at = at or {}
    received = []
    for i, chunk in enumerate(chunked(posts, 32)):
        if i in at:
            at[i]()
        received.extend(engine.offer_batch(chunk))
    return received


class TestLiveSplitAndMerge:
    def test_split_is_invisible_to_receivers(
        self, graph, subscriptions, thresholds, posts
    ):
        serial, expected = serial_oracle(thresholds, graph, subscriptions, posts)
        with supervised(thresholds, graph, subscriptions) as engine:
            new_index = {}

            def split():
                new_index["value"] = engine.split_shard(0)

            received = run_with_topology_changes(engine, posts, at={3: split})
            assert new_index["value"] == 3
            assert engine.shard_count() == 4
            assert engine.supervisor.active_shard_count == 4
            assert_equivalent(engine, serial, received, expected)

    def test_merge_is_invisible_to_receivers(
        self, graph, subscriptions, thresholds, posts
    ):
        serial, expected = serial_oracle(thresholds, graph, subscriptions, posts)
        with supervised(thresholds, graph, subscriptions) as engine:
            received = run_with_topology_changes(
                engine, posts, at={4: lambda: engine.merge_shards(0, 1)}
            )
            assert engine.shard_count() == 2
            assert engine.supervisor.is_retired(1)
            assert engine.supervisor.retired_shards() == (1,)
            assert_equivalent(engine, serial, received, expected)

    def test_split_then_merge_back_round_trips(
        self, graph, subscriptions, thresholds, posts
    ):
        serial, expected = serial_oracle(thresholds, graph, subscriptions, posts)
        with supervised(thresholds, graph, subscriptions) as engine:
            steps = {
                2: lambda: engine.split_shard(0),
                5: lambda: engine.merge_shards(0, 3),
            }
            received = run_with_topology_changes(engine, posts, at=steps)
            assert engine.shard_count() == 3
            assert_equivalent(engine, serial, received, expected)

    def test_shard_stats_pads_retired_indices(
        self, graph, subscriptions, thresholds, posts
    ):
        with supervised(thresholds, graph, subscriptions) as engine:
            run_with_topology_changes(
                engine, posts, at={3: lambda: engine.merge_shards(2, 0)}
            )
            stats = engine.shard_stats()
            assert len(stats) == 3  # positional: retired slot 0 still there
            assert stats[0].posts_processed == 0  # the tombstone is empty
            assert stats[2].posts_processed > 0

    def test_split_rejects_single_component_and_retired_shards(
        self, graph, subscriptions, thresholds, posts
    ):
        with supervised(thresholds, graph, subscriptions) as engine:
            run_with_topology_changes(
                engine, posts[:64], at={1: lambda: engine.merge_shards(1, 2)}
            )
            with pytest.raises(ParallelError):
                engine.split_shard(2)  # retired
            with pytest.raises(ParallelError):
                engine.merge_shards(0, 2)  # retired source
            with pytest.raises(ParallelError):
                engine.merge_shards(1, 1)  # self-merge

    def test_unsupervised_pool_refuses_topology_changes(
        self, graph, subscriptions, thresholds
    ):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=3
        ) as engine:
            with pytest.raises(ParallelError):
                engine.split_shard(0)
            with pytest.raises(ParallelError):
                engine.merge_shards(0, 1)


class TestCrashSafety:
    def test_crash_before_split_recovers_byte_identical(
        self, graph, subscriptions, thresholds, posts
    ):
        serial, expected = serial_oracle(thresholds, graph, subscriptions, posts)
        with supervised(
            thresholds,
            graph,
            subscriptions,
            plans={0: WorkerFaultPlan(crash_on_batch=2)},
        ) as engine:
            received = run_with_topology_changes(
                engine, posts, at={4: lambda: engine.split_shard(0)}
            )
            assert engine.supervisor.restarts_of(0) == 1
            assert engine.shard_count() == 4
            assert_equivalent(engine, serial, received, expected)

    def test_crash_after_split_replays_the_shrunken_spec(
        self, graph, subscriptions, thresholds, posts
    ):
        """The donor's respawn spec is only updated after a rolling
        checkpoint covers the post-drop state; a crash right after the
        split must restore exactly the kept components."""
        serial, expected = serial_oracle(thresholds, graph, subscriptions, posts)
        with supervised(
            thresholds,
            graph,
            subscriptions,
            plans={0: WorkerFaultPlan(crash_on_batch=4)},
        ) as engine:
            received = run_with_topology_changes(
                engine, posts, at={3: lambda: engine.split_shard(0)}
            )
            assert engine.supervisor.restarts_of(0) == 1
            assert_equivalent(engine, serial, received, expected)

    def test_new_shard_killed_right_after_split_recovers(
        self, graph, subscriptions, thresholds, posts
    ):
        """Kill the freshly spawned worker the instant the split commits:
        its respawn rebuilds from the moved-components spec plus the
        checkpoint the split took, byte-identical to never crashing."""
        serial, expected = serial_oracle(thresholds, graph, subscriptions, posts)
        with supervised(thresholds, graph, subscriptions) as engine:

            def split_and_kill():
                new = engine.split_shard(0)
                engine.supervisor._shards[new].process.kill()

            received = run_with_topology_changes(engine, posts, at={3: split_and_kill})
            assert engine.supervisor.restarts_of(3) == 1
            assert_equivalent(engine, serial, received, expected)

    def test_target_killed_right_after_merge_recovers(
        self, graph, subscriptions, thresholds, posts
    ):
        serial, expected = serial_oracle(thresholds, graph, subscriptions, posts)
        with supervised(thresholds, graph, subscriptions) as engine:

            def merge_and_kill():
                engine.merge_shards(0, 2)
                engine.supervisor._shards[0].process.kill()

            received = run_with_topology_changes(engine, posts, at={4: merge_and_kill})
            assert engine.supervisor.restarts_of(0) == 1
            assert engine.supervisor.is_retired(2)
            assert_equivalent(engine, serial, received, expected)

    def test_probe_limit_survives_crash_via_journal_replay(
        self, graph, subscriptions, thresholds, posts
    ):
        """set_probe_limit changes verdicts, so it is journalled: a crash
        after the cap was applied must replay it, matching a serial engine
        capped at the same stream position."""
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = []
        for i, chunk in enumerate(chunked(posts, 32)):
            if i == 2:
                serial.set_probe_limit(2)
            expected.extend(serial.offer_batch(chunk))

        with supervised(
            thresholds,
            graph,
            subscriptions,
            # Large cadence: the journal (not a checkpoint) must carry the cap.
            plans={1: WorkerFaultPlan(crash_on_batch=4)},
        ) as engine:
            received = run_with_topology_changes(
                engine, posts, at={2: lambda: engine.set_probe_limit(2)}
            )
            assert engine.supervisor.restarts_of(1) == 1
            assert received == expected
            assert (
                engine.aggregate_stats().snapshot()
                == serial.aggregate_stats().snapshot()
            )


class TestAutoscaledRun:
    def test_autoscaler_splits_under_real_load_and_stays_exact(
        self, graph, subscriptions, thresholds
    ):
        from .conftest import make_posts

        posts = make_posts(480, seed=5)
        serial, expected = serial_oracle(thresholds, graph, subscriptions, posts)
        policy = AutoscalePolicy(
            split_bytes=2500, patience=1, check_every=64, max_shards=8
        )
        with supervised(
            thresholds, graph, subscriptions, autoscale=policy
        ) as engine:
            received = []
            for chunk in chunked(posts, 32):
                received.extend(engine.offer_batch(chunk))
            assert engine.autoscaler is not None
            assert engine.autoscaler.splits >= 1
            assert engine.shard_count() > 3
            assert engine.autoscaler.status()["shards"] == engine.shard_count()
            assert_equivalent(engine, serial, received, expected)

    def test_autoscale_requires_supervision(self, graph, subscriptions, thresholds):
        with pytest.raises(ConfigurationError):
            ParallelSharedMultiUser(
                "unibin",
                thresholds,
                graph,
                subscriptions,
                workers=3,
                autoscale=AutoscalePolicy(split_bytes=1000),
            )
