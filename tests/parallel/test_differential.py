"""Differential suite: the sharded engine must be *exact*, not approximate.

Every test pits :class:`ParallelSharedMultiUser` against a serial oracle —
the shared-component engine it decomposes, or the per-user independent
baseline — and asserts per-post receiver-set equality plus full RunStats
agreement. Shard layout, worker count and chunking must all be invisible.
"""

import pytest

from repro.core import Post, Thresholds
from repro.multiuser import IndependentMultiUser, SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser

from .conftest import chunked, make_posts

ALGORITHMS = ("unibin", "neighborbin", "cliquebin", "indexed_unibin")

# The λ grid: strict/baseline/lenient in both content and time.
LAMBDA_GRID = (
    Thresholds(lambda_c=3, lambda_t=15.0, lambda_a=0.5),
    Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5),
    Thresholds(lambda_c=16, lambda_t=120.0, lambda_a=0.5),
)


def run_parallel(engine, posts, batch: int = 32):
    received = []
    for chunk in chunked(posts, batch):
        received.extend(engine.offer_batch(chunk))
    return received


class TestAgainstSerialShared:
    @pytest.mark.parametrize("workers", (1, 2, 3))
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_receivers_and_stats_identical(
        self, graph, subscriptions, thresholds, posts, algorithm, workers
    ):
        serial = SharedComponentMultiUser(algorithm, thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        with ParallelSharedMultiUser(
            algorithm, thresholds, graph, subscriptions, workers=workers
        ) as engine:
            assert run_parallel(engine, posts) == expected
            assert (
                engine.aggregate_stats().snapshot()
                == serial.aggregate_stats().snapshot()
            )
            assert engine.stored_copies() == serial.stored_copies()

    @pytest.mark.parametrize("lam", LAMBDA_GRID, ids=("strict", "baseline", "lenient"))
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_lambda_grid(self, graph, subscriptions, posts, algorithm, lam):
        serial = SharedComponentMultiUser(algorithm, lam, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        with ParallelSharedMultiUser(
            algorithm, lam, graph, subscriptions, workers=2
        ) as engine:
            assert run_parallel(engine, posts) == expected
            assert (
                engine.aggregate_stats().snapshot()
                == serial.aggregate_stats().snapshot()
            )

    @pytest.mark.parametrize("batch", (1, 7, 64, 1000))
    def test_chunking_invariance(self, graph, subscriptions, thresholds, posts, batch):
        """The chunk size amortizes IPC; it must never change an answer."""
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            assert run_parallel(engine, posts, batch=batch) == expected

    def test_different_seeds_agree(self, graph, subscriptions, thresholds):
        for seed in (1, 2, 3):
            stream = make_posts(n=120, seed=seed)
            serial = SharedComponentMultiUser(
                "cliquebin", thresholds, graph, subscriptions
            )
            expected = [serial.offer(post) for post in stream]
            with ParallelSharedMultiUser(
                "cliquebin", thresholds, graph, subscriptions, workers=3
            ) as engine:
                assert run_parallel(engine, stream) == expected


class TestAgainstIndependentBaseline:
    @pytest.mark.parametrize("algorithm", ("unibin", "neighborbin", "cliquebin"))
    def test_timelines_match_per_user_baseline(
        self, graph, subscriptions, thresholds, posts, algorithm
    ):
        """Transitively exact: parallel == shared == independent (§5)."""
        baseline = IndependentMultiUser(algorithm, thresholds, graph, subscriptions)
        expected = baseline.run(posts)
        with ParallelSharedMultiUser(
            algorithm, thresholds, graph, subscriptions, workers=2, batch_size=50
        ) as engine:
            assert engine.run(posts) == expected


class TestRouting:
    def test_unknown_author_routes_nowhere(self, graph, subscriptions, thresholds):
        ghost = Post(post_id=1, author=999, text="", timestamp=0.0, fingerprint=0)
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            assert engine.offer_batch([ghost]) == [frozenset()]

    def test_single_post_offer_delegates_to_batch(
        self, graph, subscriptions, thresholds, posts
    ):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            for post in posts[:40]:
                assert engine.offer(post) == serial.offer(post)
