"""The binary post codec and shared-memory rings behind ``transport="shm"``.

Round-trip fidelity is the whole contract: a post decoded from the ring
must be *indistinguishable* — same values, same Python types — from the
post the serial engine saw, or checkpoints and verdicts drift. Hypothesis
drives the codec across the full fixed-width ranges (int64 boundaries,
uint64 fingerprints, unicode texts); anything outside them must refuse to
encode (→ pickled fallback) rather than quietly truncate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Post, Thresholds
from repro.multiuser import SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser
from repro.parallel.shm import (
    ShmRing,
    attach_ring,
    batch_nbytes,
    detach_shm_batch,
    encode_batch,
    shared_memory_available,
    unpack_batch,
)

from .conftest import chunked

I64_MIN, I64_MAX = -(2**63), 2**63 - 1
U64_MAX = 2**64 - 1

i64 = st.integers(min_value=I64_MIN, max_value=I64_MAX)
u64 = st.integers(min_value=0, max_value=U64_MAX)
timestamps = st.floats(allow_nan=False, width=64)
texts = st.text(max_size=40)

posts = st.builds(
    Post,
    post_id=i64,
    author=i64,
    text=texts,
    timestamp=timestamps,
    fingerprint=u64,
)

items_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        posts,
        st.lists(st.integers(min_value=0, max_value=500), max_size=6),
    ),
    min_size=1,
    max_size=30,
)


def _pack(encoded):
    rows, idx_offsets, idx_values, texts_out = encoded
    blob = rows.tobytes() + idx_offsets.tobytes() + idx_values.tobytes()
    return blob, len(rows), len(idx_values), texts_out


class TestCodecRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(items_strategy)
    def test_round_trip_is_identity(self, items):
        encoded = encode_batch(items)
        assert encoded is not None
        blob, nrows, nidx, texts_out = _pack(encoded)
        assert len(blob) == batch_nbytes(nrows, nidx)
        decoded = unpack_batch(blob, nrows, nidx, texts_out)
        assert decoded == items
        # Type identity, not just equality: an int timestamp or a numpy
        # scalar would serialise differently in checkpoint JSON.
        for (_, post, indices), (_, original, _orig_idx) in zip(decoded, items):
            assert type(post.post_id) is int
            assert type(post.author) is int
            assert type(post.timestamp) is float
            assert type(post.fingerprint) is int
            assert type(post.text) is str
            assert all(type(i) is int for i in indices)

    def test_boundary_values_round_trip(self):
        post = Post(
            post_id=I64_MAX, author=I64_MIN, text="", timestamp=-0.0,
            fingerprint=U64_MAX,
        )
        items = [(0, post, [0])]
        blob, nrows, nidx, texts_out = _pack(encode_batch(items))
        (seq, decoded, indices), = unpack_batch(blob, nrows, nidx, texts_out)
        assert decoded == post

    @pytest.mark.parametrize(
        "field, value",
        [
            ("post_id", True),  # bool is an int subclass — must not encode
            ("post_id", I64_MAX + 1),
            ("author", I64_MIN - 1),
            ("timestamp", 5),  # int timestamp would decode as float
            ("fingerprint", U64_MAX + 1),
            ("fingerprint", -1),
            ("fingerprint", 1.0),
        ],
    )
    def test_unencodable_fields_refuse_wholesale(self, field, value):
        kwargs = dict(post_id=1, author=2, text="t", timestamp=3.0, fingerprint=4)
        kwargs[field] = value
        items = [
            (0, Post(post_id=0, author=0, text="", timestamp=0.0, fingerprint=0), []),
            (1, Post(**kwargs), [1]),
        ]
        assert encode_batch(items) is None


@pytest.mark.skipif(not shared_memory_available(), reason="no shared memory")
class TestShmRing:
    def _items(self, n, base=0):
        return [
            (
                base + i,
                Post(
                    post_id=base + i, author=i % 3, text=f"t{i}",
                    timestamp=float(i), fingerprint=i * 7,
                ),
                [i % 2],
            )
            for i in range(n)
        ]

    def test_write_read_round_trip(self):
        ring = ShmRing.create(4096)
        try:
            encoded = encode_batch(self._items(5))
            rows, idx_offsets, idx_values, texts_out = encoded
            offset = ring.write(rows, idx_offsets, idx_values)
            assert offset == 0
            view = ring.read(offset, batch_nbytes(len(rows), len(idx_values)))
            decoded = unpack_batch(view, len(rows), len(idx_values), texts_out)
            del view  # release the memoryview before close()
            assert decoded == self._items(5)
        finally:
            ring.close()
            ring.unlink()

    def test_offsets_stay_aligned_and_wrap(self):
        encoded = encode_batch(self._items(3))
        rows, idx_offsets, idx_values, _ = encoded
        nbytes = batch_nbytes(len(rows), len(idx_values))
        ring = ShmRing.create(nbytes + nbytes // 2)
        try:
            first = ring.write(rows, idx_offsets, idx_values)
            assert first == 0
            # The tail cannot hold a second batch: it must wrap to 0, not
            # spill past capacity.
            second = ring.write(rows, idx_offsets, idx_values)
            assert second == 0
            assert second % 8 == 0
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_batch_refuses(self):
        encoded = encode_batch(self._items(10))
        rows, idx_offsets, idx_values, _ = encoded
        ring = ShmRing.create(16)
        try:
            assert ring.write(rows, idx_offsets, idx_values) is None
        finally:
            ring.close()
            ring.unlink()

    def test_detached_payload_decodes_identically(self):
        """The journal form survives ring reuse: decode the detached blob
        after the region has been overwritten."""
        items = self._items(4)
        encoded = encode_batch(items)
        rows, idx_offsets, idx_values, texts_out = encoded
        ring = ShmRing.create(4096)
        try:
            offset = ring.write(rows, idx_offsets, idx_values)
            descriptor = (
                "shm_batch", ring.name, offset, len(rows), len(idx_values), texts_out,
            )
            payload = detach_shm_batch(descriptor)
            assert payload[0] == "shm_batch_payload"
            # Clobber the ring region, then decode the detached copy.
            other = encode_batch(self._items(4, base=100))
            ring._offset = 0
            ring.write(other[0], other[1], other[2])
            _, blob, nrows, nidx, texts_back = payload
            assert unpack_batch(blob, nrows, nidx, texts_back) == items
        finally:
            ring.close()
            ring.unlink()

    def test_detach_passes_other_messages_through(self):
        message = ("purge", 123.0)
        assert detach_shm_batch(message) is message

    def test_attach_returns_cached_owner_handle(self):
        ring = ShmRing.create(1024)
        try:
            assert attach_ring(ring.name) is ring
        finally:
            ring.close()
            ring.unlink()


@pytest.mark.skipif(not shared_memory_available(), reason="no shared memory")
class TestTransportEquivalence:
    """shm and pipe transports must be indistinguishable from serial."""

    @pytest.mark.parametrize("algorithm", ["unibin", "indexed_unibin"])
    def test_shm_pipe_serial_identical(
        self, algorithm, thresholds, graph, subscriptions, posts
    ):
        serial = SharedComponentMultiUser(algorithm, thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        outputs = {}
        states = {}
        for transport in ("shm", "pipe"):
            with ParallelSharedMultiUser(
                algorithm, thresholds, graph, subscriptions,
                workers=2, transport=transport,
            ) as engine:
                assert engine.transport == transport
                received = []
                for chunk in chunked(posts, 16):
                    received.extend(engine.offer_batch(chunk))
                outputs[transport] = received
                states[transport] = engine.state_dict()
        assert outputs["shm"] == expected
        assert outputs["pipe"] == expected
        assert states["shm"] == states["pipe"]

    def test_shm_transport_reports_ring_bytes(
        self, thresholds, graph, subscriptions, posts
    ):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2, transport="shm"
        ) as engine:
            assert engine.transport_bytes() > 0
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2, transport="pipe"
        ) as engine:
            assert engine.transport_bytes() == 0
