"""The CLI's multi-user mode: --subscriptions / --workers / --batch-size.

Runs ``python -m repro diversify`` in process against the fixture world
and checks the receiver trace against the serial engine, plus the flag
validation around the new multi-user mode.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io import write_graph_json, write_posts_jsonl, write_subscriptions_json
from repro.multiuser import SharedComponentMultiUser

from .conftest import make_posts


@pytest.fixture()
def world_files(tmp_path, graph, subscriptions):
    posts = make_posts(n=120, seed=5)
    posts_path = tmp_path / "posts.jsonl"
    graph_path = tmp_path / "graph.json"
    subs_path = tmp_path / "subscriptions.json"
    write_posts_jsonl(posts, posts_path)
    write_graph_json(graph, graph_path)
    write_subscriptions_json(subscriptions, subs_path)
    return posts, posts_path, graph_path, subs_path


def _receivers_by_post(path):
    out = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            out[record["post_id"]] = sorted(record["receivers"])
    return out


class TestMultiUserDiversify:
    def _lambda_args(self, thresholds):
        return [
            "--lambda-c", str(thresholds.lambda_c),
            "--lambda-t", str(thresholds.lambda_t),
            "--lambda-a", str(thresholds.lambda_a),
        ]

    def test_parallel_run_matches_serial_engine(
        self, tmp_path, world_files, graph, subscriptions, thresholds, capsys
    ):
        posts, posts_path, graph_path, subs_path = world_files
        out_path = tmp_path / "receivers.jsonl"
        rc = main(
            [
                "diversify",
                "--posts", str(posts_path),
                "--graph", str(graph_path),
                "--subscriptions", str(subs_path),
                "--algorithm", "unibin",
                "--workers", "2",
                "--batch-size", "32",
                "--output", str(out_path),
                *self._lambda_args(thresholds),
            ]
        )
        assert rc == 0
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = {
            post.post_id: sorted(receivers)
            for post in posts
            if (receivers := serial.offer(post))
        }
        assert _receivers_by_post(out_path) == expected
        out = capsys.readouterr().out
        assert "p_unibin" in out
        assert "shards: 2" in out

    def test_checkpoint_resume_round_trip(
        self, tmp_path, world_files, graph, subscriptions, thresholds, capsys
    ):
        posts, posts_path, graph_path, subs_path = world_files
        half = len(posts) // 2
        first_path = tmp_path / "first.jsonl"
        rest_path = tmp_path / "rest.jsonl"
        write_posts_jsonl(posts[:half], first_path)
        write_posts_jsonl(posts[half:], rest_path)
        ckpt = tmp_path / "ckpt.json"
        common = [
            "--graph", str(graph_path),
            "--subscriptions", str(subs_path),
            "--algorithm", "p_cliquebin",
            "--workers", "2",
            *self._lambda_args(thresholds),
        ]
        assert main(
            ["diversify", "--posts", str(first_path), *common,
             "--checkpoint-out", str(ckpt)]
        ) == 0
        out_path = tmp_path / "resumed.jsonl"
        assert main(
            ["diversify", "--posts", str(rest_path), *common,
             "--resume-from", str(ckpt), "--output", str(out_path)]
        ) == 0
        serial = SharedComponentMultiUser("cliquebin", thresholds, graph, subscriptions)
        expected = {
            post.post_id: sorted(receivers)
            for i, post in enumerate(posts)
            if (receivers := serial.offer(post)) and i >= half
        }
        assert _receivers_by_post(out_path) == expected

    def test_workers_require_subscriptions(self, world_files):
        _, posts_path, _, _ = world_files
        rc = main(
            ["diversify", "--posts", str(posts_path), "--workers", "2"]
        )
        assert rc == 2

    def test_multiuser_requires_graph(self, world_files):
        _, posts_path, _, subs_path = world_files
        rc = main(
            [
                "diversify",
                "--posts", str(posts_path),
                "--subscriptions", str(subs_path),
            ]
        )
        assert rc == 2

    def test_serial_name_with_workers_rejected(self, world_files):
        _, posts_path, graph_path, subs_path = world_files
        rc = main(
            [
                "diversify",
                "--posts", str(posts_path),
                "--graph", str(graph_path),
                "--subscriptions", str(subs_path),
                "--algorithm", "s_unibin",
                "--workers", "2",
            ]
        )
        assert rc == 2

    def test_metrics_out_in_multiuser_mode(
        self, tmp_path, world_files, thresholds, capsys
    ):
        _, posts_path, graph_path, subs_path = world_files
        metrics_path = tmp_path / "metrics.json"
        rc = main(
            [
                "diversify",
                "--posts", str(posts_path),
                "--graph", str(graph_path),
                "--subscriptions", str(subs_path),
                "--algorithm", "unibin",
                "--workers", "2",
                "--metrics-out", str(metrics_path),
                *self._lambda_args(thresholds),
            ]
        )
        assert rc == 0
        snap = json.loads(metrics_path.read_text(encoding="utf-8"))
        names = {metric["name"] for metric in snap["metrics"]}
        assert "repro_parallel_shards" in names
        assert "repro_multiuser_posts_total" in names
