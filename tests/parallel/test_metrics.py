"""Observability of the sharded engine.

The aggregate view must be shard-transparent (metric values equal the
serial engine's ground truth), and the execution layer must expose what
only it can know: shard count, planned imbalance, per-shard load labels.
"""

import pytest

from repro.multiuser import SharedComponentMultiUser
from repro.obs import NULL_REGISTRY, Registry
from repro.parallel import ParallelSharedMultiUser

from .conftest import chunked


@pytest.fixture()
def bound(graph, subscriptions, thresholds, posts):
    registry = Registry()
    with ParallelSharedMultiUser(
        "unibin", thresholds, graph, subscriptions, workers=2
    ) as engine:
        engine.bind_metrics(registry)
        for chunk in chunked(posts, 32):
            engine.offer_batch(chunk)
        yield registry, engine


class TestAggregateAgreement:
    def test_stream_counters(self, bound, posts, graph, subscriptions, thresholds):
        registry, engine = bound
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        deliveries = 0
        consulted = 0
        for post in posts:
            receivers = serial.offer(post)
            deliveries += len(receivers)
            consulted += len(
                [c for c in engine.catalog.components if post.author in c]
            )
        name = engine.name
        assert registry.value("repro_multiuser_posts_total", engine=name) == len(posts)
        assert (
            registry.value("repro_multiuser_deliveries_total", engine=name)
            == deliveries
        )
        assert (
            registry.value("repro_multiuser_instance_offers_total", engine=name)
            == consulted
        )

    def test_cost_counters_equal_serial_ground_truth(
        self, bound, posts, graph, subscriptions, thresholds
    ):
        registry, engine = bound
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        for post in posts:
            serial.offer(post)
        truth = serial.aggregate_stats()
        name = engine.name
        assert (
            registry.value("repro_comparisons_total", engine=name)
            == truth.comparisons
        )
        assert (
            registry.value("repro_insertions_total", engine=name) == truth.insertions
        )
        assert registry.value("repro_stored_copies", engine=name) == (
            serial.stored_copies()
        )


class TestShardView:
    def test_shard_gauges(self, bound):
        registry, engine = bound
        name = engine.name
        assert registry.value("repro_parallel_shards", engine=name) == (
            engine.shard_count()
        )
        assert registry.value(
            "repro_parallel_shard_imbalance", engine=name
        ) == pytest.approx(engine.plan.imbalance())

    def test_per_shard_labels_sum_to_aggregate(self, bound):
        registry, engine = bound
        name = engine.name
        total = engine.aggregate_stats()
        for metric, expected in (
            ("repro_shard_posts_total", total.posts_processed),
            ("repro_shard_comparisons_total", total.comparisons),
            ("repro_shard_stored_copies", total.stored_copies),
        ):
            sliced = [
                registry.value(metric, engine=name, shard=shard)
                for shard in range(engine.shard_count())
            ]
            assert sum(sliced) == expected

    def test_per_shard_matches_shard_stats(self, bound):
        registry, engine = bound
        name = engine.name
        for shard, stats in enumerate(engine.shard_stats()):
            assert (
                registry.value("repro_shard_posts_total", engine=name, shard=shard)
                == stats.posts_processed
            )


class TestNullRegistry:
    def test_noop_binding_records_nothing(self, graph, subscriptions, thresholds, posts):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=1
        ) as engine:
            engine.bind_metrics(NULL_REGISTRY)
            assert engine._metrics is None
            engine.offer_batch(posts[:10])  # must not touch any instrument
