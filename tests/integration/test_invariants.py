"""System-level invariants on a realistic dataset (DESIGN.md §6).

1. Coverage: every input post is covered by an admitted post.
2. Agreement: UniBin, NeighborBin and CliqueBin admit identical Z.
3. S_*/M_* equivalence: shared-component engines deliver exactly the
   per-user baselines' timelines.
"""

import pytest

from repro.core import CoverageChecker, Thresholds
from repro.eval import compare_algorithms, pruning_audit, verify_coverage
from repro.multiuser import make_multiuser

THRESHOLD_SETTINGS = [
    Thresholds(),                                     # paper defaults
    Thresholds(lambda_c=9, lambda_t=600.0, lambda_a=0.6),
    Thresholds(lambda_c=22, lambda_t=3600.0, lambda_a=0.8),
]


class TestCoverageInvariant:
    @pytest.mark.parametrize("thresholds", THRESHOLD_SETTINGS)
    def test_all_algorithms_cover_stream(self, dataset, thresholds):
        graph = dataset.graph(thresholds.lambda_a)
        runs = compare_algorithms(thresholds, graph, dataset.posts)
        checker = CoverageChecker(thresholds, graph)
        for run in runs:
            verify_coverage(dataset.posts, run.admitted_ids, checker)

    def test_unibin_author_dimension_disabled(self, dataset):
        from repro.eval import run_algorithm

        thresholds = Thresholds().without("author")
        run = run_algorithm("unibin", thresholds, None, dataset.posts[:400])
        checker = CoverageChecker(thresholds, None)
        verify_coverage(dataset.posts[:400], run.admitted_ids, checker)


class TestAgreementInvariant:
    @pytest.mark.parametrize("thresholds", THRESHOLD_SETTINGS)
    def test_three_algorithms_identical_output(self, dataset, thresholds):
        graph = dataset.graph(thresholds.lambda_a)
        runs = compare_algorithms(thresholds, graph, dataset.posts)
        assert runs[0].admitted_ids == runs[1].admitted_ids == runs[2].admitted_ids

    def test_scan_order_does_not_change_output(self, dataset):
        from repro.core import make_diversifier
        from repro.eval import run_diversifier

        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        newest = run_diversifier(
            make_diversifier("unibin", thresholds, graph, newest_first=True),
            dataset.posts,
        )
        oldest = run_diversifier(
            make_diversifier("unibin", thresholds, graph, newest_first=False),
            dataset.posts,
        )
        assert newest.admitted_ids == oldest.admitted_ids


class TestMultiUserEquivalence:
    @pytest.mark.parametrize("algorithm", ["unibin", "neighborbin", "cliquebin"])
    def test_s_equals_m(self, dataset, algorithm):
        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        subscriptions = dataset.subscriptions()
        posts = dataset.posts[:500]
        m_timelines = make_multiuser(
            f"m_{algorithm}", thresholds, graph, subscriptions
        ).run(posts)
        s_timelines = make_multiuser(
            f"s_{algorithm}", thresholds, graph, subscriptions
        ).run(posts)
        assert m_timelines == s_timelines


class TestPruningQuality:
    def test_pruned_posts_are_mostly_ground_truth_duplicates(self, dataset):
        """The diversifier should prune what the generator planted: most
        pruned posts carry duplicate provenance."""
        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        run = compare_algorithms(thresholds, graph, dataset.posts)[0]
        redundant_ids = {
            pid for pid, prov in dataset.stream.provenance.items() if prov.redundant
        }
        audit = pruning_audit(dataset.posts, run.admitted_ids, redundant_ids)
        assert audit["pruned"] > 0
        assert audit["prune_precision"] > 0.7

    def test_retention_near_paper(self, dataset):
        """Paper: ~10% pruned at default thresholds."""
        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        run = compare_algorithms(thresholds, graph, dataset.posts)[0]
        assert 0.80 <= run.retention_ratio <= 0.97
