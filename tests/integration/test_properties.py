"""Property-based tests over random streams and graphs (hypothesis).

These generate arbitrary worlds — random author graphs, random fingerprints
and timestamps — and assert the structural invariants hold on every one:
identical outputs across all three algorithms (and their multi-user
wrappers), the coverage guarantee, and clique-cover validity.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.authors import AuthorGraph, greedy_clique_cover, verify_cover
from repro.core import CoverageChecker, Post, Thresholds, make_diversifier
from repro.eval import find_uncovered
from repro.multiuser import SubscriptionTable, make_multiuser


@st.composite
def worlds(draw):
    """A random (graph, posts, thresholds) triple."""
    n_authors = draw(st.integers(min_value=1, max_value=8))
    authors = list(range(n_authors))
    possible_edges = [
        (a, b) for a in authors for b in authors if a < b
    ]
    edges = [e for e in possible_edges if draw(st.booleans())]
    graph = AuthorGraph(authors, edges)

    lambda_c = draw(st.integers(min_value=0, max_value=24))
    lambda_t = draw(st.floats(min_value=1.0, max_value=200.0))
    thresholds = Thresholds(lambda_c=lambda_c, lambda_t=lambda_t, lambda_a=0.7)

    n_posts = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    posts = []
    t = 0.0
    for post_id in range(n_posts):
        t += rng.expovariate(0.1)
        base = rng.getrandbits(64)
        # Half the posts echo an earlier fingerprint with small flips, so
        # coverage actually happens.
        if posts and rng.random() < 0.5:
            base = posts[rng.randrange(len(posts))].fingerprint
            for _ in range(rng.randrange(0, 6)):
                base ^= 1 << rng.randrange(64)
        posts.append(
            Post(
                post_id=post_id,
                author=rng.randrange(n_authors),
                text="",
                timestamp=t,
                fingerprint=base,
            )
        )
    return graph, posts, thresholds


@settings(max_examples=120, deadline=None)
@given(worlds())
def test_all_algorithms_agree(world):
    """The paper's three algorithms AND the indexed extension admit the
    identical sub-stream on any input."""
    graph, posts, thresholds = world
    outputs = []
    for name in ("unibin", "neighborbin", "cliquebin", "indexed_unibin"):
        algo = make_diversifier(name, thresholds, graph)
        outputs.append([p.post_id for p in algo.diversify(posts)])
    assert all(out == outputs[0] for out in outputs[1:])


@settings(max_examples=120, deadline=None)
@given(worlds())
def test_coverage_guarantee(world):
    graph, posts, thresholds = world
    algo = make_diversifier("unibin", thresholds, graph)
    admitted = frozenset(p.post_id for p in algo.diversify(posts))
    checker = CoverageChecker(thresholds, graph)
    assert find_uncovered(posts, admitted, checker) == []


@settings(max_examples=60, deadline=None)
@given(worlds())
def test_admitted_posts_mutually_diverse_within_window(world):
    """No two admitted posts may cover each other *at admission time* —
    i.e. for any admitted pair, the earlier one must not cover the later
    one (otherwise the later was redundant and should have been pruned)."""
    graph, posts, thresholds = world
    algo = make_diversifier("unibin", thresholds, graph)
    admitted = algo.diversify(posts)
    checker = CoverageChecker(thresholds, graph)
    for i, later in enumerate(admitted):
        for earlier in admitted[:i]:
            assert not checker.covers(later, earlier)


@settings(max_examples=60, deadline=None)
@given(worlds())
def test_multiuser_engines_agree(world):
    graph, posts, thresholds = world
    if len(graph) < 2:
        return
    authors = sorted(graph.nodes)
    subscriptions = SubscriptionTable(
        {
            1000: authors,                       # follows everyone
            2000: authors[: max(1, len(authors) // 2)],
        }
    )
    m_timelines = make_multiuser("m_cliquebin", thresholds, graph, subscriptions).run(posts)
    s_timelines = make_multiuser("s_cliquebin", thresholds, graph, subscriptions).run(posts)
    assert m_timelines == s_timelines


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.floats(0.0, 0.8))
def test_clique_cover_valid_on_random_graphs(seed, p):
    rng = random.Random(seed)
    n = rng.randrange(1, 25)
    edges = [(a, b) for a in range(n) for b in range(a + 1, n) if rng.random() < p]
    graph = AuthorGraph(range(n), edges)
    verify_cover(graph, greedy_clique_cover(graph))


@settings(max_examples=60, deadline=None)
@given(worlds())
def test_full_stream_single_user_matches_component_union(world):
    """Decomposing one user's stream by connected components and merging
    the outputs must equal diversifying the whole stream at once — the §5
    correctness argument, tested directly."""
    graph, posts, thresholds = world
    whole = make_diversifier("unibin", thresholds, graph)
    expected = {p.post_id for p in whole.diversify(posts)}

    from repro.authors import connected_components

    got: set[int] = set()
    for component in connected_components(graph):
        sub = graph.subgraph(component)
        algo = make_diversifier("unibin", thresholds, sub)
        component_posts = [p for p in posts if p.author in component]
        got.update(p.post_id for p in algo.diversify(component_posts))
    assert got == expected
