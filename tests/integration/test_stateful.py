"""Model-based (stateful) property tests.

Hypothesis drives random operation sequences against the two mutable
structures with the subtlest invariants — the pigeonhole SimHash index and
the incremental similarity maintainer — checking them after every step
against trivially-correct reference models.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.authors.incremental import SimilarityMaintainer
from repro.simhash import SimHashIndex, hamming

FINGERPRINTS = st.integers(min_value=0, max_value=2**64 - 1)
KEYS = st.integers(min_value=0, max_value=30)


class SimHashIndexMachine(RuleBasedStateMachine):
    """The index must always agree with a brute-force dict."""

    def __init__(self):
        super().__init__()
        self.index = SimHashIndex(radius=6)
        self.model: dict[int, int] = {}  # key -> fingerprint

    @rule(fingerprint=FINGERPRINTS, key=KEYS)
    def add(self, fingerprint, key):
        # Same-key re-add replaces, mirroring the index contract.
        if key in self.model:
            self.index.remove(self.model[key], key)
            del self.model[key]
        self.index.add(fingerprint, key)
        self.model[key] = fingerprint

    @rule(key=KEYS)
    def remove(self, key):
        if key in self.model:
            self.index.remove(self.model[key], key)
            del self.model[key]
        else:
            self.index.remove(12345, key)  # no-op on absent key

    @rule(query=FINGERPRINTS)
    def query_matches_model(self, query):
        expected = {
            (key, hamming(query, fp))
            for key, fp in self.model.items()
            if hamming(query, fp) <= 6
        }
        assert set(self.index.query(query)) == expected

    @invariant()
    def size_matches(self):
        assert len(self.index) == len(self.model)


class SimilarityMaintainerMachine(RuleBasedStateMachine):
    """The incremental edge set must always equal full recomputation."""

    AUTHORS = list(range(6))
    THRESHOLD = 0.45

    def __init__(self):
        super().__init__()
        self.model: dict[int, set[int]] = {a: set() for a in self.AUTHORS}
        self.maintainer = SimilarityMaintainer(
            {a: set() for a in self.AUTHORS}, threshold=self.THRESHOLD
        )

    def _expected_edges(self):
        edges = set()
        for i, a in enumerate(self.AUTHORS):
            for b in self.AUTHORS[i + 1 :]:
                fa, fb = self.model[a], self.model[b]
                if not fa or not fb:
                    continue
                shared = len(fa & fb)
                if shared and shared / math.sqrt(len(fa) * len(fb)) >= (
                    self.THRESHOLD - 1e-12
                ):
                    edges.add((a, b))
        return edges

    @rule(
        author=st.sampled_from(AUTHORS),
        followee=st.integers(min_value=100, max_value=112),
    )
    def follow(self, author, followee):
        self.maintainer.follow(author, followee)
        self.model[author].add(followee)

    @rule(
        author=st.sampled_from(AUTHORS),
        followee=st.integers(min_value=100, max_value=112),
    )
    def unfollow(self, author, followee):
        self.maintainer.unfollow(author, followee)
        self.model[author].discard(followee)

    @invariant()
    def edges_match_recomputation(self):
        assert self.maintainer.edges() == self._expected_edges()


TestSimHashIndexStateful = SimHashIndexMachine.TestCase
TestSimHashIndexStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)

TestSimilarityMaintainerStateful = SimilarityMaintainerMachine.TestCase
TestSimilarityMaintainerStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
