"""End-to-end CLI coverage of the bounded-memory flags.

The bounded-memory PR shipped ``--memory-budget`` and ``--spill-dir``
without CLI tests; these close the gap by running ``python -m repro
diversify`` in process and asserting on the stderr ``memory:`` summary —
the only user-visible accounting line — plus the composition cases: the
governor with spill storage attached, and ``--supervise`` together with
``--memory-budget`` on the sharded engine.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.authors import AuthorGraph
from repro.cli import main
from repro.core import Thresholds
from repro.io import write_graph_json, write_posts_jsonl, write_subscriptions_json
from repro.multiuser import SubscriptionTable

from ..support import AUTHORS, EDGES, SUBSCRIPTIONS_SPEC, make_posts

MEMORY_LINE = re.compile(
    r"memory: (?P<total>[\d,]+)/(?P<budget>[\d,]+) accounted bytes, "
    r"level (?P<level>normal|spill|probe|shed), "
    r"(?P<escalations>\d+) escalations / (?P<releases>\d+) releases"
)

THRESHOLDS = Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5)


@pytest.fixture()
def world_files(tmp_path):
    # Long enough that the governor (check_every=256 posts) gets several
    # ticks, so tight budgets visibly escalate through the summary line.
    posts = make_posts(n=600, seed=7)
    posts_path = tmp_path / "posts.jsonl"
    graph_path = tmp_path / "graph.json"
    subs_path = tmp_path / "subscriptions.json"
    write_posts_jsonl(posts, posts_path)
    write_graph_json(AuthorGraph(nodes=AUTHORS, edges=EDGES), graph_path)
    write_subscriptions_json(SubscriptionTable(SUBSCRIPTIONS_SPEC), subs_path)
    return posts_path, graph_path, subs_path


def _lambda_args():
    return [
        "--lambda-c", str(THRESHOLDS.lambda_c),
        "--lambda-t", str(THRESHOLDS.lambda_t),
        "--lambda-a", str(THRESHOLDS.lambda_a),
    ]


def _parse_memory_line(err: str):
    match = MEMORY_LINE.search(err)
    assert match, f"no memory: summary on stderr, got: {err!r}"
    return match


class TestSingleUserMemoryBudget:
    def test_memory_summary_on_stderr(self, tmp_path, world_files, capsys):
        posts_path, graph_path, _ = world_files
        rc = main(
            ["diversify", "--posts", str(posts_path), "--graph", str(graph_path),
             "--algorithm", "unibin", "--memory-budget", "500000"]
            + _lambda_args()
        )
        assert rc == 0
        match = _parse_memory_line(capsys.readouterr().err)
        assert int(match["budget"].replace(",", "")) == 500_000
        assert match["level"] == "normal"  # a huge budget never escalates

    def test_no_summary_without_budget(self, tmp_path, world_files, capsys):
        posts_path, graph_path, _ = world_files
        rc = main(
            ["diversify", "--posts", str(posts_path), "--graph", str(graph_path),
             "--algorithm", "unibin"] + _lambda_args()
        )
        assert rc == 0
        assert "memory:" not in capsys.readouterr().err

    def test_tight_budget_escalates(self, tmp_path, world_files, capsys):
        posts_path, graph_path, _ = world_files
        rc = main(
            ["diversify", "--posts", str(posts_path), "--graph", str(graph_path),
             "--algorithm", "unibin", "--memory-budget", "100",
             "--spill-dir", str(tmp_path / "spill")] + _lambda_args()
        )
        assert rc == 0
        match = _parse_memory_line(capsys.readouterr().err)
        assert match["level"] != "normal"
        assert int(match["escalations"]) > 0


class TestMultiUserMemoryBudget:
    def test_spill_dir_preserves_receiver_trace(
        self, tmp_path, world_files, capsys
    ):
        """--spill-dir must not change a single delivery (the storage
        subsystem's exactness bar, checked end-to-end through the CLI)."""
        posts_path, graph_path, subs_path = world_files
        plain, spilled = tmp_path / "plain.jsonl", tmp_path / "spilled.jsonl"
        base = [
            "diversify", "--posts", str(posts_path), "--graph", str(graph_path),
            "--subscriptions", str(subs_path), "--algorithm", "s_unibin",
        ] + _lambda_args()
        assert main(base + ["--output", str(plain)]) == 0
        assert main(base + [
            "--output", str(spilled), "--spill-dir", str(tmp_path / "seg"),
        ]) == 0
        assert plain.read_text() == spilled.read_text()

    def test_memory_summary_in_multiuser_mode(self, tmp_path, world_files, capsys):
        posts_path, graph_path, subs_path = world_files
        rc = main(
            ["diversify", "--posts", str(posts_path), "--graph", str(graph_path),
             "--subscriptions", str(subs_path), "--algorithm", "s_unibin",
             "--memory-budget", "2000", "--spill-dir", str(tmp_path / "seg"),
             "--batch-size", "16"] + _lambda_args()
        )
        assert rc == 0
        match = _parse_memory_line(capsys.readouterr().err)
        assert int(match["escalations"]) > 0
        assert match["level"] in ("spill", "probe", "shed")

    def test_supervise_composes_with_memory_budget(
        self, tmp_path, world_files, capsys
    ):
        """Regression: the supervised sharded pool and the memory
        governor attach to the same engine without stepping on each
        other — both summaries appear, and the run exits cleanly."""
        posts_path, graph_path, subs_path = world_files
        out = tmp_path / "receivers.jsonl"
        rc = main(
            ["diversify", "--posts", str(posts_path), "--graph", str(graph_path),
             "--subscriptions", str(subs_path), "--algorithm", "p_unibin",
             "--workers", "2", "--supervise", "--memory-budget", "500000",
             "--output", str(out)] + _lambda_args()
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "supervision:" in captured.err
        _parse_memory_line(captured.err)
        # The receiver trace matches the unsupervised, unbudgeted run.
        plain = tmp_path / "plain.jsonl"
        assert main(
            ["diversify", "--posts", str(posts_path), "--graph", str(graph_path),
             "--subscriptions", str(subs_path), "--algorithm", "s_unibin",
             "--output", str(plain)] + _lambda_args()
        ) == 0
        assert sorted(out.read_text().splitlines()) == sorted(
            plain.read_text().splitlines()
        )

    def test_metrics_snapshot_composes_with_budget(
        self, tmp_path, world_files, capsys
    ):
        posts_path, graph_path, subs_path = world_files
        metrics = tmp_path / "metrics.json"
        rc = main(
            ["diversify", "--posts", str(posts_path), "--graph", str(graph_path),
             "--subscriptions", str(subs_path), "--algorithm", "s_unibin",
             "--memory-budget", "500000", "--metrics-out", str(metrics)]
            + _lambda_args()
        )
        assert rc == 0
        snapshot = json.loads(metrics.read_text())
        assert any(
            family["name"] == "repro_multiuser_posts_total"
            for family in snapshot["metrics"]
        )
