"""Tiered storage at the engine level: spilling must never change a verdict.

The acceptance bar for the whole storage subsystem: every algorithm, run
with ``storage=SpillConfig(...)`` aggressive enough to keep almost nothing
in memory, must produce byte-identical verdicts, stats and checkpoints to
the all-in-memory run — including under forced mid-stream ``spill()``
calls (the governor's first ladder rung). The probe-limit rung is the one
*deliberate* divergence, and its failure mode is pinned here too: capped
scans may leak duplicates, they never lose posts.
"""

import os

import pytest

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds, make_diversifier
from repro.errors import ConfigurationError
from repro.multiuser import SubscriptionTable, make_multiuser
from repro.storage import SpillConfig

from ..support import (
    AUTHORS,
    EDGES,
    SUBSCRIPTIONS_SPEC,
    make_posts,
)

ALGORITHMS = ("unibin", "neighborbin", "cliquebin", "indexed_unibin")


@pytest.fixture(scope="module")
def graph():
    return AuthorGraph(nodes=AUTHORS, edges=EDGES)


@pytest.fixture(scope="module")
def thresholds():
    return Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5)


@pytest.fixture(scope="module")
def posts():
    return make_posts(300, seed=23)


def aggressive(tmp_path) -> SpillConfig:
    """Spill everything past a 4-post head, in 2-post segments."""
    return SpillConfig(str(tmp_path), head_limit=4, segment_size=2)


class TestVerdictNeutrality:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_user_verdicts_stats_and_state_match(
        self, tmp_path, graph, thresholds, posts, algorithm
    ):
        exact = make_diversifier(algorithm, thresholds, graph)
        tiered = make_diversifier(
            algorithm, thresholds, graph, storage=aggressive(tmp_path)
        )
        for post in posts:
            assert tiered.offer(post) == exact.offer(post)
        assert tiered.stats.snapshot() == exact.stats.snapshot()
        assert tiered.state_dict() == exact.state_dict()
        assert tiered.stored_copies() == exact.stored_copies()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_forced_spill_mid_stream_is_invisible(
        self, tmp_path, graph, thresholds, posts, algorithm
    ):
        exact = make_diversifier(algorithm, thresholds, graph)
        tiered = make_diversifier(
            algorithm, thresholds, graph, storage=aggressive(tmp_path)
        )
        for i, post in enumerate(posts):
            assert tiered.offer(post) == exact.offer(post)
            if i % 17 == 0:
                tiered.spill()  # governor rung 1, at an arbitrary instant
        assert tiered.state_dict() == exact.state_dict()

    def test_multiuser_receiver_sets_match(self, tmp_path, graph, thresholds, posts):
        subscriptions = SubscriptionTable(SUBSCRIPTIONS_SPEC)
        exact = make_multiuser("s_unibin", thresholds, graph, subscriptions)
        tiered = make_multiuser(
            "s_unibin",
            thresholds,
            graph,
            subscriptions,
            storage=aggressive(tmp_path),
        )
        for post in posts:
            assert tiered.offer(post) == exact.offer(post)
        assert (
            tiered.aggregate_stats().snapshot() == exact.aggregate_stats().snapshot()
        )

    def test_purge_with_tiered_storage_matches_exact_copies(
        self, tmp_path, graph, thresholds, posts
    ):
        exact = make_diversifier("unibin", thresholds, graph)
        tiered = make_diversifier(
            "unibin", thresholds, graph, storage=aggressive(tmp_path)
        )
        for post in posts:
            exact.offer(post)
            tiered.offer(post)
        exact.purge()
        tiered.purge()
        assert tiered.stored_copies() == exact.stored_copies()


class TestSpillMechanics:
    def test_engine_spill_reports_posts_moved_and_writes_segments(
        self, tmp_path, graph, thresholds, posts
    ):
        engine = make_diversifier(
            "unibin",
            thresholds,
            graph,
            storage=SpillConfig(str(tmp_path), head_limit=512, segment_size=4),
        )
        for post in posts[:60]:
            engine.offer(post)
        assert not os.listdir(tmp_path)  # head_limit high: nothing spilled yet
        moved = engine.spill()
        assert moved > 0
        assert os.listdir(tmp_path)
        assert engine.spill() == 0  # heads are empty now

    def test_spill_without_storage_is_zero(self, graph, thresholds, posts):
        engine = make_diversifier("unibin", thresholds, graph)
        for post in posts[:20]:
            engine.offer(post)
        assert engine.spill() == 0

    def test_memory_breakdown_shrinks_after_spill(
        self, tmp_path, graph, thresholds, posts
    ):
        engine = make_diversifier(
            "unibin",
            thresholds,
            graph,
            storage=SpillConfig(str(tmp_path), head_limit=512, segment_size=4),
        )
        for post in posts[:80]:
            engine.offer(post)
        before = engine.memory_breakdown()["window"]
        engine.spill()
        after = engine.memory_breakdown()["window"]
        assert after < before
        assert engine.stored_copies() > 0  # the posts still logically exist


class TestProbeLimit:
    def test_rejects_nonpositive_limit(self, graph, thresholds):
        engine = make_diversifier("unibin", thresholds, graph)
        with pytest.raises(ConfigurationError):
            engine.set_probe_limit(0)

    def test_cap_leaks_duplicates_but_never_loses_posts(self, thresholds):
        """With the scan capped at 1 candidate, an old covering post is
        missed and its duplicate is admitted — the rung's documented
        sacrifice. No post is ever silently dropped: every offer still
        returns a verdict and admitted posts stay in the window."""
        graph = AuthorGraph(nodes=[1, 2, 3], edges=[])
        engine = make_diversifier("unibin", thresholds, graph)
        base = Post(post_id=0, author=1, text="a", timestamp=0.0, fingerprint=0)
        fresh = Post(post_id=1, author=1, text="b", timestamp=1.0, fingerprint=(1 << 40) - 1)
        dupe = Post(post_id=2, author=1, text="c", timestamp=2.0, fingerprint=0)
        assert engine.offer(base)
        assert engine.offer(fresh)
        assert not engine.offer(dupe)  # exact scan reaches back to `base`

        capped = make_diversifier("unibin", thresholds, graph)
        capped.set_probe_limit(1)
        assert capped.probe_limit == 1
        assert capped.offer(base)
        assert capped.offer(fresh)
        assert capped.offer(dupe)  # scan stops at `fresh`: duplicate leaks
        assert capped.stored_copies() == 3

    def test_uncapping_restores_exact_scans(self, thresholds):
        graph = AuthorGraph(nodes=[1], edges=[])
        engine = make_diversifier("unibin", thresholds, graph)
        engine.set_probe_limit(1)
        engine.set_probe_limit(None)
        assert engine.probe_limit is None
        assert engine.offer(
            Post(post_id=0, author=1, text="a", timestamp=0.0, fingerprint=0)
        )
        assert engine.offer(
            Post(post_id=1, author=1, text="b", timestamp=1.0, fingerprint=(1 << 40) - 1)
        )
        assert not engine.offer(
            Post(post_id=2, author=1, text="c", timestamp=2.0, fingerprint=0)
        )
