"""TieredPostBin against the in-memory PostBin oracle.

The tiered bin's contract is drop-in equivalence: every mutation and
accounting return value, and every iteration order, must match a plain
:class:`PostBin` fed the same calls — the only permitted difference is
*where* the posts live. The differential driver below exercises random
interleavings of the full bin API against both flavours and asserts the
observable state is equal after every step.
"""

import gc
import os
import random

import pytest

from repro.core import Post
from repro.core.bins import PostBin
from repro.errors import ConfigurationError
from repro.storage import SpillConfig, TieredPostBin


def make_post(i: int, ts: float, author: int = 1) -> Post:
    return Post(post_id=i, author=author, text=f"p{i}", timestamp=ts, fingerprint=i)


def ordered_posts(n: int, *, step: float = 1.0) -> list[Post]:
    return [make_post(i, i * step, author=1 + i % 4) for i in range(n)]


def tiny_config(directory, head_limit: int = 4, segment_size: int = 2) -> SpillConfig:
    return SpillConfig(str(directory), head_limit=head_limit, segment_size=segment_size)


def segment_files(directory) -> list[str]:
    if not os.path.isdir(directory):
        return []
    return sorted(p for p in os.listdir(directory) if p.endswith(".bin"))


class TestConfigValidation:
    def test_rejects_nonpositive_segment_size(self):
        with pytest.raises(ConfigurationError):
            SpillConfig("/tmp/x", head_limit=4, segment_size=0)

    def test_rejects_head_smaller_than_segment(self):
        with pytest.raises(ConfigurationError):
            SpillConfig("/tmp/x", head_limit=2, segment_size=4)

    def test_rejects_none_directory(self):
        # Regression: an unset optional dir stringified via str(None) used
        # to create a literal ``None/`` directory at the caller's cwd.
        with pytest.raises(ConfigurationError, match="non-empty path"):
            SpillConfig(None)  # type: ignore[arg-type]

    def test_rejects_stringified_none_directory(self):
        with pytest.raises(ConfigurationError, match="literal string 'None'"):
            SpillConfig("None")

    def test_rejects_empty_directory(self):
        with pytest.raises(ConfigurationError, match="non-empty path"):
            SpillConfig("")

    def test_config_is_picklable(self):
        import pickle

        config = SpillConfig("/tmp/x", head_limit=8, segment_size=4)
        assert pickle.loads(pickle.dumps(config)) == config


class TestDropInEquivalence:
    def test_append_iter_len_match_postbin(self, tmp_path):
        plain, tiered = PostBin(), tiny_config(tmp_path).make_bin()
        for post in ordered_posts(11):
            plain.append(post)
            tiered.append(post)
        assert len(tiered) == len(plain)
        assert list(tiered) == list(plain)
        assert list(tiered.data) == list(plain.data)
        assert list(reversed(tiered.data)) == list(reversed(plain.data))
        # And the tiered bin really did spill (the parity is not vacuous).
        assert tiered.spilled_len > 0
        assert tiered.head_len <= 4

    @pytest.mark.parametrize("newest_first", (True, False))
    def test_scan_matches_postbin(self, tmp_path, newest_first):
        plain, tiered = PostBin(), tiny_config(tmp_path).make_bin()
        for post in ordered_posts(17):
            plain.append(post)
            tiered.append(post)
        for now, window in ((16.0, 5.0), (16.0, 100.0), (30.0, 5.0)):
            assert list(
                tiered.scan(now, window, newest_first=newest_first)
            ) == list(plain.scan(now, window, newest_first=newest_first))

    def test_expire_counts_match_postbin(self, tmp_path):
        plain, tiered = PostBin(), tiny_config(tmp_path).make_bin()
        for post in ordered_posts(20):
            plain.append(post)
            tiered.append(post)
        for now in (5.0, 9.5, 14.0, 100.0):
            assert tiered.expire(now, 4.0) == plain.expire(now, 4.0)
            assert list(tiered) == list(plain)

    def test_merge_and_remove_authored_match_postbin(self, tmp_path):
        plain, tiered = PostBin(), tiny_config(tmp_path).make_bin()
        for post in ordered_posts(9):
            plain.append(post)
            tiered.append(post)
        incoming = [make_post(100 + i, 2.5 + i, author=9) for i in range(4)]
        assert tiered.merge(incoming) == plain.merge(incoming)
        assert list(tiered) == list(plain)
        assert tiered.remove_authored(9) == plain.remove_authored(9)
        assert tiered.remove_authored(42) == plain.remove_authored(42)
        assert list(tiered) == list(plain)

    def test_clear_matches_postbin(self, tmp_path):
        plain, tiered = PostBin(), tiny_config(tmp_path).make_bin()
        for post in ordered_posts(7):
            plain.append(post)
            tiered.append(post)
        assert tiered.clear() == plain.clear()
        assert len(tiered) == 0
        assert list(tiered) == []

    def test_randomised_interleaving_matches_postbin(self, tmp_path):
        rng = random.Random(7)
        plain, tiered = PostBin(), tiny_config(tmp_path, 6, 3).make_bin()
        now, next_id = 0.0, 0
        for _ in range(300):
            op = rng.random()
            if op < 0.6:
                now += rng.random()
                post = make_post(next_id, now, author=1 + rng.randrange(5))
                next_id += 1
                plain.append(post)
                tiered.append(post)
            elif op < 0.8:
                window = rng.choice((3.0, 10.0, 40.0))
                assert tiered.expire(now, window) == plain.expire(now, window)
            elif op < 0.9:
                assert list(
                    tiered.scan(now, 10.0)
                ) == list(plain.scan(now, 10.0))
            elif op < 0.95:
                tiered.flush()  # plain bins have no tier: residency no-op
            else:
                author = 1 + rng.randrange(5)
                assert tiered.remove_authored(author) == plain.remove_authored(
                    author
                )
            assert len(tiered) == len(plain)
        assert list(tiered) == list(plain)


class TestTiering:
    def test_append_spills_oldest_past_head_limit(self, tmp_path):
        bin_ = tiny_config(tmp_path, head_limit=4, segment_size=2).make_bin()
        for post in ordered_posts(5):
            bin_.append(post)
        assert bin_.head_len == 3  # 5 arrivals - one 2-post segment
        assert bin_.spilled_len == 2
        assert bin_.segment_count == 1
        assert len(segment_files(tmp_path)) == 1

    def test_flush_moves_entire_head(self, tmp_path):
        bin_ = tiny_config(tmp_path).make_bin()
        posts = ordered_posts(3)
        for post in posts:
            bin_.append(post)
        assert bin_.flush() == 3
        assert bin_.head_len == 0
        assert bin_.spilled_len == 3
        assert list(bin_) == posts  # order survives the forced spill
        assert bin_.flush() == 0  # idempotent on an empty head

    def test_whole_segment_expiry_unlinks_files(self, tmp_path):
        bin_ = tiny_config(tmp_path, head_limit=2, segment_size=2).make_bin()
        for post in ordered_posts(8):
            bin_.append(post)
        before = segment_files(tmp_path)
        assert len(before) == 3
        # Expire everything before t=4: segments [0,1] and [2,3] die whole.
        dropped = bin_.expire(8.0, 4.0)
        assert dropped == 4
        assert len(segment_files(tmp_path)) == 1
        assert [p.post_id for p in bin_] == [4, 5, 6, 7]

    def test_boundary_segment_trims_by_cursor_not_rewrite(self, tmp_path):
        bin_ = tiny_config(tmp_path, head_limit=2, segment_size=2).make_bin()
        for post in ordered_posts(4):
            bin_.append(post)
        (name,) = segment_files(tmp_path)
        mtime = os.path.getmtime(os.path.join(tmp_path, name))
        assert bin_.expire(3.5, 3.0) == 1  # kills t=0 inside the segment
        assert segment_files(tmp_path) == [name]
        assert os.path.getmtime(os.path.join(tmp_path, name)) == mtime
        assert [p.post_id for p in bin_] == [1, 2, 3]

    def test_clear_and_dispose_remove_segment_files(self, tmp_path):
        bin_ = tiny_config(tmp_path, head_limit=2, segment_size=2).make_bin()
        for post in ordered_posts(6):
            bin_.append(post)
        assert segment_files(tmp_path)
        bin_.clear()
        assert segment_files(tmp_path) == []
        bin_.dispose()  # idempotent
        assert len(bin_) == 0

    def test_garbage_collected_bin_leaves_no_files(self, tmp_path):
        bin_ = tiny_config(tmp_path, head_limit=2, segment_size=2).make_bin()
        for post in ordered_posts(6):
            bin_.append(post)
        assert segment_files(tmp_path)
        del bin_
        gc.collect()
        assert segment_files(tmp_path) == []

    def test_segment_files_are_unique_across_bins(self, tmp_path):
        config = tiny_config(tmp_path, head_limit=2, segment_size=2)
        first, second = config.make_bin(), config.make_bin()
        for post in ordered_posts(6):
            first.append(post)
            second.append(post)
        assert len(segment_files(tmp_path)) == 4
        assert list(first) == list(second)


class TestAccounting:
    def test_spilling_shrinks_accounted_bytes(self, tmp_path):
        plain = tiny_config(tmp_path, head_limit=512, segment_size=2).make_bin()
        tiered = tiny_config(tmp_path, head_limit=2, segment_size=2).make_bin()
        for post in ordered_posts(40):
            plain.append(post)
            tiered.append(post)
        assert plain.spilled_len == 0
        assert tiered.spilled_len == 38
        # Spilled entries cost a stub, resident posts the full estimate.
        assert tiered.approx_bytes() < plain.approx_bytes() / 3

    def test_expiry_releases_stub_bytes(self, tmp_path):
        bin_ = tiny_config(tmp_path, head_limit=2, segment_size=2).make_bin()
        for post in ordered_posts(10):
            bin_.append(post)
        before = bin_.approx_bytes()
        bin_.expire(9.0, 0.5)
        assert bin_.approx_bytes() < before
        assert len(bin_) == 1
