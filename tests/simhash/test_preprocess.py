"""Tests for repro.simhash.preprocess — §3 preprocessing variants."""

import pytest

from repro.simhash import (
    ABBREVIATIONS,
    PreprocessOptions,
    expand_abbreviations,
    hamming,
    preprocess_text,
    simhash,
    simhash_preprocessed,
    weighted_features,
)


class TestExpandAbbreviations:
    def test_known_tokens(self):
        assert expand_abbreviations("thx 4 the update pls") == (
            "thanks 4 the update please"
        )

    def test_case_insensitive_match(self):
        assert expand_abbreviations("Thx everyone") == "thanks everyone"

    def test_trailing_punctuation(self):
        assert expand_abbreviations("gr8, rly") == "great, rly"

    def test_unknown_tokens_untouched(self):
        assert expand_abbreviations("nothing to expand here") == (
            "nothing to expand here"
        )

    def test_multiword_expansion(self):
        assert expand_abbreviations("btw it works") == "by the way it works"


class TestPreprocessText:
    def test_default_matches_normalize(self):
        from repro.simhash import normalize

        text = "Breaking NEWS: markets!!"
        assert preprocess_text(text, PreprocessOptions()) == normalize(text)

    def test_url_canonicalisation(self):
        text = "story http://t.co/abcdefghij tonight"
        out = preprocess_text(text, PreprocessOptions(canonicalize_urls=True))
        assert "t.co" not in out
        assert "story" in out and "tonight" in out

    def test_raw_mode(self):
        options = PreprocessOptions(normalized=False)
        assert preprocess_text("Keep Case!", options) == "Keep Case!"


class TestWeightedFeatures:
    def test_default_weights_match_feature_counts(self):
        from repro.simhash import feature_counts, normalize

        text = "alpha beta #tag"
        features = weighted_features(text, PreprocessOptions())
        assert features == dict(feature_counts(normalize(text), 2))

    def test_hashtag_reweighting(self):
        base = weighted_features("word #topic", PreprocessOptions())
        boosted = weighted_features(
            "word #topic", PreprocessOptions(hashtag_weight=3.0)
        )
        assert boosted["topic"] == pytest.approx(3.0 * base["topic"])
        assert boosted["word"] == base["word"]

    def test_mention_stripping(self):
        features = weighted_features(
            "@someone says things", PreprocessOptions(mention_weight=0.0)
        )
        assert "someone" not in features
        assert "says" in features

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            PreprocessOptions(hashtag_weight=-1.0)


class TestSimhashPreprocessed:
    def test_default_options_match_plain_simhash(self):
        text = "Over 300 people missing after ferry sinks (Reuters)"
        assert simhash_preprocessed(text, PreprocessOptions()) == simhash(text)

    def test_url_canonicalisation_collapses_reshortened_pairs(self):
        """The point of the paper's URL-expansion trial: two re-shortenings
        of the same link should stop disagreeing."""
        a = "big story tonight http://t.co/aaaaaaaaaa"
        b = "big story tonight http://t.co/bbbbbbbbbb"
        options = PreprocessOptions(canonicalize_urls=True)
        plain = hamming(simhash(a), simhash(b))
        canonical = hamming(
            simhash_preprocessed(a, options), simhash_preprocessed(b, options)
        )
        assert canonical == 0
        assert plain > 0

    def test_abbreviation_expansion_collapses_shorthand_pairs(self):
        a = "thanks for the update people"
        b = "thx for the update ppl"
        options = PreprocessOptions(expand_abbreviations=True)
        plain = hamming(simhash(a), simhash(b))
        expanded = hamming(
            simhash_preprocessed(a, options), simhash_preprocessed(b, options)
        )
        assert expanded < plain

    def test_abbreviation_dictionary_is_consistent(self):
        # No expansion maps onto another abbreviation (would need fixpoint).
        for expansion in ABBREVIATIONS.values():
            for word in expansion.split():
                assert word not in ABBREVIATIONS
