"""Tests for repro.simhash.cosine — the TF cosine baseline."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.simhash import TfVector, cosine_distance, cosine_similarity

texts = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
    max_size=60,
)


class TestCosineSimilarity:
    def test_identical(self):
        assert math.isclose(
            cosine_similarity("big news today", "big news today"), 1.0
        )

    def test_disjoint(self):
        assert cosine_similarity("aaa bbb", "ccc ddd") == 0.0

    def test_empty(self):
        assert cosine_similarity("", "anything") == 0.0
        assert cosine_similarity("", "") == 0.0

    def test_known_value(self):
        # "a b" vs "a c": dot = 1, norms = sqrt(2) each → 0.5.
        assert math.isclose(cosine_similarity("a b", "a c"), 0.5)

    def test_repeat_weighting(self):
        # "a a b" vs "a": dot = 2, norms sqrt(5) and 1 → 2/sqrt(5).
        assert math.isclose(
            cosine_similarity("a a b", "a"), 2 / math.sqrt(5)
        )

    def test_normalization_mode(self):
        assert math.isclose(cosine_similarity("Big News!", "big news"), 1.0)
        assert cosine_similarity("Big News!", "big news", normalized=False) < 0.99

    @given(texts, texts)
    def test_range_and_symmetry(self, a, b):
        sim = cosine_similarity(a, b)
        assert 0.0 <= sim <= 1.0 + 1e-12
        assert math.isclose(sim, cosine_similarity(b, a), abs_tol=1e-12)


class TestCosineDistance:
    def test_complement(self):
        assert math.isclose(
            cosine_distance("a b", "a c"), 1.0 - cosine_similarity("a b", "a c")
        )

    def test_identical_distance_zero(self):
        assert cosine_distance("same", "same") == 0.0


class TestTfVector:
    def test_norm(self):
        vec = TfVector.from_text("a a b")
        assert math.isclose(vec.norm, math.sqrt(5))

    def test_empty_norm(self):
        assert TfVector.from_text("").norm == 0.0

    def test_shingle_width(self):
        uni = TfVector.from_text("a b c", shingle_width=1)
        bi = TfVector.from_text("a b c", shingle_width=2)
        assert set(uni.counts) < set(bi.counts)

    def test_cosine_swaps_smaller_side(self):
        # Regression: the small/large swap must not change the result.
        small = TfVector.from_text("a")
        large = TfVector.from_text("a b c d e f")
        assert math.isclose(small.cosine(large), large.cosine(small))
