"""Tests for repro.simhash.index — the pigeonhole SimHash index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simhash import SimHashIndex, block_bounds, hamming

fingerprints = st.integers(min_value=0, max_value=2**64 - 1)


class TestBlockBounds:
    def test_even_split(self):
        assert block_bounds(64, 4) == [(0, 16), (16, 16), (32, 16), (48, 16)]

    def test_uneven_split(self):
        bounds = block_bounds(64, 3)
        assert sum(width for _, width in bounds) == 64
        assert [w for _, w in bounds] == [22, 21, 21]

    def test_contiguous(self):
        bounds = block_bounds(64, 7)
        offset = 0
        for start, width in bounds:
            assert start == offset
            offset += width
        assert offset == 64

    def test_single_block(self):
        assert block_bounds(64, 1) == [(0, 64)]

    def test_max_blocks(self):
        bounds = block_bounds(64, 64)
        assert all(width == 1 for _, width in bounds)

    @pytest.mark.parametrize("blocks", [0, 65, -1])
    def test_invalid(self, blocks):
        with pytest.raises(ValueError):
            block_bounds(64, blocks)


class TestIndexBasics:
    def test_radius_validation(self):
        with pytest.raises(ValueError):
            SimHashIndex(-1)
        with pytest.raises(ValueError):
            SimHashIndex(64)

    def test_table_count_is_radius_plus_one(self):
        assert SimHashIndex(3).table_count == 4
        assert SimHashIndex(18).table_count == 19

    def test_add_and_len(self):
        index = SimHashIndex(3)
        index.add(0b1010, "a")
        index.add(0b1011, "b")
        assert len(index) == 2

    def test_exact_match_found(self):
        index = SimHashIndex(0)
        index.add(42, "x")
        assert index.query(42) == [("x", 0)]

    def test_outside_radius_not_returned(self):
        index = SimHashIndex(2)
        index.add(0, "far")
        assert index.query(0b1111111) == []

    def test_remove(self):
        index = SimHashIndex(3)
        index.add(42, "x")
        index.remove(42, "x")
        assert len(index) == 0
        assert index.query(42) == []

    def test_remove_absent_is_noop(self):
        index = SimHashIndex(3)
        index.add(42, "x")
        index.remove(99, "y")
        assert len(index) == 1

    def test_any_within(self):
        index = SimHashIndex(2)
        index.add(0b1100, "x")
        assert index.any_within(0b1101)
        assert not index.any_within(0b0011 << 10)

    def test_duplicate_fingerprints_distinct_keys(self):
        index = SimHashIndex(1)
        index.add(7, "a")
        index.add(7, "b")
        found = {key for key, _ in index.query(7)}
        assert found == {"a", "b"}


class TestIndexCompleteness:
    """The pigeonhole guarantee: every stored fingerprint within the radius
    must be found — validated against brute force."""

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(fingerprints, min_size=1, max_size=60),
        fingerprints,
        st.integers(min_value=0, max_value=20),
    )
    def test_matches_brute_force(self, stored, query, radius):
        index = SimHashIndex(radius)
        for key, fp in enumerate(stored):
            index.add(fp, key)
        expected = {
            (key, hamming(query, fp))
            for key, fp in enumerate(stored)
            if hamming(query, fp) <= radius
        }
        assert set(index.query(query)) == expected

    def test_neighbour_at_exact_radius(self):
        rng = random.Random(7)
        for radius in (1, 3, 6, 12):
            index = SimHashIndex(radius)
            base = rng.getrandbits(64)
            # Flip exactly `radius` distinct bits.
            flipped = base
            for bit in rng.sample(range(64), radius):
                flipped ^= 1 << bit
            index.add(flipped, "edge")
            assert ("edge", radius) in index.query(base)

    def test_candidate_count_bounds(self):
        index = SimHashIndex(4)
        for key in range(100):
            index.add(random.Random(key).getrandbits(64), key)
        probe = random.Random(999).getrandbits(64)
        assert 0 <= index.candidate_count(probe) <= 100


class TestLazyIteration:
    """`iter_within` and `first_match`: the early-exit path the indexed
    engine's coverage check rides must agree with the materialized query."""

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(fingerprints, min_size=0, max_size=60),
        fingerprints,
        st.integers(min_value=0, max_value=20),
    )
    def test_iter_within_equals_query(self, stored, query, radius):
        index = SimHashIndex(radius)
        for key, fp in enumerate(stored):
            index.add(fp, key)
        assert list(index.iter_within(query)) == index.query(query)

    def test_first_match_returns_a_key_within_radius(self):
        index = SimHashIndex(3)
        index.add(0b111, "near")
        index.add(1 << 40, "far")
        key = index.first_match(0b110)
        assert key == "near"

    def test_first_match_none_when_empty_ball(self):
        index = SimHashIndex(2)
        index.add(0, "far")
        assert index.first_match((1 << 20) - 1) is None

    def test_first_match_respects_accept_predicate(self):
        index = SimHashIndex(3)
        index.add(0b01, "rejected")
        index.add(0b10, "accepted")
        assert index.first_match(0b11, lambda key: key != "rejected") == "accepted"
        assert index.first_match(0b11, lambda key: False) is None

    def test_first_match_is_first_of_iter_order(self):
        # Whatever candidate order iter_within yields, first_match must
        # return its first acceptable element — nothing later.
        index = SimHashIndex(4)
        rng = random.Random(3)
        for key in range(40):
            index.add(rng.getrandbits(8), key)
        probe = rng.getrandbits(8)
        within = [key for key, _ in index.iter_within(probe)]
        if within:
            assert index.first_match(probe) == within[0]
            even = [key for key in within if key % 2 == 0]
            assert index.first_match(probe, lambda k: k % 2 == 0) == (
                even[0] if even else None
            )
