"""Tests for repro.simhash.hamming — scalar and bulk distances."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.simhash import hamming, hamming_bulk, within

fingerprints = st.integers(min_value=0, max_value=2**64 - 1)


class TestHammingScalar:
    def test_known(self):
        assert hamming(0b1010, 0b0110) == 2

    def test_zero(self):
        assert hamming(12345, 12345) == 0

    def test_max(self):
        assert hamming(0, 2**64 - 1) == 64

    @given(fingerprints, fingerprints)
    def test_symmetry(self, a, b):
        assert hamming(a, b) == hamming(b, a)

    @given(fingerprints, fingerprints)
    def test_bounds(self, a, b):
        assert 0 <= hamming(a, b) <= 64

    @given(fingerprints, fingerprints, fingerprints)
    def test_triangle_inequality(self, a, b, c):
        assert hamming(a, c) <= hamming(a, b) + hamming(b, c)

    @given(fingerprints, fingerprints)
    def test_identity_of_indiscernibles(self, a, b):
        assert (hamming(a, b) == 0) == (a == b)


class TestWithin:
    def test_within_true(self):
        assert within(0b111, 0b110, 1)

    def test_within_false(self):
        assert not within(0b111, 0b000, 2)

    def test_threshold_zero_means_equal(self):
        assert within(42, 42, 0)
        assert not within(42, 43, 0)

    @given(fingerprints, fingerprints, st.integers(min_value=0, max_value=64))
    def test_matches_scalar(self, a, b, t):
        assert within(a, b, t) == (hamming(a, b) <= t)


class TestHammingBulk:
    def test_empty(self):
        empty = np.array([], dtype=np.uint64)
        assert hamming_bulk(empty, empty).size == 0

    def test_known_values(self):
        a = np.array([0b1010, 0, 2**64 - 1], dtype=np.uint64)
        b = np.array([0b0110, 0, 0], dtype=np.uint64)
        assert hamming_bulk(a, b).tolist() == [2, 0, 64]

    @given(st.lists(fingerprints, min_size=1, max_size=50))
    def test_matches_scalar(self, values):
        a = np.array(values, dtype=np.uint64)
        b = np.array(list(reversed(values)), dtype=np.uint64)
        bulk = hamming_bulk(a, b)
        scalar = [hamming(x, y) for x, y in zip(values, reversed(values))]
        assert bulk.tolist() == scalar
