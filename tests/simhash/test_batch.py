"""Tests for repro.simhash.batch — vectorised fingerprinting."""

import random

import numpy as np

from repro.simhash import simhash
from repro.simhash.batch import clear_row_cache, simhash_batch, simhash_one
from repro.social import TextGenerator, Vocabulary


def sample_texts(n=60, seed=3):
    rng = random.Random(seed)
    vocabulary = Vocabulary(seed=seed)
    generator = TextGenerator(vocabulary, seed=seed + 1)
    return [
        generator.fresh(rng.randrange(vocabulary.topic_count), rng=rng).text
        for _ in range(n)
    ]


class TestBitExactness:
    def test_matches_scalar_on_generated_texts(self):
        for text in sample_texts():
            assert simhash_one(text) == simhash(text)

    def test_matches_scalar_raw_mode(self):
        for text in sample_texts(20, seed=9):
            assert simhash_one(text, normalized=False) == simhash(
                text, normalized=False
            )

    def test_matches_scalar_other_shingle_width(self):
        for text in sample_texts(20, seed=11):
            assert simhash_one(text, shingle_width=3) == simhash(
                text, shingle_width=3
            )

    def test_empty_text(self):
        assert simhash_one("") == simhash("")

    def test_single_token(self):
        assert simhash_one("solo") == simhash("solo")


class TestBatch:
    def test_batch_matches_scalar(self):
        texts = sample_texts(30, seed=5)
        batch = simhash_batch(texts)
        assert batch.dtype == np.uint64
        assert batch.tolist() == [simhash(t) for t in texts]

    def test_empty_batch(self):
        assert simhash_batch([]).size == 0

    def test_cache_survives_clear(self):
        texts = sample_texts(5, seed=7)
        first = simhash_batch(texts)
        clear_row_cache()
        second = simhash_batch(texts)
        assert first.tolist() == second.tolist()
