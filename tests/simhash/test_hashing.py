"""Tests for repro.simhash.hashing — stable 64-bit token hashes."""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.simhash import clear_token_cache, hash_token, token_cache_size


class TestHashToken:
    def test_deterministic_within_process(self):
        assert hash_token("hello") == hash_token("hello")

    def test_range_is_64_bit(self):
        for token in ("", "a", "hello", "🎉", "x" * 1000):
            value = hash_token(token)
            assert 0 <= value < 2**64

    def test_distinct_tokens_differ(self):
        values = {hash_token(t) for t in ("a", "b", "c", "ab", "ba", "A")}
        assert len(values) == 6

    def test_case_sensitive(self):
        assert hash_token("Hello") != hash_token("hello")

    def test_unicode_tokens(self):
        assert hash_token("café") != hash_token("cafe")

    def test_known_stability_across_processes(self):
        """Fingerprints must not depend on PYTHONHASHSEED — compute the same
        token hash in a fresh interpreter with a different hash seed."""
        expected = hash_token("stability-probe")
        code = (
            "from repro.simhash import hash_token;"
            "print(hash_token('stability-probe'))"
        )
        # The child env is minimal by design (we control PYTHONHASHSEED),
        # but it must still find the package: propagate the path the
        # running interpreter imported ``repro`` from.
        package_path = str(Path(repro.__file__).resolve().parents[1])
        for seed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": seed,
                    "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                    "PYTHONPATH": package_path,
                },
                check=True,
            )
            assert int(out.stdout.strip()) == expected

    def test_avalanche(self):
        """Single-character changes should flip roughly half the bits."""
        a = hash_token("avalanche-test-token")
        b = hash_token("avalanche-test-token!")
        differing = (a ^ b).bit_count()
        assert 16 <= differing <= 48


class TestTokenCache:
    def test_cache_grows_and_clears(self):
        clear_token_cache()
        assert token_cache_size() == 0
        hash_token("cache-probe-1")
        hash_token("cache-probe-2")
        assert token_cache_size() == 2
        clear_token_cache()
        assert token_cache_size() == 0

    def test_cache_hit_returns_same_value(self):
        clear_token_cache()
        first = hash_token("cache-probe")
        second = hash_token("cache-probe")
        assert first == second
        assert token_cache_size() == 1
