"""Tests for repro.simhash.normalize — the paper's §3 text normalisation."""

from repro.simhash import expand_short_urls, normalize, strip_short_urls


class TestNormalize:
    def test_lowercases(self):
        assert normalize("Hello WORLD") == "hello world"

    def test_strips_punctuation(self):
        assert normalize("wait -- what?!") == "wait what"

    def test_collapses_whitespace(self):
        assert normalize("a   b\t c\n d") == "a b c d"

    def test_keeps_digits(self):
        assert normalize("Over 300 people") == "over 300 people"

    def test_strips_leading_trailing_space(self):
        assert normalize("  hi  ") == "hi"

    def test_idempotent(self):
        once = normalize('Breaking: "markets" FALL, again!')
        assert normalize(once) == once

    def test_empty(self):
        assert normalize("") == ""

    def test_only_punctuation(self):
        assert normalize("?!*--//") == ""

    def test_paper_example(self):
        # The paper's Table 1 quote pair differs only in punctuation/casing
        # decoration; normalisation should bring the shared core together.
        a = normalize(
            '"In order to succeed, your desire for success should be '
            'greater than your fear of failure" Bill Cosby'
        )
        b = normalize(
            "In order to succeed, your desire for success should be "
            "greater than your fear of failure. Bill Cosby"
        )
        assert a == b


class TestShortUrls:
    def test_expand_known(self):
        table = {"http://t.co/abc123XYZ0": "http://news.example.com/story"}
        text = "big story http://t.co/abc123XYZ0 tonight"
        assert expand_short_urls(text, table) == (
            "big story http://news.example.com/story tonight"
        )

    def test_expand_unknown_kept(self):
        text = "see http://t.co/unknownUrl now"
        assert expand_short_urls(text, {}) == text

    def test_strip(self):
        assert strip_short_urls("a http://t.co/abcde12345 b") == "a b"

    def test_strip_multiple(self):
        text = "x http://t.co/aaaaaaaaaa y http://t.co/bbbbbbbbbb"
        assert strip_short_urls(text) == "x y"

    def test_non_tco_urls_untouched(self):
        text = "see http://example.com/page"
        assert strip_short_urls(text) == text
