"""Tests for repro.simhash.fingerprint — SimHash behaviour."""

from repro.simhash import (
    EMPTY_FINGERPRINT,
    hamming,
    simhash,
    simhash_from_features,
)


class TestSimhashBasics:
    def test_deterministic(self):
        assert simhash("breaking news tonight") == simhash("breaking news tonight")

    def test_64_bit_range(self):
        assert 0 <= simhash("some text here") < 2**64

    def test_empty_text(self):
        assert simhash("") == EMPTY_FINGERPRINT

    def test_whitespace_only(self):
        assert simhash("   \t\n") == EMPTY_FINGERPRINT

    def test_from_features_empty(self):
        assert simhash_from_features({}) == EMPTY_FINGERPRINT

    def test_from_features_matches_manual(self):
        # A single feature's simhash is just the bits of its token hash
        # thresholded by sign: +w where bit is 1, -w where 0 → the hash.
        from repro.simhash import hash_token

        assert simhash_from_features({"solo": 1}) == hash_token("solo")

    def test_float_weights_accepted(self):
        assert isinstance(simhash_from_features({"a": 0.5, "b": 1.5}), int)


class TestNormalizationMode:
    def test_case_invariant_when_normalized(self):
        assert simhash("Big News Today") == simhash("big news today")

    def test_case_sensitive_when_raw(self):
        assert simhash("Big News Today", normalized=False) != simhash(
            "big news today", normalized=False
        )

    def test_punctuation_invariant_when_normalized(self):
        assert simhash("big news, today!") == simhash("big news today")


class TestDistanceBehaviour:
    def test_identical_distance_zero(self):
        assert hamming(simhash("same text"), simhash("same text")) == 0

    def test_similar_texts_closer_than_random(self):
        base = "stocks fall sharply after central bank raises rates again"
        near = "stocks fall sharply after central bank raises rates #markets"
        far = "local team wins final game of the season in overtime thriller"
        assert hamming(simhash(base), simhash(near)) < hamming(
            simhash(base), simhash(far)
        )

    def test_shared_prefix_reduces_distance(self):
        a = "alpha beta gamma delta epsilon zeta"
        b = "alpha beta gamma delta epsilon omega"
        c = "one two three four five six"
        assert hamming(simhash(a), simhash(b)) < hamming(simhash(a), simhash(c))

    def test_random_texts_near_32(self):
        """Unrelated texts should land near the 32-bit midpoint (Figure 2)."""
        a = "quarterly results beat expectations on strong cloud growth"
        b = "storm brings heavy rain and flooding to coastal towns overnight"
        assert 16 <= hamming(simhash(a), simhash(b)) <= 48


class TestShingleWidth:
    def test_width_changes_fingerprint(self):
        text = "a b c d e f"
        assert simhash(text, shingle_width=1) != simhash(text, shingle_width=3)

    def test_word_order_matters_with_shingles(self):
        # Bag-of-words is order-blind; shingles are not.
        a = "alpha beta gamma delta"
        b = "delta gamma beta alpha"
        assert simhash(a, shingle_width=1) == simhash(b, shingle_width=1)
        assert simhash(a, shingle_width=2) != simhash(b, shingle_width=2)
