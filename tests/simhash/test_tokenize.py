"""Tests for repro.simhash.tokenize — words, shingles, feature counts."""

import pytest

from repro.simhash import feature_counts, shingles, words


class TestWords:
    def test_basic_split(self):
        assert words("a b  c") == ["a", "b", "c"]

    def test_empty(self):
        assert words("") == []

    def test_punctuation_stays_attached(self):
        assert words("hi, there!") == ["hi,", "there!"]


class TestShingles:
    def test_width_two(self):
        assert list(shingles(["a", "b", "c"], 2)) == ["a b", "b c"]

    def test_width_three(self):
        assert list(shingles(["a", "b", "c", "d"], 3)) == ["a b c", "b c d"]

    def test_short_input_yields_whole_text(self):
        assert list(shingles(["a"], 2)) == ["a"]
        assert list(shingles(["a", "b"], 3)) == ["a b"]

    def test_exact_width_input(self):
        assert list(shingles(["a", "b"], 2)) == ["a b"]

    def test_empty_input(self):
        assert list(shingles([], 2)) == []

    def test_width_one_is_words(self):
        assert list(shingles(["a", "b"], 1)) == ["a", "b"]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            list(shingles(["a"], 0))


class TestFeatureCounts:
    def test_words_and_shingles(self):
        counts = feature_counts("a b a")
        assert counts["a"] == 2
        assert counts["b"] == 1
        assert counts["a b"] == 1
        assert counts["b a"] == 1

    def test_width_one_plain_bag(self):
        counts = feature_counts("a b a", shingle_width=1)
        assert dict(counts) == {"a": 2, "b": 1}

    def test_empty_text(self):
        assert not feature_counts("")

    def test_repeated_shingles_counted(self):
        counts = feature_counts("x y x y")
        assert counts["x y"] == 2
