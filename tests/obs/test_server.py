"""MetricsServer: the stdlib HTTP scrape endpoint."""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds, make_diversifier
from repro.obs import Registry
from repro.service import DiversificationService, MetricsServer


def _service() -> DiversificationService:
    graph = AuthorGraph(nodes=[1, 2], edges=[(1, 2)])
    engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
    return DiversificationService(engine)


def _ingest(service: DiversificationService, n: int, start: int = 0) -> None:
    for i in range(start, start + n):
        service.ingest(
            Post(post_id=i, author=1 + i % 2, text=f"t{i}", timestamp=float(i), fingerprint=i)
        )


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read()


def test_routes_and_live_scrape():
    service = _service()
    with service.serve_metrics() as server:
        _ingest(service, 25)
        text = _get(server.url + "/metrics").decode()
        assert 'repro_offers_total{engine="unibin",decision="admitted"}' in text
        assert 'repro_offer_latency_seconds_bucket{engine="unibin",le="+Inf"} 25' in text
        assert "repro_service_decisions_total 25" in text

        snap = json.loads(_get(server.url + "/metrics.json"))
        names = {m["name"] for m in snap["metrics"]}
        assert "repro_comparisons_total" in names

        assert _get(server.url + "/healthz") == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/unknown")
        assert excinfo.value.code == 404


def test_serve_metrics_binds_a_registry_on_demand():
    service = _service()
    assert service.registry is None
    server = service.serve_metrics()
    try:
        assert isinstance(service.registry, Registry)
        # A second scrape sees counters advance: callbacks are live.
        _ingest(service, 3)
        assert "repro_service_decisions_total 3" in _get(server.url + "/metrics").decode()
        _ingest(service, 2, start=3)
        assert "repro_service_decisions_total 5" in _get(server.url + "/metrics").decode()
    finally:
        server.stop()


def test_stop_releases_the_port():
    registry = Registry()
    server = MetricsServer(registry)
    host, port = server.start()
    assert server.start() == (host, port)  # idempotent while running
    server.stop()
    server.stop()  # idempotent when stopped
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=0.5).close()
    with pytest.raises(RuntimeError):
        _ = server.address


def test_explicit_registry_is_served():
    registry = Registry()
    registry.counter("custom_total", "Custom").labels().inc(7)
    with MetricsServer(registry) as server:
        assert "custom_total 7" in _get(server.url + "/metrics").decode()


def test_unknown_method_on_known_path_is_404():
    # /metrics only routes GET; a POST to it falls off the route table.
    with MetricsServer(Registry()) as server:
        request = urllib.request.Request(
            server.url + "/metrics", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 404


def test_query_strings_do_not_break_routing():
    with MetricsServer(Registry()) as server:
        assert b"ok" in _get(server.url + "/healthz?verbose=1&x=y")


def test_concurrent_scrapes_all_succeed():
    import threading

    service = _service()
    with service.serve_metrics() as server:
        _ingest(service, 10)
        failures: list[str] = []

        def scrape() -> None:
            try:
                for _ in range(10):
                    body = _get(server.url + "/metrics").decode()
                    assert "repro_service_decisions_total 10" in body
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(repr(exc))

        threads = [threading.Thread(target=scrape) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert failures == []


def test_degraded_health_body_while_shedding():
    from repro.resilience import OverloadController

    graph = AuthorGraph(nodes=[1, 2], edges=[(1, 2)])
    engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
    controller = OverloadController(max_delay=1.0)
    service = DiversificationService(engine, overload=controller)
    with service.serve_metrics() as server:
        assert _get(server.url + "/healthz") == b"ok\n"
        controller.set_memory_pressure(True)
        body = _get(server.url + "/healthz").decode()
        assert body.startswith("degraded:")
        assert "shedding arrivals (memory pressure" in body
        report = json.loads(_get(server.url + "/healthz.json"))
        assert report["status"] == "degraded"
        assert report["shedding"]["shedding"] is True
        controller.set_memory_pressure(False)
        controller.should_shed(0.0)  # hysteresis releases below resume
        assert _get(server.url + "/healthz") == b"ok\n"
