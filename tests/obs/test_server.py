"""MetricsServer: the stdlib HTTP scrape endpoint."""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds, make_diversifier
from repro.obs import Registry
from repro.service import DiversificationService, MetricsServer


def _service() -> DiversificationService:
    graph = AuthorGraph(nodes=[1, 2], edges=[(1, 2)])
    engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
    return DiversificationService(engine)


def _ingest(service: DiversificationService, n: int, start: int = 0) -> None:
    for i in range(start, start + n):
        service.ingest(
            Post(post_id=i, author=1 + i % 2, text=f"t{i}", timestamp=float(i), fingerprint=i)
        )


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read()


def test_routes_and_live_scrape():
    service = _service()
    with service.serve_metrics() as server:
        _ingest(service, 25)
        text = _get(server.url + "/metrics").decode()
        assert 'repro_offers_total{engine="unibin",decision="admitted"}' in text
        assert 'repro_offer_latency_seconds_bucket{engine="unibin",le="+Inf"} 25' in text
        assert "repro_service_decisions_total 25" in text

        snap = json.loads(_get(server.url + "/metrics.json"))
        names = {m["name"] for m in snap["metrics"]}
        assert "repro_comparisons_total" in names

        assert _get(server.url + "/healthz") == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/unknown")
        assert excinfo.value.code == 404


def test_serve_metrics_binds_a_registry_on_demand():
    service = _service()
    assert service.registry is None
    server = service.serve_metrics()
    try:
        assert isinstance(service.registry, Registry)
        # A second scrape sees counters advance: callbacks are live.
        _ingest(service, 3)
        assert "repro_service_decisions_total 3" in _get(server.url + "/metrics").decode()
        _ingest(service, 2, start=3)
        assert "repro_service_decisions_total 5" in _get(server.url + "/metrics").decode()
    finally:
        server.stop()


def test_stop_releases_the_port():
    registry = Registry()
    server = MetricsServer(registry)
    host, port = server.start()
    assert server.start() == (host, port)  # idempotent while running
    server.stop()
    server.stop()  # idempotent when stopped
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=0.5).close()
    with pytest.raises(RuntimeError):
        _ = server.address


def test_explicit_registry_is_served():
    registry = Registry()
    registry.counter("custom_total", "Custom").labels().inc(7)
    with MetricsServer(registry) as server:
        assert "custom_total 7" in _get(server.url + "/metrics").decode()
