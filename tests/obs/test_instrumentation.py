"""Instrument bundles bound to real engines, routers and pipelines.

The load-bearing claim everywhere: metric values equal the subsystem's
own ground-truth counters, exactly, because they *are* those counters
read through callbacks at collection time.
"""

from __future__ import annotations

import io

from repro import simhash
from repro.authors import AuthorGraph
from repro.core import Post, Thresholds, make_diversifier
from repro.multiuser import SubscriptionTable, make_multiuser
from repro.obs import NULL_REGISTRY, OfferTracer, Registry
from repro.resilience import ResilientIngest


def _world(n: int = 60):
    graph = AuthorGraph(nodes=[1, 2, 3], edges=[(1, 2), (2, 3)])
    posts = [
        Post(
            post_id=i,
            author=1 + i % 3,
            text=f"t{i}",
            timestamp=float(i),
            fingerprint=(i % 7) * 3,
        )
        for i in range(n)
    ]
    return graph, posts


def _run(engine, posts):
    for post in posts:
        engine.offer(post)


class TestEngineInstruments:
    def test_counters_equal_run_stats(self):
        graph, posts = _world()
        engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
        registry = Registry()
        engine.bind_metrics(registry)
        _run(engine, posts)

        stats = engine.stats
        assert registry.value("repro_comparisons_total", engine="unibin") == (
            stats.comparisons
        )
        assert registry.value("repro_insertions_total", engine="unibin") == (
            stats.insertions
        )
        assert registry.value(
            "repro_offers_total", engine="unibin", decision="admitted"
        ) == stats.posts_admitted
        assert registry.value(
            "repro_offers_total", engine="unibin", decision="rejected"
        ) == stats.posts_rejected
        assert registry.value("repro_stored_copies", engine="unibin") == (
            engine.stored_copies()
        )

    def test_histograms_record_every_offer(self):
        graph, posts = _world()
        engine = make_diversifier("cliquebin", Thresholds(lambda_t=10.0), graph)
        registry = Registry()
        engine.bind_metrics(registry)
        _run(engine, posts)
        latency = registry.histogram(
            "repro_offer_latency_seconds", labelnames=("engine",)
        ).labels(engine="cliquebin")
        width = registry.histogram(
            "repro_offer_comparisons", labelnames=("engine",)
        ).labels(engine="cliquebin")
        assert latency.count == len(posts)
        assert width.count == len(posts)
        assert width.sum == engine.stats.comparisons

    def test_counters_survive_purge_outside_offers(self):
        """Evictions from an explicit purge() happen outside any offer;
        callback re-export keeps the metric exact anyway."""
        graph, posts = _world()
        engine = make_diversifier("unibin", Thresholds(lambda_t=5.0), graph)
        registry = Registry()
        engine.bind_metrics(registry)
        _run(engine, posts)
        engine.purge(posts[-1].timestamp + 1e6)
        assert registry.value("repro_evictions_total", engine="unibin") == (
            engine.stats.evictions
        )
        assert registry.value("repro_stored_copies", engine="unibin") == 0

    def test_unbinding_and_noop_registry(self):
        graph, _ = _world()
        engine = make_diversifier("unibin", Thresholds(), graph)
        engine.bind_metrics(Registry())
        assert engine._metrics is not None
        engine.bind_metrics(None)
        assert engine._metrics is None
        engine.bind_metrics(NULL_REGISTRY)
        assert engine._metrics is None

    def test_tracer_without_registry(self):
        graph, posts = _world(10)
        engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
        sink = io.StringIO()
        tracer = OfferTracer(sink)
        engine.bind_metrics(None, tracer=tracer)
        _run(engine, posts)
        assert tracer.spans_seen == 10
        assert len(sink.getvalue().splitlines()) == 10


class TestSimhashInstruments:
    def test_enable_disable(self):
        registry = Registry()
        simhash.enable_metrics(registry)
        try:
            simhash.simhash("some text to fingerprint")
            simhash.simhash("another text")
        finally:
            simhash.disable_metrics()
        assert registry.value("repro_simhash_fingerprints_total") == 2
        latency = registry.histogram("repro_simhash_latency_seconds").labels()
        assert latency.count == 2
        simhash.simhash("after disable")  # must not count
        assert registry.value("repro_simhash_fingerprints_total") == 2

    def test_noop_registry_disables(self):
        simhash.enable_metrics(NULL_REGISTRY)
        try:
            assert simhash.fingerprint._METRICS is None
        finally:
            simhash.disable_metrics()


class TestMultiUserInstruments:
    def _build(self, name: str):
        graph, posts = _world()
        subs = SubscriptionTable({10: [1, 2], 20: [2, 3], 30: [1, 2]})
        engine = make_multiuser(name, Thresholds(lambda_t=10.0), graph, subs)
        return engine, posts

    def test_shared_work_counters(self):
        registry = Registry()
        results = {}
        for name in ("m_unibin", "s_unibin"):
            engine, posts = self._build(name)
            engine.bind_metrics(registry)
            deliveries = 0
            for post in posts:
                deliveries += len(engine.offer(post))
            assert registry.value(
                "repro_multiuser_posts_total", engine=name
            ) == len(posts)
            assert registry.value(
                "repro_multiuser_deliveries_total", engine=name
            ) == deliveries
            stats = engine.aggregate_stats()
            assert registry.value(
                "repro_comparisons_total", engine=name
            ) == stats.comparisons
            results[name] = registry.value(
                "repro_multiuser_instance_offers_total", engine=name
            )
        # The sharing argument, as metrics: S_* executes fewer (or equal)
        # single-user offers than M_* on the same stream.
        assert results["s_unibin"] <= results["m_unibin"]
        assert registry.value("repro_multiuser_sharing_ratio", engine="s_unibin") >= 0

    def test_per_user_deliveries_opt_in(self):
        registry = Registry()
        engine, posts = self._build("m_unibin")
        engine.bind_metrics(registry, per_user=True)
        per_user = {10: 0, 20: 0, 30: 0}
        for post in posts:
            for user in engine.offer(post):
                per_user[user] += 1
        for user, count in per_user.items():
            if count:
                assert registry.value(
                    "repro_user_deliveries_total", engine="m_unibin", user=user
                ) == count


class TestPipelineInstruments:
    def test_pipeline_counters_and_dynamic_reorder_state(self):
        graph, posts = _world()
        engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
        pipeline = ResilientIngest(engine, max_skew=5.0)
        registry = Registry()
        pipeline.bind_metrics(registry)
        for post in posts:
            pipeline.ingest(post)
        assert registry.value("repro_reorder_buffer_depth") == len(pipeline.reorder)
        pipeline.flush()
        counters = pipeline.reorder.counters
        assert registry.value("repro_reorder_received_total") == counters.received
        assert registry.value("repro_reorder_released_total") == counters.released
        assert registry.value("repro_reorder_buffer_depth") == 0

        # load_state replaces the counters object; the callbacks must read
        # through the buffer and keep tracking the *new* counters.
        state = pipeline.reorder.state_dict()
        pipeline.reorder.load_state(state)
        assert pipeline.reorder.counters is not counters or True  # object may differ
        assert registry.value("repro_reorder_received_total") == (
            pipeline.reorder.counters.received
        )

    def test_quarantine_counter(self):
        graph, posts = _world(10)
        engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
        pipeline = ResilientIngest(engine, known_authors={1, 2, 3})
        registry = Registry()
        pipeline.bind_metrics(registry)
        bad = Post(post_id=99, author=77, text="x", timestamp=0.5, fingerprint=0)
        pipeline.ingest(posts[0])
        pipeline.ingest(bad)
        assert registry.value("repro_quarantined_total") == 1


class TestServiceInstruments:
    def test_service_latency_reexport(self):
        from repro.service import DiversificationService

        graph, posts = _world()
        engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
        registry = Registry()
        service = DiversificationService(engine, registry=registry)
        for post in posts:
            service.ingest(post)
        assert registry.value("repro_service_decisions_total") == len(posts)
        assert registry.value(
            "repro_service_mean_latency_seconds"
        ) == service.latency.mean
        p95 = registry.value("repro_service_latency_seconds", quantile=0.95)
        assert p95 == service.latency.percentile(95)

    def test_overload_counters_when_attached(self):
        from repro.resilience import OverloadController
        from repro.service import DiversificationService

        graph, posts = _world()
        engine = make_diversifier("unibin", Thresholds(lambda_t=10.0), graph)
        overload = OverloadController(max_delay=1e-9)
        registry = Registry()
        service = DiversificationService(engine, overload=overload, registry=registry)
        service.replay(posts, speedups=(1e9,))
        counters = overload.counters
        assert registry.value("repro_overload_processed_total") == counters.processed
        assert registry.value("repro_shed_dropped_total") == counters.shed_dropped
