"""/healthz end to end: one structured degradation report, every cause.

The service composes every degradation source — quarantined shards, the
memory governor's ladder rung, overload shedding — into one line on
``/healthz`` and one JSON document on ``/healthz.json``. These tests
drive a real service over HTTP through healthy, memory-degraded and
shedding regimes and pin the exact wire format, including the legacy
strings older probes already match on.
"""

from __future__ import annotations

import json
import urllib.request

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds, make_diversifier
from repro.resilience import GovernorConfig, MemoryGovernor, OverloadController
from repro.service import DiversificationService
from repro.storage import SpillConfig


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read()


def make_post(i: int) -> Post:
    # Fibonacci-hashed fingerprints: pairwise Hamming distances far above
    # any λc, so every post is admitted and the windows genuinely grow.
    fingerprint = (i * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
    return Post(
        post_id=i,
        author=1 + i % 2,
        text=f"t{i}" * 8,
        timestamp=float(i),
        fingerprint=fingerprint,
    )


def governed_service(tmp_path, *, budget: int, overload=None, check_every=16):
    graph = AuthorGraph(nodes=[1, 2], edges=[(1, 2)])
    engine = make_diversifier(
        "unibin",
        Thresholds(lambda_t=10_000.0),
        graph,
        storage=SpillConfig(str(tmp_path), head_limit=8, segment_size=4),
    )
    governor = MemoryGovernor(
        engine,
        GovernorConfig(budget_bytes=budget, check_every=check_every, probe_limit=4),
        overload=overload,
    )
    return DiversificationService(
        engine, governor=governor, overload=overload, purge_every=10_000
    )


class TestHealthzText:
    def test_healthy_service_stays_legacy_ok(self, tmp_path):
        service = governed_service(tmp_path, budget=10_000_000)
        with service.serve_metrics() as server:
            for i in range(40):
                service.ingest(make_post(i))
            assert _get(server.url + "/healthz") == b"ok\n"

    def test_memory_degradation_names_rung_and_bytes(self, tmp_path):
        service = governed_service(tmp_path, budget=2000)
        with service.serve_metrics() as server:
            for i in range(80):
                service.ingest(make_post(i))
            text = _get(server.url + "/healthz").decode()
            assert text.startswith("degraded: memory governor at ")
            assert "of 2000 budget bytes)" in text
            assert text.endswith("\n")

    def test_shedding_joins_the_report_with_semicolons(self, tmp_path):
        overload = OverloadController(max_delay=60.0)
        service = governed_service(tmp_path, budget=1500, overload=overload)
        with service.serve_metrics() as server:
            for i in range(200):
                service.ingest(make_post(i))
            assert service.governor.level_name == "shed"
            text = _get(server.url + "/healthz").decode()
            assert "memory governor at shed" in text
            assert "; shedding arrivals (memory pressure, policy drop)" in text


class TestHealthzJson:
    def test_healthy_report_shape(self, tmp_path):
        service = governed_service(tmp_path, budget=10_000_000)
        with service.serve_metrics() as server:
            for i in range(40):
                service.ingest(make_post(i))
            report = json.loads(_get(server.url + "/healthz.json"))
            assert report["status"] == "ok"
            assert report["reasons"] == []
            assert report["memory"]["level"] == "normal"
            assert report["memory"]["budget_bytes"] == 10_000_000
            assert report["memory"]["total_bytes"] > 0
            assert "window" in report["memory"]["usage"]

    def test_degraded_report_carries_every_section(self, tmp_path):
        overload = OverloadController(max_delay=60.0)
        service = governed_service(tmp_path, budget=1500, overload=overload)
        with service.serve_metrics() as server:
            for i in range(200):
                service.ingest(make_post(i))
            report = json.loads(_get(server.url + "/healthz.json"))
            assert report["status"] == "degraded"
            assert len(report["reasons"]) == 2
            assert report["memory"]["level"] == "shed"
            assert report["memory"]["escalations"] >= 3
            assert report["shedding"]["memory_pressure"] is True
            assert report["shedding"]["shed_total"] >= 0
            # The text probe is exactly the joined reasons.
            text = _get(server.url + "/healthz").decode()
            assert text == "degraded: " + "; ".join(report["reasons"]) + "\n"

    def test_report_matches_service_side_degradation_report(self, tmp_path):
        service = governed_service(tmp_path, budget=2000)
        with service.serve_metrics() as server:
            for i in range(80):
                service.ingest(make_post(i))
            assert (
                json.loads(_get(server.url + "/healthz.json"))
                == service.degradation_report()
            )

    def test_json_route_without_report_hook_is_plain_ok(self):
        from repro.obs import Registry
        from repro.service import MetricsServer

        server = MetricsServer(Registry())
        server.start()
        try:
            report = json.loads(_get(server.url + "/healthz.json"))
            assert report == {"status": "ok", "reasons": []}
        finally:
            server.stop()


class TestRecoveryReleasesTheReport:
    def test_purge_drains_memory_and_healthz_returns_to_ok(self, tmp_path):
        """Anti-livelock, end to end: once old windows expire, the ticked
        governor walks back down the ladder and /healthz recovers."""
        graph = AuthorGraph(nodes=[1, 2], edges=[(1, 2)])
        engine = make_diversifier(
            "unibin",
            Thresholds(lambda_t=50.0),  # short window: posts age out fast
            graph,
            storage=SpillConfig(str(tmp_path), head_limit=8, segment_size=4),
        )
        governor = MemoryGovernor(
            engine, GovernorConfig(budget_bytes=2500, check_every=8)
        )
        service = DiversificationService(engine, governor=governor, purge_every=20)
        with service.serve_metrics() as server:
            for i in range(120):
                service.ingest(make_post(i))
            assert governor.escalations >= 1
            # A sparse tail: arrivals spread far apart, windows expire.
            for i in range(40):
                service.ingest(
                    Post(
                        post_id=1000 + i,
                        author=1,
                        text="x",
                        timestamp=10_000.0 + 200.0 * i,
                        fingerprint=((1000 + i) * 0x9E3779B97F4A7C15)
                        & ((1 << 64) - 1),
                    )
                )
            assert governor.level_name == "normal"
            assert governor.releases >= 1
            assert _get(server.url + "/healthz") == b"ok\n"


class TestMemoryMetrics:
    def test_memory_families_are_scrapable(self, tmp_path):
        service = governed_service(tmp_path, budget=2000)
        with service.serve_metrics() as server:
            for i in range(80):
                service.ingest(make_post(i))
            text = _get(server.url + "/metrics").decode()
            assert 'repro_memory_bytes{family="window"}' in text
            assert "repro_memory_total_bytes" in text
            assert "repro_memory_budget_bytes 2000" in text
            assert "repro_memory_governor_level" in text
            assert "repro_memory_escalations_total" in text
            assert "repro_memory_governor_ticks_total" in text
