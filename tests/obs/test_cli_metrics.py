"""End-to-end CLI instrumentation: --metrics-out / --trace-out.

Acceptance check from the observability work: the JSON snapshot written
by ``--metrics-out`` must agree *exactly* with the run's ``Stats`` — which
this test establishes by replaying the identical trace in-process.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import Post, Thresholds, make_diversifier
from repro.io import write_posts_jsonl


@pytest.fixture()
def trace_path(tmp_path):
    posts = [
        Post(
            post_id=i,
            author=1,
            text=f"t{i}",
            timestamp=float(i),
            fingerprint=(i % 5) * 7,
        )
        for i in range(80)
    ]
    path = tmp_path / "posts.jsonl"
    write_posts_jsonl(posts, path)
    return path, posts


def _value(snap, name, **labels):
    for metric in snap["metrics"]:
        if metric["name"] != name:
            continue
        for sample in metric["samples"]:
            if all(sample["labels"].get(k) == v for k, v in labels.items()):
                return sample["value"]
    raise KeyError((name, labels))


def test_metrics_out_matches_stats_exactly(tmp_path, trace_path, capsys):
    path, posts = trace_path
    metrics_path = tmp_path / "metrics.json"
    rc = main(
        [
            "diversify",
            "--posts", str(path),
            "--algorithm", "unibin",
            "--lambda-a", "1",
            "--lambda-t", "10",
            "--metrics-out", str(metrics_path),
        ]
    )
    assert rc == 0
    snap = json.loads(metrics_path.read_text(encoding="utf-8"))

    # Ground truth: the identical run, in process.
    thresholds = Thresholds(lambda_c=18, lambda_t=10.0, lambda_a=1.0)
    engine = make_diversifier("unibin", thresholds, None)
    for post in posts:
        engine.offer(post)
    stats = engine.stats

    assert _value(snap, "repro_comparisons_total", engine="unibin") == stats.comparisons
    assert _value(snap, "repro_insertions_total", engine="unibin") == stats.insertions
    assert (
        _value(snap, "repro_offers_total", engine="unibin", decision="admitted")
        == stats.posts_admitted
    )
    assert (
        _value(snap, "repro_offers_total", engine="unibin", decision="rejected")
        == stats.posts_rejected
    )
    out = capsys.readouterr().out
    assert f"{stats.posts_admitted}/{stats.posts_processed} posts kept" in out
    assert "metrics snapshot written" in out


def test_trace_out_with_sampling(tmp_path, trace_path):
    path, posts = trace_path
    trace_out = tmp_path / "spans.jsonl"
    rc = main(
        [
            "diversify",
            "--posts", str(path),
            "--algorithm", "indexed_unibin",
            "--lambda-a", "1",
            "--lambda-t", "10",
            "--trace-out", str(trace_out),
            "--trace-sample", "0.5",
        ]
    )
    assert rc == 0
    spans = [json.loads(line) for line in trace_out.read_text().splitlines()]
    assert 0 < len(spans) < len(posts)
    assert all(span["engine"] == "indexed_unibin" for span in spans)
    # Deterministic: the same invocation samples the same spans.
    rerun = tmp_path / "spans2.jsonl"
    main(
        [
            "diversify",
            "--posts", str(path),
            "--algorithm", "indexed_unibin",
            "--lambda-a", "1",
            "--lambda-t", "10",
            "--trace-out", str(rerun),
            "--trace-sample", "0.5",
        ]
    )
    assert [s["post_id"] for s in spans] == [
        json.loads(line)["post_id"] for line in rerun.read_text().splitlines()
    ]


def test_metrics_with_resume_binds_after_restore(tmp_path, trace_path):
    """On --resume-from, metrics bind to the restored engine: counters in
    the snapshot cover the whole logical run (restored stats + new posts)."""
    path, posts = trace_path
    checkpoint = tmp_path / "ckpt.json"
    assert (
        main(
            [
                "diversify",
                "--posts", str(path),
                "--algorithm", "unibin",
                "--lambda-a", "1",
                "--lambda-t", "10",
                "--checkpoint-out", str(checkpoint),
            ]
        )
        == 0
    )
    more = [
        Post(post_id=100 + i, author=1, text=f"m{i}", timestamp=100.0 + i, fingerprint=3)
        for i in range(10)
    ]
    more_path = tmp_path / "more.jsonl"
    write_posts_jsonl(more, more_path)
    metrics_path = tmp_path / "metrics.json"
    assert (
        main(
            [
                "diversify",
                "--posts", str(more_path),
                "--resume-from", str(checkpoint),
                "--metrics-out", str(metrics_path),
            ]
        )
        == 0
    )
    snap = json.loads(metrics_path.read_text(encoding="utf-8"))
    processed = _value(
        snap, "repro_offers_total", engine="unibin", decision="admitted"
    ) + _value(snap, "repro_offers_total", engine="unibin", decision="rejected")
    assert processed == len(posts) + len(more)
