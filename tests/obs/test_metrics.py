"""Unit tests for the metrics primitives."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    log_buckets,
)


class TestLogBuckets:
    def test_geometric_progression(self):
        assert log_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": 0.0, "factor": 2.0, "count": 3},
            {"start": 1.0, "factor": 1.0, "count": 3},
            {"start": 1.0, "factor": 2.0, "count": 0},
        ],
    )
    def test_rejects_degenerate_parameters(self, kwargs):
        with pytest.raises(ValueError):
            log_buckets(**kwargs)


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4.5)
        assert c.value == 5.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_callback_wins(self):
        source = {"n": 0}
        c = Counter().set_function(lambda: source["n"])
        c.inc(100)  # ignored once a callback is bound
        source["n"] = 7
        assert c.value == 7.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_callback(self):
        items = [1, 2, 3]
        g = Gauge().set_function(lambda: len(items))
        items.append(4)
        assert g.value == 4.0


class TestHistogram:
    def test_observe_and_cumulative_view(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 105.0
        assert h.overflow == 1
        assert h.cumulative_buckets() == [
            (1.0, 1),
            (2.0, 2),
            (4.0, 3),
            (float("inf"), 4),
        ]

    def test_value_on_bucket_boundary_falls_in_that_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" is inclusive, Prometheus semantics
        assert h.cumulative_buckets()[0] == (1.0, 1)

    def test_quantile(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        assert Histogram().quantile(0.5) == 0.0
        h.observe(9.0)  # overflow: top quantiles have no finite bound
        assert h.quantile(1.0) == float("inf")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_timer_observes_elapsed(self):
        h = Histogram(buckets=(10.0,))
        with h.time():
            pass
        assert h.count == 1
        assert 0 <= h.sum < 10.0

    @pytest.mark.parametrize("buckets", [(), (2.0, 1.0), (1.0, 1.0)])
    def test_rejects_bad_bounds(self, buckets):
        with pytest.raises(ValueError):
            Histogram(buckets=buckets)


class TestRegistry:
    def test_families_share_on_reregistration(self):
        registry = Registry()
        a = registry.counter("x_total", "help", ("engine",))
        b = registry.counter("x_total", "different help ignored", ("engine",))
        assert a is b

    def test_reregistration_conflicts_raise(self):
        registry = Registry()
        registry.counter("x_total", "", ("engine",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", "", ("engine",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "", ("other",))

    def test_labels_validated_and_children_lazy(self):
        registry = Registry()
        family = registry.counter("y_total", "", ("engine",))
        with pytest.raises(ValueError):
            family.labels(wrong="x")
        child = family.labels(engine="unibin")
        assert family.labels(engine="unibin") is child
        assert family.labels(engine="cliquebin") is not child

    def test_unknown_metric_type_rejected(self):
        from repro.obs.metrics import MetricFamily

        with pytest.raises(ValueError):
            MetricFamily("z", "summary", "", ())

    def test_value_helper(self):
        registry = Registry()
        registry.counter("n_total", "", ("engine",)).labels(engine="a").inc(3)
        assert registry.value("n_total", engine="a") == 3.0
        registry.histogram("h", "").labels().observe(1.0)
        with pytest.raises(TypeError):
            registry.value("h")

    def test_histogram_custom_buckets(self):
        registry = Registry()
        h = registry.histogram("h", "", buckets=(1.0, 2.0)).labels()
        assert h.bounds == (1.0, 2.0)


class TestNullRegistry:
    def test_absorbs_the_full_api(self):
        registry = NullRegistry()
        assert registry.is_noop
        counter = registry.counter("x_total", "", ("engine",)).labels(engine="e")
        counter.inc(5)
        counter.set_function(lambda: 9)
        assert counter.value == 0.0
        histogram = registry.histogram("h", "").labels()
        histogram.observe(1.0)
        with histogram.time():
            pass
        gauge = registry.gauge("g", "").labels()
        gauge.set(1)
        gauge.inc()
        gauge.dec()
        assert list(registry.collect()) == []
        assert registry.value("anything", engine="e") == 0.0

    def test_shared_instance(self):
        assert NULL_REGISTRY.is_noop
        assert not Registry().is_noop
