"""OfferTracer: span format, sampling determinism, sink ownership."""

from __future__ import annotations

import io
import json

import pytest

from repro.core import Post
from repro.obs import OfferTracer


def _post(i: int) -> Post:
    return Post(post_id=i, author=1, text=f"t{i}", timestamp=float(i), fingerprint=i)


def _record_all(tracer: OfferTracer, n: int) -> None:
    for i in range(n):
        tracer.record(
            engine="unibin",
            post=_post(i),
            admitted=i % 2 == 0,
            latency_s=1.5e-6,
            comparisons=i,
        )


def test_span_format_and_path_ownership(tmp_path):
    path = tmp_path / "spans.jsonl"
    with OfferTracer(path) as tracer:
        _record_all(tracer, 3)
    spans = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(spans) == 3
    assert spans[0] == {
        "post_id": 0,
        "author": 1,
        "timestamp": 0.0,
        "engine": "unibin",
        "admitted": True,
        "latency_us": 1.5,
        "comparisons": 0,
    }
    assert tracer.spans_seen == tracer.spans_written == 3


def test_borrowed_handle_left_open():
    sink = io.StringIO()
    tracer = OfferTracer(sink)
    _record_all(tracer, 2)
    tracer.close()
    assert not sink.closed
    assert len(sink.getvalue().splitlines()) == 2


def test_sampling_is_seeded_and_deterministic(tmp_path):
    def run(seed: int) -> list[int]:
        sink = io.StringIO()
        tracer = OfferTracer(sink, sample=0.3, seed=seed)
        _record_all(tracer, 200)
        assert tracer.spans_seen == 200
        assert 0 < tracer.spans_written < 200
        return [json.loads(l)["post_id"] for l in sink.getvalue().splitlines()]

    assert run(7) == run(7)
    assert run(7) != run(8)


@pytest.mark.parametrize("sample", [0.0, -0.1, 1.0001])
def test_sample_bounds_validated(sample):
    with pytest.raises(ValueError):
        OfferTracer(io.StringIO(), sample=sample)
