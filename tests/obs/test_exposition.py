"""Prometheus text rendering and JSON snapshots."""

from __future__ import annotations

import json

from repro.obs import Registry, render_prometheus, snapshot, write_json_snapshot


def _sample_registry() -> Registry:
    registry = Registry()
    registry.counter("posts_total", "Posts seen", ("engine",)).labels(
        engine="unibin"
    ).inc(42)
    registry.gauge("depth", "Buffer depth").labels().set(3)
    h = registry.histogram("lat_seconds", "Latency", buckets=(0.001, 0.01)).labels()
    h.observe(0.0005)
    h.observe(0.005)
    h.observe(5.0)
    return registry


def test_prometheus_text_format():
    text = render_prometheus(_sample_registry())
    assert "# HELP posts_total Posts seen" in text
    assert "# TYPE posts_total counter" in text
    assert 'posts_total{engine="unibin"} 42' in text
    assert "# TYPE depth gauge" in text
    assert "depth 3" in text
    assert "# TYPE lat_seconds histogram" in text
    assert 'lat_seconds_bucket{le="0.001"} 1' in text
    assert 'lat_seconds_bucket{le="0.01"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_count 3" in text
    assert text.endswith("\n")


def test_integer_floats_render_without_decimal_point():
    registry = Registry()
    registry.gauge("g").labels().set(7.0)
    registry.gauge("f").labels().set(7.25)
    text = render_prometheus(registry)
    assert "g 7\n" in text
    assert "f 7.25" in text


def test_label_values_escaped():
    registry = Registry()
    registry.counter("c_total", "", ("user",)).labels(user='a"b\\c\nd').inc()
    text = render_prometheus(registry)
    assert 'c_total{user="a\\"b\\\\c\\nd"} 1' in text


def test_callbacks_read_at_render_time():
    registry = Registry()
    source = {"n": 1}
    registry.counter("live_total").labels().set_function(lambda: source["n"])
    assert "live_total 1" in render_prometheus(registry)
    source["n"] = 99
    assert "live_total 99" in render_prometheus(registry)


def test_snapshot_shape_matches_prometheus_content():
    snap = snapshot(_sample_registry())
    by_name = {m["name"]: m for m in snap["metrics"]}
    counter = by_name["posts_total"]
    assert counter["type"] == "counter"
    assert counter["labelnames"] == ["engine"]
    assert counter["samples"] == [{"labels": {"engine": "unibin"}, "value": 42.0}]
    hist = by_name["lat_seconds"]["samples"][0]
    assert hist["count"] == 3
    assert hist["buckets"] == {"0.001": 1, "0.01": 2, "+Inf": 3}


def test_write_json_snapshot_round_trips(tmp_path):
    path = tmp_path / "metrics.json"
    written = write_json_snapshot(_sample_registry(), path)
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded == json.loads(json.dumps(written))
