"""Tests for the shared StreamDiversifier base behaviour."""

import pytest

from repro.core import Post, Thresholds, UniBin
from repro.errors import StreamOrderError


class TestDiversify:
    def test_returns_admitted_posts(self, paper_posts, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        admitted = algo.diversify(paper_posts)
        assert [p.post_id for p in admitted] == [1, 2, 4]
        assert all(isinstance(p, Post) for p in admitted)

    def test_accepts_any_iterable(self, paper_posts, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        admitted = algo.diversify(iter(paper_posts))
        assert len(admitted) == 3

    def test_empty_stream(self, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        assert algo.diversify([]) == []
        assert algo.stats.posts_processed == 0


class TestOrderEnforcement:
    def test_order_enforced_across_calls(self, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        algo.diversify(
            [Post(post_id=1, author=1, text="", timestamp=100.0, fingerprint=0)]
        )
        with pytest.raises(StreamOrderError):
            algo.offer(Post(post_id=2, author=1, text="", timestamp=50.0, fingerprint=1))

    def test_error_message_names_post(self, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        algo.offer(Post(post_id=7, author=1, text="", timestamp=10.0, fingerprint=0))
        with pytest.raises(StreamOrderError, match="post 8"):
            algo.offer(Post(post_id=8, author=1, text="", timestamp=1.0, fingerprint=0))


class TestPurgeDefaults:
    def test_purge_without_now_uses_last_timestamp(self, paper_graph):
        thresholds = Thresholds(lambda_c=3, lambda_t=5.0, lambda_a=0.7)
        algo = UniBin(thresholds, paper_graph)
        algo.offer(Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0))
        algo.offer(Post(post_id=2, author=1, text="", timestamp=100.0, fingerprint=1 << 20))
        algo.purge()  # now = 100.0 → post 1 is long expired
        assert algo.stored_copies() == 1

    def test_graph_property_exposed(self, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        assert algo.graph is paper_graph
