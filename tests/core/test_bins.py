"""Tests for repro.core.bins — the time-windowed post bin."""

from repro.core import Post, PostBin


def make_post(post_id, t):
    return Post(post_id=post_id, author=1, text="", timestamp=t, fingerprint=0)


class TestAppendAndLen:
    def test_empty(self):
        assert len(PostBin()) == 0

    def test_append(self):
        bin_ = PostBin()
        bin_.append(make_post(1, 0.0))
        bin_.append(make_post(2, 1.0))
        assert len(bin_) == 2
        assert [p.post_id for p in bin_] == [1, 2]


class TestScan:
    def test_newest_first_order(self):
        bin_ = PostBin()
        for i in range(5):
            bin_.append(make_post(i, float(i)))
        ids = [p.post_id for p in bin_.scan(now=4.0, lambda_t=10.0)]
        assert ids == [4, 3, 2, 1, 0]

    def test_newest_first_stops_at_window(self):
        bin_ = PostBin()
        for i in range(5):
            bin_.append(make_post(i, float(i)))
        ids = [p.post_id for p in bin_.scan(now=4.0, lambda_t=2.0)]
        assert ids == [4, 3, 2]

    def test_oldest_first_skips_expired(self):
        bin_ = PostBin()
        for i in range(5):
            bin_.append(make_post(i, float(i)))
        ids = [p.post_id for p in bin_.scan(now=4.0, lambda_t=2.0, newest_first=False)]
        assert ids == [2, 3, 4]

    def test_window_boundary_inclusive(self):
        bin_ = PostBin()
        bin_.append(make_post(1, 0.0))
        assert [p.post_id for p in bin_.scan(now=10.0, lambda_t=10.0)] == [1]

    def test_empty_scan(self):
        assert list(PostBin().scan(now=0.0, lambda_t=1.0)) == []

    def test_orders_agree_on_membership(self):
        bin_ = PostBin()
        for i in range(10):
            bin_.append(make_post(i, float(i)))
        newest = {p.post_id for p in bin_.scan(9.0, 4.0)}
        oldest = {p.post_id for p in bin_.scan(9.0, 4.0, newest_first=False)}
        assert newest == oldest


class TestExpire:
    def test_drops_old(self):
        bin_ = PostBin()
        for i in range(5):
            bin_.append(make_post(i, float(i)))
        dropped = bin_.expire(now=4.0, lambda_t=2.0)
        assert dropped == 2
        assert [p.post_id for p in bin_] == [2, 3, 4]

    def test_boundary_kept(self):
        bin_ = PostBin()
        bin_.append(make_post(1, 2.0))
        assert bin_.expire(now=4.0, lambda_t=2.0) == 0
        assert len(bin_) == 1

    def test_expire_all(self):
        bin_ = PostBin()
        bin_.append(make_post(1, 0.0))
        assert bin_.expire(now=100.0, lambda_t=1.0) == 1
        assert len(bin_) == 0

    def test_expire_empty(self):
        assert PostBin().expire(0.0, 1.0) == 0


class TestClear:
    def test_clear_returns_count(self):
        bin_ = PostBin()
        bin_.append(make_post(1, 0.0))
        bin_.append(make_post(2, 1.0))
        assert bin_.clear() == 2
        assert len(bin_) == 0
