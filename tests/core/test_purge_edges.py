"""Edge cases of ``purge``/``offer`` shared by every engine.

The four algorithms must agree bit-for-bit on the boundary semantics the
base class documents: equal timestamps are in-order, a time gap of exactly
λt still covers (``<=``), purging at exactly the window boundary keeps the
boundary post, and offering after a ``purge(now)`` whose ``now`` ran ahead
of the stream is legal (the purged coverer is gone, so a duplicate is
re-admitted — purge is GC, not a decision input, and these tests pin the
consequence of calling it early).
"""

import pytest

from repro.core import Post, Thresholds, make_diversifier

ENGINES = ("unibin", "neighborbin", "cliquebin", "indexed_unibin")

FAR = (1 << 10) - 1  # 10 bits from fingerprint 0, beyond lambda_c=3


def _post(post_id: int, timestamp: float, *, author: int = 1, fp: int = 0) -> Post:
    return Post(
        post_id=post_id, author=author, text="t", timestamp=timestamp, fingerprint=fp
    )


@pytest.fixture(params=ENGINES)
def engine(request, paper_graph):
    return make_diversifier(
        request.param,
        Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=0.7),
        paper_graph,
    )


class TestEqualTimestamps:
    def test_duplicate_at_same_instant_covered(self, engine):
        assert engine.offer(_post(1, 10.0))
        assert not engine.offer(_post(2, 10.0))  # same content, zero gap

    def test_distinct_content_at_same_instant_admitted(self, engine):
        assert engine.offer(_post(1, 10.0))
        assert engine.offer(_post(2, 10.0, fp=FAR))

    def test_many_equal_timestamps_stay_in_order(self, engine):
        # A burst at one instant must not trip the order check.
        verdicts = [engine.offer(_post(i, 5.0, fp=FAR * (i % 2))) for i in range(1, 7)]
        assert verdicts == [True, True, False, False, False, False]


class TestWindowBoundary:
    def test_gap_of_exactly_lambda_t_covers(self, engine):
        assert engine.offer(_post(1, 0.0))
        assert not engine.offer(_post(2, 100.0))  # |gap| == lambda_t, <= holds

    def test_gap_just_beyond_lambda_t_admits(self, engine):
        assert engine.offer(_post(1, 0.0))
        assert engine.offer(_post(2, 100.5))

    def test_purge_at_exact_boundary_keeps_post(self, engine):
        engine.offer(_post(1, 0.0))
        before = engine.stored_copies()
        engine.purge(100.0)  # cutoff == post timestamp; `<` must not drop it
        assert engine.stored_copies() == before

    def test_purge_past_boundary_drops_post(self, engine):
        engine.offer(_post(1, 0.0))
        engine.purge(101.0)
        assert engine.stored_copies() == 0
        # The eviction must be accounted, keeping the RAM proxy exact.
        assert engine.stats.stored_copies == 0
        assert engine.stats.evictions == engine.stats.insertions


class TestExactEvictionAccounting:
    """The offer path expires the window exactly once per offer.

    (The coverage check used to expire and then ``_admit`` expired again;
    the second scan always evicted zero, so these exact counts pin the
    behaviour the single-expire fast path must preserve.)"""

    def test_admitted_offer_evicts_stale_copies_once(self, engine):
        engine.offer(_post(1, 0.0))
        first_copies = engine.stats.insertions
        engine.offer(_post(2, 50.0, fp=FAR))
        # t=141: post 1 (and only post 1) has left every window.
        assert engine.offer(_post(3, 141.0, fp=FAR << 10))
        assert engine.stats.evictions == first_copies
        assert engine.stored_copies() == engine.stats.insertions - first_copies

    def test_covered_offer_expires_consulted_bins_exactly_once(self, engine):
        engine.offer(_post(1, 0.0))
        engine.offer(_post(2, 50.0, fp=FAR))
        # Covered by post 2; the rejection path alone must expire post 1
        # from the bins the coverage check consulted. Post 1 has exactly
        # one copy there in every engine (UniBin's single bin, NeighborBin's
        # own-author bin, CliqueBin's one clique holding author 1, the
        # indexed engine's bin) — evicted once, never recounted.
        assert not engine.offer(_post(3, 140.0, fp=FAR))
        assert engine.stats.evictions == 1
        assert engine.stats.stored_copies == engine.stats.insertions - 1

    def test_stored_copies_invariant_along_a_stream(self, engine):
        stream = [(0.0, 0), (30.0, FAR), (90.0, 0), (160.0, FAR), (300.0, 0)]
        for post_id, (timestamp, fp) in enumerate(stream, start=1):
            engine.offer(_post(post_id, timestamp, fp=fp))
            stats = engine.stats
            assert stats.stored_copies == stats.insertions - stats.evictions
            assert engine.stored_copies() == stats.stored_copies


class TestOfferAfterEarlyPurge:
    def test_offer_behind_purge_now_is_legal(self, engine):
        """purge(now) does not advance the order cursor: a post older than
        ``now`` (but not older than the last *offered* post) still goes
        through, and — its coverer having been purged — is re-admitted.
        All four engines must agree on this consequence."""
        assert engine.offer(_post(1, 0.0))
        engine.purge(150.0)  # now ahead of the last post; evicts post 1
        assert engine.stored_copies() == 0
        assert engine.offer(_post(2, 50.0))  # duplicate content, coverer gone

    def test_purge_default_now_uses_last_timestamp(self, engine):
        engine.offer(_post(1, 0.0))
        engine.offer(_post(2, 100.0, fp=FAR))
        before = engine.stored_copies()  # replication varies per engine
        engine.purge()  # now = 100.0; cutoff 0.0 keeps the boundary post
        assert engine.stored_copies() == before
        assert engine.stats.evictions == 0
