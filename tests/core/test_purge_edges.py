"""Edge cases of ``purge``/``offer`` shared by every engine.

The four algorithms must agree bit-for-bit on the boundary semantics the
base class documents: equal timestamps are in-order, a time gap of exactly
λt still covers (``<=``), purging at exactly the window boundary keeps the
boundary post, and offering after a ``purge(now)`` whose ``now`` ran ahead
of the stream is legal (the purged coverer is gone, so a duplicate is
re-admitted — purge is GC, not a decision input, and these tests pin the
consequence of calling it early).
"""

import pytest

from repro.core import Post, Thresholds, make_diversifier

ENGINES = ("unibin", "neighborbin", "cliquebin", "indexed_unibin")

FAR = (1 << 10) - 1  # 10 bits from fingerprint 0, beyond lambda_c=3


def _post(post_id: int, timestamp: float, *, author: int = 1, fp: int = 0) -> Post:
    return Post(
        post_id=post_id, author=author, text="t", timestamp=timestamp, fingerprint=fp
    )


@pytest.fixture(params=ENGINES)
def engine(request, paper_graph):
    return make_diversifier(
        request.param,
        Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=0.7),
        paper_graph,
    )


class TestEqualTimestamps:
    def test_duplicate_at_same_instant_covered(self, engine):
        assert engine.offer(_post(1, 10.0))
        assert not engine.offer(_post(2, 10.0))  # same content, zero gap

    def test_distinct_content_at_same_instant_admitted(self, engine):
        assert engine.offer(_post(1, 10.0))
        assert engine.offer(_post(2, 10.0, fp=FAR))

    def test_many_equal_timestamps_stay_in_order(self, engine):
        # A burst at one instant must not trip the order check.
        verdicts = [engine.offer(_post(i, 5.0, fp=FAR * (i % 2))) for i in range(1, 7)]
        assert verdicts == [True, True, False, False, False, False]


class TestWindowBoundary:
    def test_gap_of_exactly_lambda_t_covers(self, engine):
        assert engine.offer(_post(1, 0.0))
        assert not engine.offer(_post(2, 100.0))  # |gap| == lambda_t, <= holds

    def test_gap_just_beyond_lambda_t_admits(self, engine):
        assert engine.offer(_post(1, 0.0))
        assert engine.offer(_post(2, 100.5))

    def test_purge_at_exact_boundary_keeps_post(self, engine):
        engine.offer(_post(1, 0.0))
        before = engine.stored_copies()
        engine.purge(100.0)  # cutoff == post timestamp; `<` must not drop it
        assert engine.stored_copies() == before

    def test_purge_past_boundary_drops_post(self, engine):
        engine.offer(_post(1, 0.0))
        engine.purge(101.0)
        assert engine.stored_copies() == 0
        # The eviction must be accounted, keeping the RAM proxy exact.
        assert engine.stats.stored_copies == 0
        assert engine.stats.evictions == engine.stats.insertions


class TestOfferAfterEarlyPurge:
    def test_offer_behind_purge_now_is_legal(self, engine):
        """purge(now) does not advance the order cursor: a post older than
        ``now`` (but not older than the last *offered* post) still goes
        through, and — its coverer having been purged — is re-admitted.
        All four engines must agree on this consequence."""
        assert engine.offer(_post(1, 0.0))
        engine.purge(150.0)  # now ahead of the last post; evicts post 1
        assert engine.stored_copies() == 0
        assert engine.offer(_post(2, 50.0))  # duplicate content, coverer gone

    def test_purge_default_now_uses_last_timestamp(self, engine):
        engine.offer(_post(1, 0.0))
        engine.offer(_post(2, 100.0, fp=FAR))
        before = engine.stored_copies()  # replication varies per engine
        engine.purge()  # now = 100.0; cutoff 0.0 keeps the boundary post
        assert engine.stored_copies() == before
        assert engine.stats.evictions == 0
