"""Tests for repro.core.unibin — including the paper's Figure 6a walk."""

import pytest

from repro.core import Post, Thresholds, UniBin
from repro.errors import StreamOrderError


class TestPaperWalkthrough:
    """Figure 6a: Z = {P1, P2, P4}; P3 covered by P1, P5 covered by P4."""

    def test_admissions(self, paper_posts, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        decisions = [algo.offer(p) for p in paper_posts]
        assert decisions == [True, True, False, True, False]

    def test_comparison_count(self, paper_posts, paper_graph, paper_thresholds):
        # P1: 0 cmp; P2: 1 (P1); P3: 2 (P2 then P1, newest first);
        # P4: 2 (P2, P1); P5: 1 (P4 covers immediately) → 6 total.
        algo = UniBin(paper_thresholds, paper_graph)
        algo.diversify(paper_posts)
        assert algo.stats.comparisons == 6

    def test_insertions_one_per_admitted(self, paper_posts, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        algo.diversify(paper_posts)
        assert algo.stats.insertions == 3
        assert algo.stored_copies() == 3


class TestWindowing:
    def test_old_posts_cannot_cover(self, paper_graph):
        th = Thresholds(lambda_c=3, lambda_t=10.0, lambda_a=0.7)
        algo = UniBin(th, paper_graph)
        p1 = Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0)
        p2 = Post(post_id=2, author=1, text="", timestamp=11.0, fingerprint=0)
        assert algo.offer(p1)
        assert algo.offer(p2)  # identical, but outside the window

    def test_expired_posts_evicted(self, paper_graph):
        th = Thresholds(lambda_c=3, lambda_t=10.0, lambda_a=0.7)
        algo = UniBin(th, paper_graph)
        for i in range(5):
            algo.offer(
                Post(post_id=i, author=1, text="", timestamp=i * 20.0, fingerprint=i << 10)
            )
        assert algo.stored_copies() == 1
        assert algo.stats.evictions == 4

    def test_purge(self, paper_graph):
        th = Thresholds(lambda_c=3, lambda_t=10.0, lambda_a=0.7)
        algo = UniBin(th, paper_graph)
        algo.offer(Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0))
        algo.purge(now=100.0)
        assert algo.stored_copies() == 0


class TestStreamOrder:
    def test_out_of_order_rejected(self, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        algo.offer(Post(post_id=1, author=1, text="", timestamp=10.0, fingerprint=0))
        with pytest.raises(StreamOrderError):
            algo.offer(Post(post_id=2, author=1, text="", timestamp=5.0, fingerprint=0))

    def test_equal_timestamps_allowed(self, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        algo.offer(Post(post_id=1, author=1, text="", timestamp=10.0, fingerprint=0))
        algo.offer(Post(post_id=2, author=1, text="", timestamp=10.0, fingerprint=1 << 30))


class TestStats:
    def test_processed_and_admitted(self, paper_posts, paper_graph, paper_thresholds):
        algo = UniBin(paper_thresholds, paper_graph)
        admitted = algo.diversify(paper_posts)
        assert algo.stats.posts_processed == 5
        assert algo.stats.posts_admitted == 3
        assert [p.post_id for p in admitted] == [1, 2, 4]
        assert algo.stats.retention_ratio == pytest.approx(0.6)


class TestAuthorFree:
    def test_runs_without_graph_when_author_disabled(self):
        th = Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=1.0)
        algo = UniBin(th, None)
        p1 = Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0)
        p2 = Post(post_id=2, author=999, text="", timestamp=1.0, fingerprint=1)
        assert algo.offer(p1)
        assert not algo.offer(p2)  # any author covers now
