"""Tests for repro.core.neighborbin — including the Figure 6b walk."""

import pytest

from repro.core import NeighborBin, Post, Thresholds, UniBin
from repro.errors import ConfigurationError, UnknownAuthorError


class TestPaperWalkthrough:
    """Figure 6b: same Z as UniBin, fewer comparisons, more insertions."""

    def test_admissions(self, paper_posts, paper_graph, paper_thresholds):
        algo = NeighborBin(paper_thresholds, paper_graph)
        decisions = [algo.offer(p) for p in paper_posts]
        assert decisions == [True, True, False, True, False]

    def test_comparison_count(self, paper_posts, paper_graph, paper_thresholds):
        # P1: 0 (bin of a1 empty); P2: 1 (P1 in a2's bin); P3: 2 (P2, P1 in
        # a3's bin); P4: 0 (a4's bin blank, per the paper); P5: 1 (P4 covers)
        algo = NeighborBin(paper_thresholds, paper_graph)
        algo.diversify(paper_posts)
        assert algo.stats.comparisons == 4

    def test_insertion_count(self, paper_posts, paper_graph, paper_thresholds):
        # P1 → bins a1,a2,a3 (3); P2 → a2,a1,a3 (3); P4 → a4,a3 (2) = 8.
        algo = NeighborBin(paper_thresholds, paper_graph)
        algo.diversify(paper_posts)
        assert algo.stats.insertions == 8
        assert algo.stored_copies() == 8

    def test_paper_p6_p7_extension(self, paper_posts, paper_graph, paper_thresholds):
        """§4.3's P6/P7 example: P6 (a3) lands in all four bins; P7 (a4)
        needs exactly two comparisons (against P4 and P6)."""
        algo = NeighborBin(paper_thresholds, paper_graph)
        algo.diversify(paper_posts)
        p6 = Post(post_id=6, author=3, text="", timestamp=5.0, fingerprint=0b11111 << 55)
        p7 = Post(post_id=7, author=4, text="", timestamp=6.0, fingerprint=0b1111 << 45)
        before_ins = algo.stats.insertions
        assert algo.offer(p6)
        assert algo.stats.insertions - before_ins == 4  # a3 + neighbours 1,2,4
        before_cmp = algo.stats.comparisons
        assert algo.offer(p7)
        assert algo.stats.comparisons - before_cmp == 2  # P4 and P6 in a4's bin

    def test_agrees_with_unibin(self, paper_posts, paper_graph, paper_thresholds):
        uni = UniBin(paper_thresholds, paper_graph)
        neigh = NeighborBin(paper_thresholds, paper_graph)
        assert [uni.offer(p) for p in paper_posts] == [
            neigh.offer(p) for p in paper_posts
        ]


class TestConfiguration:
    def test_requires_graph(self, paper_thresholds):
        with pytest.raises(ConfigurationError):
            NeighborBin(paper_thresholds, None)

    def test_rejects_disabled_author_dimension(self, paper_graph):
        with pytest.raises(ConfigurationError):
            NeighborBin(Thresholds(lambda_a=1.0), paper_graph)

    def test_unknown_author_rejected(self, paper_graph, paper_thresholds):
        algo = NeighborBin(paper_thresholds, paper_graph)
        with pytest.raises(UnknownAuthorError):
            algo.offer(Post(post_id=1, author=99, text="", timestamp=0.0, fingerprint=0))


class TestEviction:
    def test_purge_empties_expired(self, paper_graph):
        th = Thresholds(lambda_c=3, lambda_t=10.0, lambda_a=0.7)
        algo = NeighborBin(th, paper_graph)
        algo.offer(Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0))
        assert algo.stored_copies() == 3
        algo.purge(now=100.0)
        assert algo.stored_copies() == 0
        assert algo.stats.evictions == 3

    def test_cross_author_coverage_respects_window(self, paper_graph):
        th = Thresholds(lambda_c=3, lambda_t=10.0, lambda_a=0.7)
        algo = NeighborBin(th, paper_graph)
        algo.offer(Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0))
        # Same content from similar author, inside window → covered.
        assert not algo.offer(
            Post(post_id=2, author=3, text="", timestamp=5.0, fingerprint=0)
        )
        # Outside window → admitted again.
        assert algo.offer(
            Post(post_id=3, author=3, text="", timestamp=50.0, fingerprint=0)
        )
