"""Bit-exactness of the vectorized coverage kernel vs the scalar probe.

The :class:`~repro.simhash.CoverageKernel` replaces UniBin's per-post
Python scan with chunked popcounts; its contract is that nothing
observable changes — verdicts, ``stats`` counters, checkpoints, even the
sequence of ``AuthorGraph.are_similar`` calls. These tests run the same
streams through kernel-on and kernel-off (``set_kernel_enabled``) engines
across the property suite's threshold grid, plus a hypothesis-driven
probe-vs-reference check on the kernel in isolation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Post, Thresholds, make_diversifier
from repro.simhash import CoverageKernel, kernel_enabled, set_kernel_enabled
from repro.simhash.hamming import hamming

from ..properties.worldgen import ALL_ENGINES, AUTHOR_FREE_ENGINES, make_world


@pytest.fixture
def scalar_mode():
    """Force scalar engines inside the block, restoring the old mode."""
    previous = set_kernel_enabled(False)
    yield
    set_kernel_enabled(previous)


def _reference_probe(entries, fingerprint, author, *, lambda_c, limit,
                     author_free, graph):
    """The scalar newest-first scan the kernel must reproduce exactly."""
    scan = len(entries) if limit is None or limit > len(entries) else limit
    checked = 0
    for fp, _ts, au in reversed(entries[len(entries) - scan:]):
        checked += 1
        if hamming(fp, fingerprint) <= lambda_c and (
            author_free
            or au == author
            or (graph is not None and graph.are_similar(author, au))
        ):
            return (True, checked)
    return (False, scan)


window_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=50),
    ),
    max_size=600,
)


class TestKernelProbe:
    @settings(max_examples=150, deadline=None)
    @given(
        window_entries,
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=64),
        st.one_of(st.none(), st.integers(min_value=0, max_value=700)),
    )
    def test_author_free_matches_reference(self, entries, fp, lambda_c, limit):
        kernel = CoverageKernel()
        for f, t, a in entries:
            kernel.append(f, t, a)
        assert kernel.probe(fp, 0, lambda_c=lambda_c, limit=limit) == \
            _reference_probe(entries, fp, 0, lambda_c=lambda_c, limit=limit,
                             author_free=True, graph=None)

    @settings(max_examples=100, deadline=None)
    @given(
        window_entries,
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=64),
    )
    def test_same_author_dimension_matches_reference(
        self, entries, fp, author, lambda_c
    ):
        """author_free=False with no graph: only same-author posts cover."""
        kernel = CoverageKernel()
        for f, t, a in entries:
            kernel.append(f, t, a)
        assert kernel.probe(
            fp, author, lambda_c=lambda_c, author_free=False, graph=None
        ) == _reference_probe(
            entries, fp, author, lambda_c=lambda_c, limit=None,
            author_free=False, graph=None,
        )

    def test_probe_spans_block_boundaries(self):
        """A lone hit at the oldest end, > PROBE_BLOCK candidates deep."""
        kernel = CoverageKernel()
        kernel.append(0, 0.0, 1)  # the eventual hit
        for i in range(600):
            kernel.append(2**64 - 1, float(i + 1), 1)
        assert kernel.probe(0, 1, lambda_c=0) == (True, 601)
        assert kernel.probe(0, 1, lambda_c=0, limit=600) == (False, 600)

    def test_drop_oldest_and_compaction_keep_answers_right(self):
        kernel = CoverageKernel(capacity=64)
        for i in range(200):
            kernel.append(i, float(i), 0)
        kernel.drop_oldest(150)
        assert len(kernel) == 50
        # 150..199 remain; fingerprint 150 is now the oldest → position 50.
        assert kernel.probe(150, 0, lambda_c=0) == (True, 50)
        assert kernel.probe(149, 0, lambda_c=0) == (False, 50)

    def test_oversized_probe_fingerprint_returns_none(self):
        kernel = CoverageKernel()
        kernel.append(1, 0.0, 0)
        assert kernel.probe(2**64, 0, lambda_c=8) is None
        # The mirrored window is still valid afterwards.
        assert kernel.probe(1, 0, lambda_c=0) == (True, 1)

    def test_oversized_append_raises(self):
        kernel = CoverageKernel()
        with pytest.raises(OverflowError):
            kernel.append(2**64, 0.0, 0)

    def test_graph_sees_the_scalar_call_sequence(self):
        """are_similar must be called for exactly the candidates the
        scalar loop would consult, newest-first."""
        calls = []

        class SpyGraph:
            def are_similar(self, a, b):
                calls.append((a, b))
                return False

        kernel = CoverageKernel()
        for i, au in enumerate([10, 20, 30]):
            kernel.append(7, float(i), au)  # all content-similar
        verdict = kernel.probe(
            7, 99, lambda_c=0, author_free=False, graph=SpyGraph()
        )
        assert verdict == (False, 3)
        assert calls == [(99, 30), (99, 20), (99, 10)]


#: Dense worlds (sub-second gaps, long windows) so windows grow well past
#: ``VECTOR_MIN_SCAN`` and the lazily-activated kernel actually engages;
#: the first entry keeps the default sparse world to cover the
#: never-activates regime too.
GRID = (
    {"lambda_c": 8, "lambda_t": 120.0, "lambda_a": 0.7},
    {"lambda_c": 0, "lambda_t": 600.0, "lambda_a": 1.0, "mean_gap": 0.5},
    {"lambda_c": 8, "lambda_t": 600.0, "lambda_a": 0.7, "mean_gap": 0.5},
    {"lambda_c": 18, "lambda_t": 600.0, "lambda_a": 0.7, "mean_gap": 0.5},
)


def _dense_world(seed, **overrides):
    params = dict(mean_gap=0.5, lambda_t=600.0, lambda_a=1.0, n_posts=300)
    params.update(overrides)
    return make_world(seed, **params)


class TestEngineDifferential:
    """Kernel-on vs kernel-off engines: everything observable is equal."""

    @pytest.mark.parametrize("engine_name", ALL_ENGINES)
    @pytest.mark.parametrize("grid", GRID, ids=lambda g: "c{lambda_c}".format(**g))
    @pytest.mark.parametrize("seed", (7, 31))
    def test_verdicts_stats_and_checkpoints_identical(self, engine_name, grid, seed):
        if grid["lambda_a"] >= 1.0 and engine_name not in AUTHOR_FREE_ENGINES:
            pytest.skip("engine requires the author dimension")
        world = make_world(seed, **grid)
        assert kernel_enabled()
        vectorized = make_diversifier(engine_name, world.thresholds, world.graph)
        previous = set_kernel_enabled(False)
        try:
            scalar = make_diversifier(engine_name, world.thresholds, world.graph)
        finally:
            set_kernel_enabled(previous)
        for post in world.posts:
            assert vectorized.offer(post) == scalar.offer(post), post
        assert vectorized.stats.state_dict() == scalar.stats.state_dict()
        assert vectorized.state_dict() == scalar.state_dict()

    @pytest.mark.parametrize("engine_name", ALL_ENGINES)
    @pytest.mark.parametrize("seed", (13,))
    def test_kernel_actually_activates_on_dense_unibin(self, engine_name, seed):
        """Guard against the differential passing vacuously: on a dense
        world the unibin window crosses VECTOR_MIN_SCAN and the kernel
        must come alive (unibin only — the other engines shard their
        windows or probe through the SimHash index)."""
        world = _dense_world(seed, lambda_a=0.7)
        engine = make_diversifier(engine_name, world.thresholds, world.graph)
        for post in world.posts:
            engine.offer(post)
        if engine_name == "unibin":
            assert engine.kernel_active

    @pytest.mark.parametrize("seed", (7,))
    def test_probe_limit_identical(self, seed):
        world = _dense_world(seed, lambda_c=18)
        vectorized = make_diversifier("unibin", world.thresholds, None)
        previous = set_kernel_enabled(False)
        try:
            scalar = make_diversifier("unibin", world.thresholds, None)
        finally:
            set_kernel_enabled(previous)
        # Large enough to clear VECTOR_MIN_SCAN (so the kernel path runs
        # with truncation), small enough that dense windows exceed it.
        for engine in (vectorized, scalar):
            engine.set_probe_limit(100)
        assert 64 <= 100 < len(world.posts)
        for post in world.posts:
            assert vectorized.offer(post) == scalar.offer(post), post
        assert vectorized.stats.state_dict() == scalar.stats.state_dict()

    def test_kernel_survives_checkpoint_restore(self):
        world = _dense_world(11, lambda_a=0.7)
        engine = make_diversifier("unibin", world.thresholds, world.graph)
        half = len(world.posts) // 2
        for post in world.posts[:half]:
            engine.offer(post)
        assert engine.kernel_active
        restored = make_diversifier("unibin", world.thresholds, world.graph)
        restored.load_state(engine.state_dict())
        # Activation is lazy: the restored engine re-arms and comes back
        # alive on its first long-enough scan.
        for post in world.posts[half:]:
            assert restored.offer(post) == engine.offer(post), post
        assert restored.kernel_active
        assert restored.state_dict() == engine.state_dict()

    def test_scalar_mode_never_activates(self, scalar_mode):
        world = _dense_world(3)
        engine = make_diversifier("unibin", world.thresholds, None)
        for post in world.posts:
            engine.offer(post)
        assert not engine.kernel_active

    def test_huge_fingerprint_post_falls_back_scalar(self):
        """A post whose fingerprint exceeds uint64 disables an *active*
        kernel mid-stream without changing any verdict."""
        th = Thresholds(lambda_c=0, lambda_t=1e6, lambda_a=1.0)
        vectorized = make_diversifier("unibin", th, None)
        previous = set_kernel_enabled(False)
        try:
            scalar = make_diversifier("unibin", th, None)
        finally:
            set_kernel_enabled(previous)
        # 70 distinct-fingerprint posts: all admitted (λc = 0), window
        # grows past VECTOR_MIN_SCAN and the lazy kernel comes alive.
        stream = [
            Post(post_id=i, author=1, text="", timestamp=float(i), fingerprint=i)
            for i in range(70)
        ]
        stream += [
            Post(post_id=100, author=1, text="", timestamp=70.0,
                 fingerprint=2**70),
            Post(post_id=101, author=1, text="", timestamp=71.0,
                 fingerprint=2**70 + 1),
            # An exact duplicate of an admitted post: still covered after
            # the fallback.
            Post(post_id=102, author=1, text="", timestamp=72.0,
                 fingerprint=4),
        ]
        assert not vectorized.kernel_active  # lazy: nothing offered yet
        for post in stream[:70]:
            assert vectorized.offer(post) == scalar.offer(post), post
        assert vectorized.kernel_active
        for post in stream[70:]:
            assert vectorized.offer(post) == scalar.offer(post), post
        assert not vectorized.kernel_active
        assert vectorized.stats.state_dict() == scalar.stats.state_dict()
        assert vectorized.state_dict() == scalar.state_dict()

    def test_memory_breakdown_reports_kernel_bytes(self):
        world = _dense_world(5)
        engine = make_diversifier("unibin", world.thresholds, world.graph)
        for post in world.posts:
            engine.offer(post)
        assert engine.kernel_active
        breakdown = engine.memory_breakdown()
        assert breakdown.get("kernel", 0) > 0
