"""Tests for repro.core.costmodel — the §4.4 analytical model."""

import pytest

from repro.authors import greedy_clique_cover
from repro.core import (
    WorkloadParameters,
    estimate,
    estimate_all,
    parameters_from_run,
)
from repro.core.costmodel import (
    estimate_cliquebin,
    estimate_neighborbin,
    estimate_unibin,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def params() -> WorkloadParameters:
    return WorkloadParameters(m=100, n=1000.0, r=0.9, d=10.0, c=4.0, s=5.0)


class TestFormulas:
    def test_unibin(self, params):
        est = estimate_unibin(params)
        assert est.ram_copies == pytest.approx(900.0)
        assert est.comparisons == pytest.approx(0.9 * 1000 * 1000)
        assert est.insertions == pytest.approx(900.0)

    def test_neighborbin(self, params):
        est = estimate_neighborbin(params)
        assert est.ram_copies == pytest.approx(11 * 900.0)
        assert est.comparisons == pytest.approx((11 / 100) * 0.9 * 1000 * 1000)
        assert est.insertions == pytest.approx(11 * 900.0)

    def test_cliquebin(self, params):
        est = estimate_cliquebin(params)
        assert est.ram_copies == pytest.approx(4 * 900.0)
        assert est.comparisons == pytest.approx((20 / 100) * 0.9 * 1000 * 1000)
        assert est.insertions == pytest.approx(4 * 900.0)

    def test_table_ordering_holds(self, params):
        """For d > c (as on real graphs) the paper's ordering must emerge:
        UniBin least RAM, NeighborBin most; NeighborBin fewest comparisons."""
        uni, neigh, clique = (
            estimate_unibin(params),
            estimate_neighborbin(params),
            estimate_cliquebin(params),
        )
        assert uni.ram_copies < clique.ram_copies < neigh.ram_copies
        assert neigh.comparisons < clique.comparisons < uni.comparisons
        assert uni.insertions < clique.insertions < neigh.insertions


class TestEstimateDispatch:
    def test_by_name(self, params):
        assert estimate("unibin", params).algorithm == "unibin"

    def test_unknown(self, params):
        with pytest.raises(ConfigurationError):
            estimate("fastbin", params)

    def test_estimate_all(self, params):
        assert [e.algorithm for e in estimate_all(params)] == [
            "unibin",
            "neighborbin",
            "cliquebin",
        ]


class TestValidation:
    def test_bad_m(self):
        with pytest.raises(ConfigurationError):
            WorkloadParameters(m=0, n=1, r=0.5, d=1, c=1, s=2)

    def test_bad_r(self):
        with pytest.raises(ConfigurationError):
            WorkloadParameters(m=1, n=1, r=1.5, d=1, c=1, s=2)

    def test_negative_topology(self):
        with pytest.raises(ConfigurationError):
            WorkloadParameters(m=1, n=1, r=0.5, d=-1, c=1, s=2)


class TestOverlapFactor:
    def test_q_identity(self):
        # c·(s−1)·q = d → q = d / (c(s−1))
        p = WorkloadParameters(m=10, n=1, r=1.0, d=12.0, c=4.0, s=4.0)
        assert p.clique_overlap_q() == pytest.approx(1.0)

    def test_q_zero_for_edgeless(self):
        p = WorkloadParameters(m=10, n=1, r=1.0, d=0.0, c=1.0, s=1.0)
        assert p.clique_overlap_q() == 0.0


class TestParametersFromRun:
    def test_measured_topology(self, paper_graph):
        cover = greedy_clique_cover(paper_graph)
        p = parameters_from_run(
            paper_graph, cover, posts_in_window=50.0, retention_ratio=0.8
        )
        assert p.m == 4
        assert p.n == 50.0
        assert p.r == 0.8
        assert p.d == pytest.approx(2.0)  # degrees 2,2,3,1
        assert p.c == pytest.approx(5 / 4)
        assert p.s == pytest.approx(5 / 2)
