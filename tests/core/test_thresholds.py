"""Tests for repro.core.thresholds."""

import math

import pytest

from repro.core import (
    DEFAULT_LAMBDA_A,
    DEFAULT_LAMBDA_C,
    DEFAULT_LAMBDA_T,
    Thresholds,
)
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self):
        th = Thresholds()
        assert th.lambda_c == DEFAULT_LAMBDA_C == 18
        assert th.lambda_t == DEFAULT_LAMBDA_T == 1800.0
        assert th.lambda_a == DEFAULT_LAMBDA_A == 0.7

    def test_author_min_similarity(self):
        assert Thresholds(lambda_a=0.7).author_min_similarity == pytest.approx(0.3)


class TestValidation:
    @pytest.mark.parametrize("lc", [-1, 65, 18.5, "18"])
    def test_bad_lambda_c(self, lc):
        with pytest.raises(ConfigurationError):
            Thresholds(lambda_c=lc)

    def test_bad_lambda_t(self):
        with pytest.raises(ConfigurationError):
            Thresholds(lambda_t=-1.0)

    @pytest.mark.parametrize("la", [-0.1, 1.5])
    def test_bad_lambda_a(self, la):
        with pytest.raises(ConfigurationError):
            Thresholds(lambda_a=la)

    def test_boundary_values_ok(self):
        Thresholds(lambda_c=0, lambda_t=0.0, lambda_a=0.0)
        Thresholds(lambda_c=64, lambda_t=math.inf, lambda_a=1.0)


class TestWithout:
    def test_disable_content(self):
        th = Thresholds().without("content")
        assert th.lambda_c == 64
        assert th.lambda_t == DEFAULT_LAMBDA_T

    def test_disable_time(self):
        assert math.isinf(Thresholds().without("time").lambda_t)

    def test_disable_author(self):
        assert Thresholds().without("author").lambda_a == 1.0

    def test_disable_multiple(self):
        th = Thresholds().without("time", "author")
        assert math.isinf(th.lambda_t)
        assert th.lambda_a == 1.0
        assert th.lambda_c == 18

    def test_unknown_dimension(self):
        with pytest.raises(ConfigurationError):
            Thresholds().without("flavour")

    def test_original_unchanged(self):
        th = Thresholds()
        th.without("author")
        assert th.lambda_a == 0.7
