"""Tests for repro.core.cliquebin — including the Figure 6c walk."""

import pytest

from repro.authors import CliqueCover, greedy_clique_cover
from repro.core import CliqueBin, Post, Thresholds, UniBin
from repro.errors import ConfigurationError, UnknownAuthorError


class TestPaperWalkthrough:
    """Figure 6c: cover {a1,a2,a3} + {a3,a4}; P1 stored once (vs 3 copies in
    NeighborBin); same output Z."""

    def test_admissions(self, paper_posts, paper_graph, paper_thresholds):
        algo = CliqueBin(paper_thresholds, paper_graph)
        decisions = [algo.offer(p) for p in paper_posts]
        assert decisions == [True, True, False, True, False]

    def test_insertion_count(self, paper_posts, paper_graph, paper_thresholds):
        # P1 → C0 only (1); P2 → C0 (1); P4 → C1 (1) = 3 copies total —
        # the memory saving over NeighborBin's 8 the paper highlights.
        algo = CliqueBin(paper_thresholds, paper_graph)
        algo.diversify(paper_posts)
        assert algo.stats.insertions == 3
        assert algo.stored_copies() == 3

    def test_comparison_count(self, paper_posts, paper_graph, paper_thresholds):
        # P1: 0; P2: 1 (P1 in C0); P3: 2 (scans C0: P2 then P1 covers);
        # P4: 0 (C1 empty); P5: 3 (C0: P2, P1 miss; C1: P4 covers).
        algo = CliqueBin(paper_thresholds, paper_graph)
        algo.diversify(paper_posts)
        assert algo.stats.comparisons == 6

    def test_paper_p6_p7_extension(self, paper_posts, paper_graph, paper_thresholds):
        """§4.3's P6/P7: P6 (a3) is stored in both clique bins. For P7 (a4,
        only in clique {a3,a4}) our implementation performs 2 comparisons
        (P4 and P6 in that clique's bin). The paper's prose claims 5
        comparisons including P1 and P2, which is inconsistent with its own
        Author2Cliques mapping — a4 is in no clique with a1 or a2, so those
        bins are never scanned."""
        algo = CliqueBin(paper_thresholds, paper_graph)
        algo.diversify(paper_posts)
        p6 = Post(post_id=6, author=3, text="", timestamp=5.0, fingerprint=0b11111 << 55)
        p7 = Post(post_id=7, author=4, text="", timestamp=6.0, fingerprint=0b1111 << 45)
        before_ins = algo.stats.insertions
        assert algo.offer(p6)
        assert algo.stats.insertions - before_ins == 2  # both cliques of a3
        before_cmp = algo.stats.comparisons
        assert algo.offer(p7)
        assert algo.stats.comparisons - before_cmp == 2

    def test_agrees_with_unibin(self, paper_posts, paper_graph, paper_thresholds):
        uni = UniBin(paper_thresholds, paper_graph)
        clique = CliqueBin(paper_thresholds, paper_graph)
        assert [uni.offer(p) for p in paper_posts] == [
            clique.offer(p) for p in paper_posts
        ]


class TestConfiguration:
    def test_requires_graph(self, paper_thresholds):
        with pytest.raises(ConfigurationError):
            CliqueBin(paper_thresholds, None)

    def test_rejects_disabled_author_dimension(self, paper_graph):
        with pytest.raises(ConfigurationError):
            CliqueBin(Thresholds(lambda_a=1.0), paper_graph)

    def test_injected_cover_used(self, paper_graph, paper_thresholds):
        cover = greedy_clique_cover(paper_graph)
        algo = CliqueBin(paper_thresholds, paper_graph, cover=cover)
        assert algo.cover is cover

    def test_unknown_author_rejected(self, paper_graph, paper_thresholds):
        algo = CliqueBin(paper_thresholds, paper_graph)
        with pytest.raises(UnknownAuthorError):
            algo.offer(Post(post_id=1, author=99, text="", timestamp=0.0, fingerprint=0))

    def test_isolated_author_self_coverage(self, paper_thresholds):
        """An author with no similar authors must still deduplicate their
        own posts (singleton clique)."""
        from repro.authors import AuthorGraph

        graph = AuthorGraph([1], [])
        algo = CliqueBin(paper_thresholds, graph)
        assert algo.offer(Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0))
        assert not algo.offer(Post(post_id=2, author=1, text="", timestamp=1.0, fingerprint=0))


class TestDoubleCounting:
    def test_candidate_in_two_scanned_cliques_compared_twice(self, paper_thresholds):
        """A post stored in two cliques that both contain the new post's
        author is compared once per bin — the paper's accounting."""
        from repro.authors import AuthorGraph

        # A 4-cycle: 1-2, 2-3, 3-4, 4-1 → greedy cover is four 2-cliques;
        # author 1 is in cliques {1,2} and {1,4}.
        graph = AuthorGraph([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4), (1, 4)])
        cover = CliqueCover(
            [frozenset({1, 2}), frozenset({2, 3}), frozenset({3, 4}), frozenset({1, 4})]
        )
        algo = CliqueBin(paper_thresholds, graph, cover=cover)
        # Post by author 1 lands in both of 1's cliques.
        algo.offer(
            Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0b1111 << 40)
        )
        before = algo.stats.comparisons
        # Next post by author 1 (content-distant: 8 bits apart) scans both
        # bins → the stored post is compared twice.
        assert algo.offer(
            Post(post_id=2, author=1, text="", timestamp=1.0, fingerprint=0b1111 << 50)
        )
        assert algo.stats.comparisons - before == 2


class TestEviction:
    def test_purge(self, paper_graph):
        th = Thresholds(lambda_c=3, lambda_t=10.0, lambda_a=0.7)
        algo = CliqueBin(th, paper_graph)
        algo.offer(Post(post_id=1, author=3, text="", timestamp=0.0, fingerprint=0))
        assert algo.stored_copies() == 2  # a3 is in both cliques
        algo.purge(now=100.0)
        assert algo.stored_copies() == 0
