"""Tests for repro.core.post."""

import dataclasses

import pytest

from repro.core import Post
from repro.simhash import simhash


class TestPost:
    def test_create_computes_fingerprint(self):
        post = Post.create(1, 7, "breaking news tonight", 12.5)
        assert post.fingerprint == simhash("breaking news tonight")

    def test_create_raw_mode(self):
        post = Post.create(1, 7, "Breaking News", 0.0, normalized=False)
        assert post.fingerprint == simhash("Breaking News", normalized=False)
        assert post.fingerprint != simhash("breaking news", normalized=False)

    def test_frozen(self):
        post = Post.create(1, 7, "x", 0.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            post.timestamp = 99.0

    def test_explicit_fingerprint(self):
        post = Post(post_id=1, author=2, text="t", timestamp=0.0, fingerprint=0xFF)
        assert post.fingerprint == 0xFF

    def test_fields(self):
        post = Post.create(3, 9, "hello", 42.0)
        assert (post.post_id, post.author, post.text, post.timestamp) == (
            3,
            9,
            "hello",
            42.0,
        )
