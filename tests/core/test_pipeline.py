"""Tests for repro.core.pipeline — the DiversifiedStream adapter."""

import pytest

from repro.core import DiversifiedStream, Post, Thresholds, UniBin
from repro.errors import ConfigurationError


class TestDiversifiedStream:
    def test_yields_only_admitted(self, paper_posts, paper_graph, paper_thresholds):
        stream = DiversifiedStream(
            UniBin(paper_thresholds, paper_graph), paper_posts
        )
        assert [p.post_id for p in stream] == [1, 2, 4]

    def test_callbacks_fire(self, paper_posts, paper_graph, paper_thresholds):
        admitted, pruned = [], []
        stream = DiversifiedStream(
            UniBin(paper_thresholds, paper_graph),
            paper_posts,
            on_admit=lambda p: admitted.append(p.post_id),
            on_prune=lambda p: pruned.append(p.post_id),
        )
        list(stream)
        assert admitted == [1, 2, 4]
        assert pruned == [3, 5]

    def test_live_statistics(self, paper_posts, paper_graph, paper_thresholds):
        stream = DiversifiedStream(
            UniBin(paper_thresholds, paper_graph), paper_posts
        )
        iterator = iter(stream)
        next(iterator)
        assert stream.processed == 1
        assert stream.admitted == 1
        list(iterator)
        assert stream.processed == 5
        assert stream.pruned == 2

    def test_lazy_consumption(self, paper_graph, paper_thresholds):
        """The adapter must pull posts one at a time (unbounded sources)."""

        def infinite():
            t = 0.0
            i = 0
            while True:
                yield Post(post_id=i, author=1, text="", timestamp=t, fingerprint=i << 8)
                i += 1
                t += 1.0

        stream = DiversifiedStream(
            UniBin(paper_thresholds, paper_graph), infinite()
        )
        iterator = iter(stream)
        first = [next(iterator) for _ in range(5)]
        assert len(first) == 5

    def test_purge_every_bounds_memory(self, paper_graph):
        thresholds = Thresholds(lambda_c=3, lambda_t=5.0, lambda_a=0.7)
        diversifier = UniBin(thresholds, paper_graph)
        posts = [
            Post(post_id=i, author=1, text="", timestamp=i * 10.0, fingerprint=i << 8)
            for i in range(50)
        ]
        list(DiversifiedStream(diversifier, posts, purge_every=1))
        assert diversifier.stored_copies() == 1

    def test_purge_disabled(self, paper_graph, paper_thresholds):
        diversifier = UniBin(paper_thresholds, paper_graph)
        stream = DiversifiedStream(diversifier, [], purge_every=0)
        assert list(stream) == []

    def test_negative_purge_rejected(self, paper_graph, paper_thresholds):
        with pytest.raises(ConfigurationError):
            DiversifiedStream(
                UniBin(paper_thresholds, paper_graph), [], purge_every=-1
            )
