"""Tests for repro.core.stats."""

import pytest

from repro.core import RunStats


class TestCounters:
    def test_initial_state(self):
        stats = RunStats()
        assert stats.posts_processed == 0
        assert stats.peak_stored_copies == 0
        assert stats.retention_ratio == 0.0

    def test_record_insertions_tracks_peak(self):
        stats = RunStats()
        stats.record_insertions(5)
        stats.record_evictions(3)
        stats.record_insertions(2)
        assert stats.stored_copies == 4
        assert stats.peak_stored_copies == 5
        stats.record_insertions(10)
        assert stats.peak_stored_copies == 14

    def test_posts_rejected(self):
        stats = RunStats(posts_processed=10, posts_admitted=7)
        assert stats.posts_rejected == 3

    def test_retention_ratio(self):
        stats = RunStats(posts_processed=10, posts_admitted=9)
        assert stats.retention_ratio == pytest.approx(0.9)


class TestMerge:
    def test_counters_sum(self):
        a = RunStats(posts_processed=5, posts_admitted=4, comparisons=10, insertions=6)
        b = RunStats(posts_processed=3, posts_admitted=3, comparisons=2, insertions=3)
        a.merge(b)
        assert a.posts_processed == 8
        assert a.posts_admitted == 7
        assert a.comparisons == 12
        assert a.insertions == 9

    def test_peaks_add(self):
        a = RunStats()
        a.record_insertions(4)
        b = RunStats()
        b.record_insertions(6)
        a.merge(b)
        assert a.peak_stored_copies == 10
        assert a.stored_copies == 10


class TestSnapshot:
    def test_keys_and_values(self):
        stats = RunStats(posts_processed=4, posts_admitted=2, comparisons=7)
        snap = stats.snapshot()
        assert snap["posts_processed"] == 4
        assert snap["posts_rejected"] == 2
        assert snap["retention_ratio"] == pytest.approx(0.5)
        assert snap["comparisons"] == 7
        assert "peak_stored_copies" in snap
