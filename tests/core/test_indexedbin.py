"""Tests for repro.core.indexedbin — index-accelerated UniBin."""

import random

import pytest

from repro.authors import AuthorGraph
from repro.core import IndexedUniBin, Post, Thresholds, UniBin


def random_stream(n, n_authors, seed, *, dup_rate=0.5, flip_bits=4):
    """Random posts where ~dup_rate echo an earlier fingerprint closely."""
    rng = random.Random(seed)
    posts = []
    t = 0.0
    for i in range(n):
        t += rng.expovariate(0.2)
        fp = rng.getrandbits(64)
        if posts and rng.random() < dup_rate:
            fp = posts[rng.randrange(len(posts))].fingerprint
            for _ in range(rng.randrange(flip_bits + 1)):
                fp ^= 1 << rng.randrange(64)
        posts.append(
            Post(post_id=i, author=rng.randrange(n_authors), text="", timestamp=t, fingerprint=fp)
        )
    return posts


@pytest.fixture()
def small_lambda_c() -> Thresholds:
    return Thresholds(lambda_c=4, lambda_t=60.0, lambda_a=0.7)


class TestAgreementWithUniBin:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_identical_output(self, paper_graph, small_lambda_c, seed):
        posts = random_stream(200, 4, seed)
        posts = [
            Post(p.post_id, (p.author % 4) + 1, p.text, p.timestamp, p.fingerprint)
            for p in posts
        ]
        uni = UniBin(small_lambda_c, paper_graph)
        indexed = IndexedUniBin(small_lambda_c, paper_graph)
        assert [uni.offer(p) for p in posts] == [indexed.offer(p) for p in posts]

    def test_paper_walkthrough(self, paper_posts, paper_graph, paper_thresholds):
        indexed = IndexedUniBin(paper_thresholds, paper_graph)
        assert [indexed.offer(p) for p in paper_posts] == [
            True,
            True,
            False,
            True,
            False,
        ]


class TestIndexAcceleration:
    def test_fewer_candidates_than_linear_scan(self, paper_graph):
        """At a small radius the index must verify far fewer candidates
        than UniBin's full-window scan."""
        thresholds = Thresholds(lambda_c=3, lambda_t=1e6, lambda_a=0.7)
        posts = random_stream(400, 4, seed=9, dup_rate=0.2, flip_bits=2)
        posts = [
            Post(p.post_id, (p.author % 4) + 1, p.text, p.timestamp, p.fingerprint)
            for p in posts
        ]
        uni = UniBin(thresholds, paper_graph)
        indexed = IndexedUniBin(thresholds, paper_graph)
        for p in posts:
            uni.offer(p)
            indexed.offer(p)
        assert indexed.stats.comparisons < uni.stats.comparisons / 5

    def test_window_expiry_removes_from_index(self, paper_graph):
        thresholds = Thresholds(lambda_c=4, lambda_t=10.0, lambda_a=0.7)
        indexed = IndexedUniBin(thresholds, paper_graph)
        indexed.offer(Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0))
        # Outside the window: identical content must be re-admitted.
        assert indexed.offer(
            Post(post_id=2, author=1, text="", timestamp=100.0, fingerprint=0)
        )
        assert indexed.stored_copies() == 1
        assert indexed.stats.evictions == 1

    def test_purge(self, paper_graph, small_lambda_c):
        indexed = IndexedUniBin(small_lambda_c, paper_graph)
        indexed.offer(Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0))
        indexed.purge(now=1e9)
        assert indexed.stored_copies() == 0

    def test_author_dimension_still_enforced(self, paper_graph, small_lambda_c):
        indexed = IndexedUniBin(small_lambda_c, paper_graph)
        indexed.offer(Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0))
        # Same content, dissimilar author (a4 not adjacent to a1) → admitted.
        assert indexed.offer(
            Post(post_id=2, author=4, text="", timestamp=1.0, fingerprint=0)
        )
