"""Tests for repro.core.advisor — the Table-4 use-case rules."""

import pytest

from repro.core import WorkloadProfile, recommend, table4_rows
from repro.errors import ConfigurationError


def profile(**kwargs) -> WorkloadProfile:
    defaults = {
        "lambda_t": 1800.0,
        "lambda_a": 0.7,
        "posts_per_window": 5000.0,
        "ram_constrained": False,
    }
    defaults.update(kwargs)
    return WorkloadProfile(**defaults)


class TestUniBinRules:
    def test_very_small_lambda_t(self):
        rec = recommend(profile(lambda_t=60.0))
        assert rec.algorithm == "unibin"
        assert any("lambda_t" in r for r in rec.reasons)

    def test_low_throughput(self):
        rec = recommend(profile(posts_per_window=50.0))
        assert rec.algorithm == "unibin"
        assert any("throughput" in r for r in rec.reasons)

    def test_large_lambda_a(self):
        rec = recommend(profile(lambda_a=0.85))
        assert rec.algorithm == "unibin"
        assert any("lambda_a" in r for r in rec.reasons)

    def test_ram_constrained(self):
        rec = recommend(profile(ram_constrained=True))
        assert rec.algorithm == "unibin"
        assert any("RAM" in r for r in rec.reasons)

    def test_multiple_reasons_accumulate(self):
        rec = recommend(profile(lambda_t=30.0, posts_per_window=10.0))
        assert rec.algorithm == "unibin"
        assert len(rec.reasons) == 2

    def test_example_use_case(self):
        assert "RSS" in recommend(profile(ram_constrained=True)).example_use_case


class TestNeighborBinRule:
    def test_large_lambda_t_high_throughput(self):
        rec = recommend(profile(lambda_t=6 * 3600.0))
        assert rec.algorithm == "neighborbin"
        assert rec.example_use_case == "Twitch"


class TestCliqueBinRule:
    def test_moderate_lambda_t_high_throughput(self):
        rec = recommend(profile(lambda_t=480.0))
        assert rec.algorithm == "cliquebin"
        assert rec.example_use_case == "Twitter"


class TestValidation:
    def test_bad_lambda_t(self):
        with pytest.raises(ConfigurationError):
            profile(lambda_t=-1.0)

    def test_bad_lambda_a(self):
        with pytest.raises(ConfigurationError):
            profile(lambda_a=1.5)

    def test_bad_throughput(self):
        with pytest.raises(ConfigurationError):
            profile(posts_per_window=-5.0)


class TestTable4Rows:
    def test_three_rows_matching_paper(self):
        rows = table4_rows()
        assert [r["algorithm"] for r in rows] == ["unibin", "neighborbin", "cliquebin"]
        assert rows[0]["example_use_case"] == "News RSS Feed, Google Scholar"
        assert rows[1]["example_use_case"] == "Twitch"
        assert rows[2]["example_use_case"] == "Twitter"
