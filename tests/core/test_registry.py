"""Tests for repro.core.registry."""

import pytest

from repro.core import (
    ALGORITHM_NAMES,
    CliqueBin,
    NeighborBin,
    Thresholds,
    UniBin,
    describe_algorithms,
    make_diversifier,
)
from repro.errors import UnknownAlgorithmError


class TestMakeDiversifier:
    def test_names(self):
        assert set(ALGORITHM_NAMES) == {"unibin", "neighborbin", "cliquebin"}

    @pytest.mark.parametrize(
        "name, cls", [("unibin", UniBin), ("neighborbin", NeighborBin), ("cliquebin", CliqueBin)]
    )
    def test_constructs_right_class(self, name, cls, paper_graph):
        algo = make_diversifier(name, Thresholds(), paper_graph)
        assert isinstance(algo, cls)
        assert algo.name == name

    def test_unknown_name(self, paper_graph):
        with pytest.raises(UnknownAlgorithmError):
            make_diversifier("turbobin", Thresholds(), paper_graph)

    def test_kwargs_forwarded(self, paper_graph):
        algo = make_diversifier("unibin", Thresholds(), paper_graph, newest_first=False)
        assert algo.newest_first is False


class TestTable3:
    def test_three_profiles(self):
        profiles = describe_algorithms()
        assert [p.name for p in profiles] == ["unibin", "neighborbin", "cliquebin"]

    def test_qualitative_levels_match_paper(self):
        by_name = {p.name: p for p in describe_algorithms()}
        assert by_name["unibin"].ram == "Low"
        assert by_name["unibin"].comparisons == "High"
        assert by_name["neighborbin"].ram == "High"
        assert by_name["neighborbin"].comparisons == "Low"
        assert by_name["cliquebin"].ram == "Moderate"
        assert by_name["cliquebin"].insertions == "Moderate"
