"""Tests for repro.core.coverage — Definition 1."""

import pytest

from repro.authors import AuthorGraph
from repro.core import CoverageChecker, Post, Thresholds


def make_post(post_id, author, t, fingerprint):
    return Post(post_id=post_id, author=author, text="", timestamp=t, fingerprint=fingerprint)


@pytest.fixture()
def checker(paper_graph):
    return CoverageChecker(Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=0.7), paper_graph)


class TestDimensions:
    def test_all_three_within(self, checker):
        p = make_post(1, 1, 0.0, 0b000)
        q = make_post(2, 2, 50.0, 0b001)
        assert checker.covers(p, q)

    def test_content_blocks(self, checker):
        p = make_post(1, 1, 0.0, 0)
        q = make_post(2, 2, 50.0, 0b11111)  # 5 bits > lambda_c = 3
        assert not checker.covers(p, q)

    def test_time_blocks(self, checker):
        p = make_post(1, 1, 0.0, 0)
        q = make_post(2, 2, 101.0, 0)
        assert not checker.covers(p, q)

    def test_author_blocks(self, checker):
        p = make_post(1, 1, 0.0, 0)
        q = make_post(2, 4, 50.0, 0)  # a1 and a4 not adjacent
        assert not checker.covers(p, q)

    def test_same_author_always_author_similar(self, checker):
        p = make_post(1, 4, 0.0, 0)
        q = make_post(2, 4, 50.0, 0b1)
        assert checker.covers(p, q)

    def test_boundary_values_inclusive(self, checker):
        p = make_post(1, 1, 0.0, 0)
        q = make_post(2, 2, 100.0, 0b111)  # exactly lambda_t and lambda_c
        assert checker.covers(p, q)


class TestSymmetry:
    def test_covers_symmetric(self, checker):
        p = make_post(1, 1, 0.0, 0b01)
        q = make_post(2, 3, 99.0, 0b10)
        assert checker.covers(p, q) == checker.covers(q, p)

    def test_authors_similar_symmetric(self, checker):
        assert checker.authors_similar(1, 3) == checker.authors_similar(3, 1)


class TestAuthorFreeMode:
    def test_graph_none_requires_disabled_author(self):
        with pytest.raises(ValueError):
            CoverageChecker(Thresholds(lambda_a=0.5), None)

    def test_disabled_author_dimension(self):
        checker = CoverageChecker(
            Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=1.0), None
        )
        p = make_post(1, 1, 0.0, 0)
        q = make_post(2, 999, 50.0, 0b1)
        assert checker.covers(p, q)

    def test_lambda_a_one_with_graph_still_author_free(self, paper_graph):
        checker = CoverageChecker(
            Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=1.0), paper_graph
        )
        assert checker.authors_similar(1, 4)  # not adjacent, but dimension off


class TestKnownAuthorSimilar:
    def test_skips_author_check(self, checker):
        p = make_post(1, 1, 0.0, 0)
        q = make_post(2, 4, 50.0, 0)  # author-dissimilar
        assert not checker.covers(p, q)
        assert checker.covers_known_author_similar(p, q)

    def test_still_checks_time_and_content(self, checker):
        p = make_post(1, 1, 0.0, 0)
        assert not checker.covers_known_author_similar(p, make_post(2, 1, 200.0, 0))
        assert not checker.covers_known_author_similar(p, make_post(3, 1, 1.0, 0b1111))
