"""Tests for repro.eval.timeseries."""

import pytest

from repro.core import Post, Thresholds, UniBin
from repro.eval import windowed_timeseries


def make_posts(times_and_fps):
    return [
        Post(post_id=i, author=1, text="", timestamp=t, fingerprint=fp)
        for i, (t, fp) in enumerate(times_and_fps)
    ]


@pytest.fixture()
def diversifier(paper_graph):
    return UniBin(Thresholds(lambda_c=3, lambda_t=50.0, lambda_a=0.7), paper_graph)


class TestWindowedTimeseries:
    def test_empty_stream(self, diversifier):
        assert windowed_timeseries(diversifier, []) == []

    def test_bad_window(self, diversifier):
        with pytest.raises(ValueError):
            windowed_timeseries(diversifier, [], window=0.0)

    def test_window_partitioning(self, diversifier):
        posts = make_posts([(0.0, 0), (10.0, 1 << 10), (110.0, 1 << 20), (120.0, 1 << 30)])
        rows = windowed_timeseries(diversifier, posts, window=100.0)
        assert len(rows) == 2
        assert rows[0].arrivals == 2
        assert rows[1].arrivals == 2

    def test_arrivals_sum_to_stream(self, diversifier):
        posts = make_posts([(float(i * 7), i << 6) for i in range(30)])
        rows = windowed_timeseries(diversifier, posts, window=31.0)
        assert sum(r.arrivals for r in rows) == 30
        assert sum(r.admitted for r in rows) == diversifier.stats.posts_admitted

    def test_prune_rate(self, diversifier):
        # Two identical posts in one window: second pruned.
        posts = make_posts([(0.0, 0), (1.0, 0)])
        rows = windowed_timeseries(diversifier, posts, window=100.0)
        assert rows[0].admitted == 1
        assert rows[0].prune_rate == pytest.approx(0.5)

    def test_empty_gap_windows_emitted(self, diversifier):
        posts = make_posts([(0.0, 0), (350.0, 1 << 12)])
        rows = windowed_timeseries(diversifier, posts, window=100.0)
        assert len(rows) == 4
        assert [r.arrivals for r in rows] == [1, 0, 0, 1]

    def test_stored_copies_is_live_footprint(self, paper_graph):
        diversifier = UniBin(
            Thresholds(lambda_c=3, lambda_t=10.0, lambda_a=0.7), paper_graph
        )
        posts = make_posts([(float(i * 100), i << 6) for i in range(5)])
        rows = windowed_timeseries(diversifier, posts, window=100.0)
        # Window GC ran at every boundary → at most one live post per row.
        assert all(r.stored_copies <= 1 for r in rows)

    def test_as_dict_keys(self, diversifier):
        posts = make_posts([(0.0, 0)])
        row = windowed_timeseries(diversifier, posts, window=10.0)[0].as_dict()
        assert {"arrivals", "admitted", "prune_rate", "stored_copies"} <= set(row)
