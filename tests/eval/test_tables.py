"""Tests for repro.eval.tables — ASCII rendering."""

from repro.eval import render_series, render_table


class TestRenderTable:
    def test_empty(self):
        assert "(no rows)" in render_table([])
        assert render_table([], title="T").startswith("T")

    def test_header_and_rows(self):
        out = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_title(self):
        out = render_table([{"a": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_order_fixed(self):
        out = render_table([{"z": 1, "a": 2}], columns=["a", "z"])
        assert out.splitlines()[0].split() == ["a", "z"]

    def test_missing_column_blank(self):
        out = render_table([{"a": 1}], columns=["a", "b"])
        assert "b" in out.splitlines()[0]

    def test_float_formatting(self):
        out = render_table([{"v": 0.12345}])
        assert "0.1234" in out or "0.1235" in out

    def test_large_number_grouping(self):
        out = render_table([{"v": 1234567}])
        assert "1,234,567" in out

    def test_bool_rendering(self):
        out = render_table([{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out


class TestRenderSeries:
    def test_one_row_per_x(self):
        out = render_series(
            "Fig", "x", [1, 2], {"unibin": [10, 20], "cliquebin": [5, 8]}
        )
        lines = out.splitlines()
        assert lines[0] == "Fig"
        assert len(lines) == 5  # title + header + rule + 2 rows
        assert "unibin" in lines[1] and "cliquebin" in lines[1]
