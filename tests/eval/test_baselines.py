"""Tests for repro.baselines — the §7 comparison models."""

import pytest

from repro.baselines import (
    LeaderClusterSummarizer,
    MaxMinKDiversity,
    compare_baselines,
    content_distance,
)
from repro.core import Post, Thresholds
from repro.errors import ConfigurationError


def make_post(post_id, t, fingerprint, author=1):
    return Post(post_id=post_id, author=author, text="", timestamp=t, fingerprint=fingerprint)


class TestContentDistance:
    def test_range(self):
        assert content_distance(make_post(1, 0, 0), make_post(2, 0, 2**64 - 1)) == 1.0
        assert content_distance(make_post(1, 0, 5), make_post(2, 0, 5)) == 0.0


class TestMaxMinKDiversity:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MaxMinKDiversity(k=0, lambda_t=10.0)
        with pytest.raises(ConfigurationError):
            MaxMinKDiversity(k=3, lambda_t=0.0)

    def test_fills_to_k(self):
        algo = MaxMinKDiversity(k=3, lambda_t=100.0)
        for i in range(3):
            assert algo.offer(make_post(i, float(i), 1 << (i * 10)))
        assert len(algo.selection) == 3

    def test_swap_improves_maxmin(self):
        algo = MaxMinKDiversity(k=2, lambda_t=1000.0)
        algo.offer(make_post(1, 0.0, 0b0))
        algo.offer(make_post(2, 1.0, 0b1))  # selection score = 1/64
        # A far-away post should replace one of the two close picks.
        assert algo.offer(make_post(3, 2.0, (1 << 40) - 1))
        ids = {p.post_id for p in algo.selection}
        assert 3 in ids and len(ids) == 2

    def test_rejects_non_improving(self):
        algo = MaxMinKDiversity(k=2, lambda_t=1000.0)
        algo.offer(make_post(1, 0.0, 0))
        algo.offer(make_post(2, 1.0, (1 << 32) - 1))  # score 0.5
        # A post identical to post 1 cannot improve the selection.
        assert not algo.offer(make_post(3, 2.0, 0))

    def test_window_expiry(self):
        algo = MaxMinKDiversity(k=2, lambda_t=10.0)
        algo.offer(make_post(1, 0.0, 0))
        algo.offer(make_post(2, 100.0, 1 << 20))
        ids = {p.post_id for p in algo.selection}
        assert ids == {2}

    def test_ever_selected_accumulates(self):
        algo = MaxMinKDiversity(k=2, lambda_t=1000.0)
        algo.offer(make_post(1, 0.0, 0))
        algo.offer(make_post(2, 1.0, 0b1))
        # Post 3 is far from both → swapped in; post 2 drops out of the
        # current selection but stays in the ever-selected history.
        algo.offer(make_post(3, 2.0, (1 << 50) - 1))
        assert algo.ever_selected == {1, 2, 3}
        assert len(algo.selection) == 2

    def test_k1_selection_is_sticky(self):
        """With k = 1 the MaxMin score is vacuously 1.0, so the first post
        is never displaced — a degenerate corner of the budgeted model."""
        algo = MaxMinKDiversity(k=1, lambda_t=1000.0)
        assert algo.offer(make_post(1, 0.0, 0))
        assert not algo.offer(make_post(2, 1.0, (1 << 50) - 1))
        assert algo.ever_selected == {1}


class TestMaxMinMatchesBruteForce:
    """The O(k)-amortised implementation must reproduce the naive
    evaluate-every-swap algorithm decision for decision."""

    @staticmethod
    def brute_force(posts, k, lambda_t):
        selection: list[Post] = []
        ever: set[int] = set()

        def dist(a, b):
            return (a.fingerprint ^ b.fingerprint).bit_count() / 64.0

        def score(s):
            if len(s) < 2:
                return 1.0
            return min(
                dist(a, b) for i, a in enumerate(s) for b in s[i + 1 :]
            )

        for post in posts:
            cutoff = post.timestamp - lambda_t
            selection = [q for q in selection if q.timestamp >= cutoff]
            if len(selection) < k:
                selection.append(post)
                ever.add(post.post_id)
                continue
            best, best_index = score(selection), -1
            for i in range(len(selection)):
                candidate = selection[:i] + selection[i + 1 :] + [post]
                if score(candidate) > best:
                    best, best_index = score(candidate), i
            if best_index >= 0:
                selection[best_index] = post
                ever.add(post.post_id)
        return ever, [q.post_id for q in selection]

    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_equivalence(self, k):
        import random

        rng = random.Random(41)
        posts = []
        t = 0.0
        for i in range(150):
            t += rng.expovariate(0.5)
            fp = rng.getrandbits(64)
            if posts and rng.random() < 0.4:
                fp = posts[rng.randrange(len(posts))].fingerprint
                for _ in range(rng.randrange(5)):
                    fp ^= 1 << rng.randrange(64)
            posts.append(make_post(i, t, fp))
        expected_ever, expected_selection = self.brute_force(posts, k, 50.0)
        algo = MaxMinKDiversity(k=k, lambda_t=50.0)
        for post in posts:
            algo.offer(post)
        assert algo.ever_selected == expected_ever
        assert [q.post_id for q in algo.selection] == expected_selection


class TestLeaderClustering:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LeaderClusterSummarizer(lambda_c=65, expiry=10.0)
        with pytest.raises(ConfigurationError):
            LeaderClusterSummarizer(lambda_c=3, expiry=0.0)

    def test_near_post_joins_cluster(self):
        algo = LeaderClusterSummarizer(lambda_c=3, expiry=100.0)
        assert algo.offer(make_post(1, 0.0, 0))
        assert not algo.offer(make_post(2, 1.0, 0b1))
        assert len(algo) == 1
        assert algo.cluster_sizes() == [2]

    def test_far_post_founds_cluster(self):
        algo = LeaderClusterSummarizer(lambda_c=3, expiry=100.0)
        algo.offer(make_post(1, 0.0, 0))
        assert algo.offer(make_post(2, 1.0, (1 << 30) - 1))
        assert len(algo) == 2

    def test_collapses_across_authors(self):
        """The semantic gap to SPSD: author identity is ignored."""
        algo = LeaderClusterSummarizer(lambda_c=3, expiry=100.0)
        algo.offer(make_post(1, 0.0, 0, author=1))
        assert not algo.offer(make_post(2, 1.0, 0, author=999))

    def test_cluster_expiry(self):
        algo = LeaderClusterSummarizer(lambda_c=3, expiry=10.0)
        algo.offer(make_post(1, 0.0, 0))
        assert algo.offer(make_post(2, 100.0, 0))  # stale cluster dropped
        assert len(algo) == 1


class TestCompareBaselines:
    def test_spsd_has_zero_violations(self, dataset):
        thresholds = Thresholds()
        outcomes = compare_baselines(
            dataset.stream, dataset.graph(thresholds.lambda_a), thresholds
        )
        by_method = {o.method: o for o in outcomes}
        assert by_method["spsd_unibin"].coverage_violations == 0
        # The baselines break the guarantee (the paper's point).
        assert by_method["maxmin_top_k"].coverage_violations > 0
        assert by_method["leader_clustering"].coverage_violations > 0

    def test_leader_over_prunes_diverse_content(self, dataset):
        thresholds = Thresholds()
        outcomes = compare_baselines(
            dataset.stream, dataset.graph(thresholds.lambda_a), thresholds
        )
        by_method = {o.method: o for o in outcomes}
        assert (
            by_method["leader_clustering"].collateral_prunes
            > by_method["spsd_unibin"].collateral_prunes
        )

    def test_counts_are_consistent(self, dataset):
        thresholds = Thresholds()
        for outcome in compare_baselines(
            dataset.stream, dataset.graph(thresholds.lambda_a), thresholds
        ):
            assert outcome.shown + outcome.hidden == len(dataset.posts)
            assert outcome.good_prunes + outcome.collateral_prunes == outcome.hidden
