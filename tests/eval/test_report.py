"""Tests for repro.eval.report and the CLI report subcommand."""

import pytest

from repro.cli import main
from repro.eval import generate_report


class TestGenerateReport:
    def test_selected_experiments_only(self):
        markdown = generate_report(scale="small", experiment_ids=["table3", "table4"])
        assert "# Evaluation report" in markdown
        assert "## table3" in markdown
        assert "## table4" in markdown
        assert "## figure11" not in markdown

    def test_markdown_table_structure(self):
        markdown = generate_report(scale="small", experiment_ids=["table4"])
        lines = markdown.splitlines()
        header = next(l for l in lines if l.startswith("| conditions"))
        separator = lines[lines.index(header) + 1]
        assert separator.startswith("|---")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="figure99"):
            generate_report(experiment_ids=["figure99"])

    def test_notes_become_blockquotes(self):
        markdown = generate_report(
            scale="small", experiment_ids=["ablation_simhash_speed"]
        )
        assert "\n> " in markdown


class TestReportCommand:
    def test_stdout(self, capsys):
        assert main(["report", "--scale", "small", "--only", "table3"]) == 0
        out = capsys.readouterr().out
        assert "## table3" in out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        code = main(
            ["report", "--scale", "small", "--only", "table4", "--output", str(target)]
        )
        assert code == 0
        assert "## table4" in target.read_text()
        assert "report written" in capsys.readouterr().out
