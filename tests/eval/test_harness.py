"""Tests for repro.eval.harness."""

import pytest

from repro.core import Thresholds, UniBin
from repro.eval import (
    compare_algorithms,
    run_algorithm,
    run_diversifier,
    run_multiuser_by_name,
)
from repro.multiuser import SubscriptionTable


class TestRunDiversifier:
    def test_measures_counters(self, paper_posts, paper_graph, paper_thresholds):
        run = run_diversifier(UniBin(paper_thresholds, paper_graph), paper_posts)
        assert run.algorithm == "unibin"
        assert run.posts_processed == 5
        assert run.posts_admitted == 3
        assert run.admitted_ids == frozenset({1, 2, 4})
        assert run.wall_time >= 0.0
        assert run.comparisons == 6

    def test_purge_every_applied(self, paper_graph):
        th = Thresholds(lambda_c=3, lambda_t=1.0, lambda_a=0.7)
        from repro.core import Post

        posts = [
            Post(post_id=i, author=1, text="", timestamp=i * 10.0, fingerprint=i << 6)
            for i in range(10)
        ]
        algo = UniBin(th, paper_graph)
        run_diversifier(algo, posts, purge_every=1)
        # With per-post purging everything but the newest post is evicted.
        assert algo.stored_copies() == 1


class TestRunAlgorithm:
    @pytest.mark.parametrize("name", ["unibin", "neighborbin", "cliquebin"])
    def test_all_algorithms(self, name, paper_posts, paper_graph, paper_thresholds):
        run = run_algorithm(name, paper_thresholds, paper_graph, paper_posts)
        assert run.algorithm == name
        assert run.admitted_ids == frozenset({1, 2, 4})

    def test_cover_injected(self, paper_posts, paper_graph, paper_thresholds):
        from repro.authors import greedy_clique_cover

        cover = greedy_clique_cover(paper_graph)
        run = run_algorithm(
            "cliquebin", paper_thresholds, paper_graph, paper_posts, cover=cover
        )
        assert run.posts_admitted == 3


class TestCompareAlgorithms:
    def test_all_three_same_output(self, paper_posts, paper_graph, paper_thresholds):
        runs = compare_algorithms(paper_thresholds, paper_graph, paper_posts)
        assert [r.algorithm for r in runs] == ["unibin", "neighborbin", "cliquebin"]
        assert runs[0].admitted_ids == runs[1].admitted_ids == runs[2].admitted_ids


class TestRunMultiuser:
    def test_deliveries_counted(self, paper_posts, paper_graph, paper_thresholds):
        subs = SubscriptionTable({100: [1, 2, 3, 4], 200: [1, 2]})
        run = run_multiuser_by_name(
            "s_unibin", paper_thresholds, paper_graph, subs, paper_posts
        )
        assert run.algorithm == "s_unibin"
        assert run.posts_processed == 5
        # user 100 sees Z = {1,2,4}; user 200's stream is posts 1,2 → both
        # admitted (different graph, no coverage between them? P1/P2 are
        # content-distant) → 3 + 2 = 5 deliveries.
        assert run.posts_admitted == 5
        assert run.peak_stored_copies > 0
