"""Tests for repro.service — latency recording and queueing simulation."""

import pytest

from repro.core import Post, Thresholds, UniBin, make_diversifier
from repro.errors import ConfigurationError
from repro.multiuser import SubscriptionTable, make_multiuser
from repro.service import (
    DiversificationService,
    LatencyRecorder,
    capacity_sweep,
    simulate_queueing,
)


class TestLatencyRecorder:
    def test_exact_statistics(self):
        recorder = LatencyRecorder()
        for v in (1.0, 2.0, 3.0):
            recorder.record(v)
        assert recorder.count == 3
        assert recorder.mean == pytest.approx(2.0)
        assert recorder.max == 3.0

    def test_percentiles_on_small_samples(self):
        recorder = LatencyRecorder()
        for v in range(1, 101):
            recorder.record(float(v))
        assert recorder.percentile(0) == 1.0
        assert recorder.percentile(100) == 100.0
        assert 45.0 <= recorder.percentile(50) <= 55.0

    def test_reservoir_bounded(self):
        recorder = LatencyRecorder(capacity=10)
        for v in range(1000):
            recorder.record(float(v))
        assert recorder.count == 1000
        assert len(recorder._samples) == 10

    def test_empty(self):
        recorder = LatencyRecorder()
        assert recorder.mean == 0.0
        assert recorder.percentile(50) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyRecorder(capacity=0)
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(101)

    def test_snapshot_keys(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        snap = recorder.snapshot()
        assert snap["decisions"] == 1
        assert snap["mean_us"] == pytest.approx(1000.0)


class TestSimulateQueueing:
    def test_empty(self):
        report = simulate_queueing([], [])
        assert report.posts == 0
        assert report.sustainable

    def test_underloaded(self):
        # One post per second, 0.1 s of work each → utilisation 0.1.
        arrivals = [float(i) for i in range(10)]
        services = [0.1] * 10
        report = simulate_queueing(arrivals, services)
        assert report.utilisation == pytest.approx(0.1, rel=0.2)
        assert report.sustainable
        assert report.max_delay == pytest.approx(0.1)

    def test_overloaded_backlog_grows(self):
        arrivals = [float(i) for i in range(10)]
        services = [2.0] * 10
        report = simulate_queueing(arrivals, services)
        assert not report.sustainable
        # FIFO backlog: last post waits ~(2-1)*9 + 2 seconds.
        assert report.max_delay == pytest.approx(11.0)

    def test_speedup_compresses_arrivals(self):
        arrivals = [float(i) for i in range(10)]
        services = [0.5] * 10
        ok = simulate_queueing(arrivals, services, speedup=1.0)
        overloaded = simulate_queueing(arrivals, services, speedup=10.0)
        assert ok.sustainable
        assert not overloaded.sustainable

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_queueing([1.0], [])
        with pytest.raises(ValueError):
            simulate_queueing([1.0], [0.1], speedup=0.0)


class TestDiversificationService:
    def test_single_user_ingest(self, paper_posts, paper_graph, paper_thresholds):
        service = DiversificationService(UniBin(paper_thresholds, paper_graph))
        verdicts = [service.ingest(p) for p in paper_posts]
        assert verdicts == [True, True, False, True, False]
        assert service.latency.count == 5
        assert not service.is_multiuser

    def test_multiuser_ingest(self, paper_posts, paper_graph, paper_thresholds):
        subscriptions = SubscriptionTable({100: [1, 2, 3, 4]})
        engine = make_multiuser(
            "s_unibin", paper_thresholds, paper_graph, subscriptions
        )
        service = DiversificationService(engine)
        receivers = [service.ingest(p) for p in paper_posts]
        assert receivers[0] == frozenset({100})
        assert receivers[2] == frozenset()
        assert service.is_multiuser

    def test_replay_reports(self, paper_posts, paper_graph, paper_thresholds):
        service = DiversificationService(UniBin(paper_thresholds, paper_graph))
        reports = service.replay(paper_posts, speedups=(1.0, 100.0))
        assert [r.speedup for r in reports] == [1.0, 100.0]
        assert reports[0].posts == 5
        # A 5-post stream in real time is trivially sustainable.
        assert reports[0].sustainable

    def test_sustainable_speedup_positive(self, paper_posts, paper_graph, paper_thresholds):
        service = DiversificationService(UniBin(paper_thresholds, paper_graph))
        service.replay(paper_posts)
        assert service.sustainable_speedup() > 1.0
        assert service.throughput_posts_per_second() > 0

    def test_purge_every_validation(self, paper_graph, paper_thresholds):
        with pytest.raises(ConfigurationError):
            DiversificationService(
                UniBin(paper_thresholds, paper_graph), purge_every=0
            )


class TestCapacitySweep:
    def test_rows_per_algorithm(self, dataset):
        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        posts = dataset.posts[:300]
        rows = capacity_sweep(
            lambda name: make_diversifier(name, thresholds, graph),
            posts,
            algorithms=("unibin", "cliquebin"),
        )
        assert [r["algorithm"] for r in rows] == ["unibin", "cliquebin"]
        for row in rows:
            assert row["decisions"] == 300
            assert row["throughput_posts_s"] > 0
            assert row["sustainable_speedup"] > 1
