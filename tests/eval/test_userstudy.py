"""Tests for repro.eval.userstudy — the simulated §3 study."""

import pytest

from repro.eval import (
    cosine_crossover,
    cosine_curve,
    crossover,
    example_pairs,
    generate_labeled_pairs,
    precision_recall_curve,
)

PAIRS_PER_DISTANCE = 8  # keep the test fast; shape checks only


@pytest.fixture(scope="module")
def pairs():
    return generate_labeled_pairs(
        pairs_per_distance=PAIRS_PER_DISTANCE, distance_range=(3, 22), seed=101
    )


class TestPairGeneration:
    def test_buckets_filled(self, pairs):
        from collections import Counter

        counts = Counter(p.raw_distance for p in pairs)
        assert set(counts) <= set(range(3, 23))
        assert all(c <= PAIRS_PER_DISTANCE for c in counts.values())
        # The generator should fill the great majority of buckets.
        assert len(pairs) >= 0.8 * PAIRS_PER_DISTANCE * 20

    def test_both_labels_present(self, pairs):
        labels = {p.redundant for p in pairs}
        assert labels == {True, False}

    def test_distances_recorded_consistently(self, pairs):
        from repro.simhash import hamming, simhash

        sample = pairs[:: max(1, len(pairs) // 10)]
        for p in sample:
            assert p.raw_distance == hamming(
                simhash(p.text_a, normalized=False),
                simhash(p.text_b, normalized=False),
            )
            assert p.normalized_distance == hamming(
                simhash(p.text_a), simhash(p.text_b)
            )

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            generate_labeled_pairs(distance_range=(10, 5))


class TestPrecisionRecall:
    def test_recall_monotone_nondecreasing(self, pairs):
        points = precision_recall_curve(pairs, normalized=True)
        recalls = [p.recall for p in points]
        assert all(b >= a for a, b in zip(recalls, recalls[1:]))

    def test_recall_reaches_one(self, pairs):
        points = precision_recall_curve(pairs, normalized=True, max_threshold=64)
        assert points[-1].recall == pytest.approx(1.0)

    def test_precision_range(self, pairs):
        for p in precision_recall_curve(pairs, normalized=False):
            assert 0.0 <= p.precision <= 1.0

    def test_normalized_dominates_raw(self, pairs):
        """The Figure 3 → Figure 4 improvement: summed P+R over the studied
        range must be higher with normalisation."""
        raw = precision_recall_curve(pairs, normalized=False)
        norm = precision_recall_curve(pairs, normalized=True)
        raw_area = sum(p.precision + p.recall for p in raw[3:23])
        norm_area = sum(p.precision + p.recall for p in norm[3:23])
        assert norm_area > raw_area

    def test_crossover_in_plausible_band(self, pairs):
        """The paper's crossover is h=18; the simulated study must land in
        the same neighbourhood with high precision/recall."""
        cross = crossover(precision_recall_curve(pairs, normalized=True))
        assert 10 <= cross.threshold <= 22
        assert cross.precision > 0.8
        assert cross.recall > 0.8


class TestCosineBaseline:
    def test_curve_shape(self, pairs):
        points = cosine_curve(pairs)
        assert points[0].recall == pytest.approx(1.0)  # threshold 0 → all
        recalls = [p.recall for p in points]
        assert all(a >= b for a, b in zip(recalls, recalls[1:]))

    def test_crossover_near_paper(self, pairs):
        cross = cosine_crossover(cosine_curve(pairs))
        # Paper: 0.7. Allow a generous band — shape, not absolute value.
        assert 0.4 <= cross.threshold <= 0.9


class TestExamplePairs:
    def test_three_redundant_examples(self):
        examples = example_pairs(seed=77)
        assert len(examples) == 3
        assert all(e.redundant for e in examples)
        # Near the paper's distances 3, 8, 13.
        for example, target in zip(examples, (3, 8, 13)):
            assert abs(example.raw_distance - target) <= 3
