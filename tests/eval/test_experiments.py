"""Tests for repro.eval.experiments — smoke and shape checks per driver.

Heavy drivers run on the session-scoped small dataset (or with tiny
parameters); the goal here is that every figure/table driver produces
well-formed rows and paper-consistent orderings, not paper-scale numbers.
"""

import pytest

from repro.core import Thresholds
from repro.eval import EXPERIMENTS, run_experiment
from repro.eval.experiments import (
    figure2_hamming_distribution,
    figure9_author_similarity,
    figure10_dimension_effect,
    figure11_vary_time_threshold,
    figure12_vary_content_threshold,
    figure13_vary_author_threshold,
    figure14_vary_post_rate,
    figure15_vary_subscriptions,
    figure16_multiuser,
    table2_cost_model,
    table3_properties,
    table4_use_cases,
    topology_statistics,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "figure2", "table1", "figure3", "figure4", "sec3_cosine",
            "figure9", "sec62_topology", "figure10", "figure11", "figure12",
            "figure13", "figure14", "figure15", "figure16", "table2",
            "table3", "table4",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_unknown_scale(self):
        from repro.eval import default_dataset

        with pytest.raises(KeyError):
            default_dataset("gigantic")


class TestStaticTables:
    def test_table3(self):
        result = table3_properties()
        assert len(result.rows) == 3
        assert result.render()

    def test_table4(self):
        result = table4_use_cases()
        assert [r["algorithm"] for r in result.rows] == [
            "unibin", "neighborbin", "cliquebin",
        ]


class TestContentStudies:
    def test_figure2_small(self):
        result = figure2_hamming_distribution(n_posts=400, n_pairs=2000, seed=31)
        assert result.rows
        mean_note = result.notes[0]
        assert "mean=" in mean_note

    def test_figure9(self, dataset):
        result = figure9_author_similarity(dataset)
        fractions = [r["fraction_of_pairs_at_least"] for r in result.rows]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_topology(self, dataset):
        result = topology_statistics(dataset, lambda_as=(0.7, 0.8))
        assert len(result.rows) == 2
        # Densification: every topology parameter grows with lambda_a.
        first, second = result.rows
        assert second["d_neighbors_per_author"] >= first["d_neighbors_per_author"]
        assert second["edges"] >= first["edges"]


class TestSingleUserExperiments:
    def test_figure10_dimension_effect(self, dataset):
        result = figure10_dimension_effect(dataset, max_posts=300)
        labels = [r["dimensions"] for r in result.rows]
        assert "content+time+author" in labels
        by_label = {r["dimensions"]: r for r in result.rows}
        full = by_label["content+time+author"]
        # Removing a constraint can only prune MORE posts (fewer left).
        for relaxed in (
            "content+time (author off)",
            "content+author (time off)",
            "time+author (content off)",
        ):
            assert by_label[relaxed]["posts_left"] <= full["posts_left"]

    def test_figure11_lambda_t_monotonicity(self, dataset):
        result = figure11_vary_time_threshold(dataset, lambda_ts=(300.0, 1800.0))
        uni = [r for r in result.rows if r["algorithm"] == "unibin"]
        assert uni[0]["comparisons"] <= uni[1]["comparisons"]
        assert uni[0]["ram_copies"] <= uni[1]["ram_copies"]

    def test_figure11_cost_ordering(self, dataset):
        result = figure11_vary_time_threshold(dataset, lambda_ts=(1800.0,))
        by_algo = {r["algorithm"]: r for r in result.rows}
        assert by_algo["unibin"]["comparisons"] > by_algo["cliquebin"]["comparisons"]
        assert by_algo["cliquebin"]["comparisons"] > by_algo["neighborbin"]["comparisons"]
        assert by_algo["unibin"]["ram_copies"] < by_algo["cliquebin"]["ram_copies"]
        assert by_algo["cliquebin"]["ram_copies"] < by_algo["neighborbin"]["ram_copies"]

    def test_figure12_retention_stable(self, dataset):
        result = figure12_vary_content_threshold(dataset, lambda_cs=(9, 18))
        uni = [r for r in result.rows if r["algorithm"] == "unibin"]
        # Paper: lambda_c barely affects the outcome.
        assert abs(uni[0]["retention"] - uni[1]["retention"]) < 0.05

    def test_figure13_densification_hits_binned_algorithms(self, dataset):
        result = figure13_vary_author_threshold(dataset, lambda_as=(0.6, 0.8))
        neigh = [r for r in result.rows if r["algorithm"] == "neighborbin"]
        uni = [r for r in result.rows if r["algorithm"] == "unibin"]
        assert neigh[1]["insertions"] > neigh[0]["insertions"]
        # UniBin's insertions stay ~stable (only retention changes).
        assert abs(uni[1]["insertions"] - uni[0]["insertions"]) < 0.2 * uni[0]["insertions"]

    def test_figure14_rows(self, dataset):
        result = figure14_vary_post_rate(dataset, ratios=(0.25, 1.0))
        assert len(result.rows) == 6
        assert {r["sample_ratio"] for r in result.rows} == {0.25, 1.0}

    def test_figure15_rows(self, dataset):
        result = figure15_vary_subscriptions(dataset, fractions=(0.5, 1.0))
        assert len(result.rows) == 6
        counts = sorted({r["subscriptions"] for r in result.rows})
        assert counts[0] < counts[1]


class TestTinyLambdaT:
    def test_unibin_competitive_and_smallest_ram(self, dataset):
        from repro.eval.experiments import sec622_tiny_lambda_t

        result = sec622_tiny_lambda_t(dataset)
        rows = {r["algorithm"]: r for r in result.rows}
        assert rows["unibin"]["ram_copies"] <= rows["neighborbin"]["ram_copies"]
        assert rows["unibin"]["ram_copies"] <= rows["cliquebin"]["ram_copies"]
        # All three still agree on the output.
        admitted = {r["admitted"] for r in result.rows}
        assert len(admitted) == 1


class TestMultiUserExperiment:
    def test_figure16_s_beats_m(self, dataset):
        result = figure16_multiuser(dataset, engines=("m_unibin", "s_unibin"))
        by_algo = {r["algorithm"]: r for r in result.rows}
        assert by_algo["s_unibin"]["comparisons"] <= by_algo["m_unibin"]["comparisons"]
        assert by_algo["s_unibin"]["insertions"] <= by_algo["m_unibin"]["insertions"]
        assert by_algo["s_unibin"]["ram_copies"] <= by_algo["m_unibin"]["ram_copies"]
        # Same deliveries — the optimisation must not change outputs.
        assert by_algo["s_unibin"]["admitted"] == by_algo["m_unibin"]["admitted"]


class TestCostModelExperiment:
    def test_table2_orderings_agree(self, dataset):
        result = table2_cost_model(dataset, thresholds=Thresholds())
        rows = {r["algorithm"]: r for r in result.rows}
        for metric in ("ram", "cmp_per_window", "ins_per_window"):
            predicted = sorted(
                rows, key=lambda a: rows[a][f"{metric}_predicted"]
            )
            measured = sorted(
                rows, key=lambda a: rows[a][f"{metric}_measured"]
            )
            assert predicted == measured, f"{metric} ordering diverges"

    def test_table2_parameters_present(self, dataset):
        result = table2_cost_model(dataset)
        for key in ("m", "n_per_window", "r", "d", "c", "s", "q"):
            assert key in result.parameters


class TestRendering:
    def test_render_contains_notes(self, dataset):
        result = figure9_author_similarity(dataset)
        text = result.render()
        assert text.startswith("== figure9")
        assert "note:" in text
