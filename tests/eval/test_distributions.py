"""Tests for repro.eval.distributions — Figures 2 and 9."""

import pytest

from repro.authors import FriendVectors
from repro.eval import author_similarity_ccdf, hamming_distribution


class TestHammingDistribution:
    @pytest.fixture(scope="class")
    def dist(self):
        return hamming_distribution(n_posts=800, n_pairs=4000, seed=31)

    def test_mean_near_32(self, dist):
        """Figure 2: unrelated posts centre at 32 bits."""
        assert 28.0 <= dist.mean <= 34.0

    def test_bulk_between_24_and_40(self, dist):
        assert dist.fraction_between(24, 40) > 0.8

    def test_counts_sum_to_total(self, dist):
        assert sum(dist.counts.values()) == dist.total_pairs

    def test_distances_in_bit_range(self, dist):
        assert all(0 <= d <= 64 for d in dist.counts)

    def test_fraction_empty_range(self, dist):
        assert dist.fraction_between(63, 64) <= 0.01


class TestAuthorSimilarityCcdf:
    @pytest.fixture(scope="class")
    def vectors(self):
        return FriendVectors(
            {
                1: {10, 11, 12, 13},
                2: {10, 11, 12, 13},
                3: {10, 11, 20, 21},
                4: {50, 51},
                5: {60},
            }
        )

    def test_monotone_nonincreasing(self, vectors):
        ccdf = author_similarity_ccdf(vectors)
        fractions = list(ccdf.fractions)
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_total_pairs(self, vectors):
        ccdf = author_similarity_ccdf(vectors)
        assert ccdf.total_pairs == 10  # C(5,2)

    def test_known_fractions(self, vectors):
        ccdf = author_similarity_ccdf(
            vectors, thresholds=(0.4, 0.6, 0.9)
        )
        # sims: (1,2)=1.0, (1,3)=(2,3)=0.5, rest 0.
        assert ccdf.fraction_at_least(0.4) == pytest.approx(3 / 10)
        assert ccdf.fraction_at_least(0.6) == pytest.approx(1 / 10)
        assert ccdf.fraction_at_least(0.9) == pytest.approx(1 / 10)

    def test_unknown_grid_point_rejected(self, vectors):
        ccdf = author_similarity_ccdf(vectors, thresholds=(0.5,))
        with pytest.raises(KeyError):
            ccdf.fraction_at_least(0.123)

    def test_positive_pairs_counted(self, vectors):
        ccdf = author_similarity_ccdf(vectors)
        assert ccdf.positive_pairs == 3
