"""Tests for repro.eval.metrics — verifier and audit."""

import pytest

from repro.core import CoverageChecker, Post, Thresholds
from repro.eval import MeasuredRun, find_uncovered, pruning_audit, verify_coverage


def make_post(post_id, author, t, fingerprint):
    return Post(post_id=post_id, author=author, text="", timestamp=t, fingerprint=fingerprint)


@pytest.fixture()
def checker(paper_graph):
    return CoverageChecker(Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=0.7), paper_graph)


class TestFindUncovered:
    def test_all_admitted_is_covered(self, checker):
        posts = [make_post(i, 1, float(i), i << 10) for i in range(3)]
        assert find_uncovered(posts, frozenset({0, 1, 2}), checker) == []

    def test_properly_covered_rejection(self, checker):
        posts = [
            make_post(1, 1, 0.0, 0),
            make_post(2, 3, 10.0, 0b1),  # covered by post 1 (a1~a3)
        ]
        assert find_uncovered(posts, frozenset({1}), checker) == []

    def test_detects_planted_violation(self, checker):
        posts = [
            make_post(1, 1, 0.0, 0),
            make_post(2, 4, 10.0, 0),  # a4 not similar to a1 → NOT covered
        ]
        violations = find_uncovered(posts, frozenset({1}), checker)
        assert [p.post_id for p in violations] == [2]

    def test_detects_out_of_window_violation(self, checker):
        posts = [
            make_post(1, 1, 0.0, 0),
            make_post(2, 1, 500.0, 0),  # same content, outside λt
        ]
        assert [p.post_id for p in find_uncovered(posts, frozenset({1}), checker)] == [2]

    def test_later_post_does_not_cover(self, checker):
        """The verifier checks the streaming (backward-only) guarantee."""
        posts = [
            make_post(1, 1, 0.0, 0),
            make_post(2, 1, 10.0, 0),
        ]
        # Claiming only the LATER post was admitted leaves post 1 uncovered
        # under backward-only semantics.
        assert [p.post_id for p in find_uncovered(posts, frozenset({2}), checker)] == [1]


class TestVerifyCoverage:
    def test_passes_silently(self, checker):
        posts = [make_post(1, 1, 0.0, 0)]
        verify_coverage(posts, frozenset({1}), checker)

    def test_raises_with_ids(self, checker):
        posts = [make_post(1, 1, 0.0, 0), make_post(2, 4, 1.0, 0)]
        with pytest.raises(AssertionError, match=r"\[2\]"):
            verify_coverage(posts, frozenset({1}), checker)


class TestPruningAudit:
    def test_counts(self):
        posts = [make_post(i, 1, float(i), 0) for i in range(1, 6)]
        admitted = frozenset({1, 2})
        redundant = {3, 4}
        audit = pruning_audit(posts, admitted, redundant)
        assert audit["pruned"] == 3
        assert audit["pruned_ground_truth_redundant"] == 2
        assert audit["pruned_other"] == 1
        assert audit["prune_precision"] == pytest.approx(2 / 3)

    def test_nothing_pruned(self):
        posts = [make_post(1, 1, 0.0, 0)]
        audit = pruning_audit(posts, frozenset({1}), set())
        assert audit["pruned"] == 0
        assert audit["prune_precision"] == 1.0


class TestMeasuredRun:
    def make_run(self, **overrides):
        fields = {
            "algorithm": "unibin",
            "posts_processed": 100,
            "posts_admitted": 90,
            "comparisons": 500,
            "insertions": 90,
            "peak_stored_copies": 40,
            "wall_time": 2.0,
            "cpu_time": 1.9,
            "admitted_ids": frozenset(range(90)),
        }
        fields.update(overrides)
        return MeasuredRun(**fields)

    def test_derived_metrics(self):
        run = self.make_run()
        assert run.retention_ratio == pytest.approx(0.9)
        assert run.throughput == pytest.approx(50.0)

    def test_zero_guards(self):
        run = self.make_run(posts_processed=0, posts_admitted=0, wall_time=0.0)
        assert run.retention_ratio == 0.0
        assert run.throughput == 0.0

    def test_as_row_excludes_ids(self):
        row = self.make_run().as_row()
        assert "admitted_ids" not in row
        assert row["algorithm"] == "unibin"
        assert row["ram_copies"] == 40
