"""Tests for repro.eval.ablations."""

from repro.eval import (
    ablation_clique_cover,
    ablation_permuted_index,
    ablation_scan_order,
    ablation_simhash_speed,
)


class TestSimhashSpeed:
    def test_simhash_faster_than_cosine(self):
        result = ablation_simhash_speed(n_texts=200, n_comparisons=5000, seed=13)
        by_measure = {r["measure"]: r for r in result.rows}
        assert (
            by_measure["simhash_hamming"]["total_s"]
            < by_measure["cosine_tf"]["total_s"]
        )


class TestPermutedIndex:
    def test_candidate_fraction_grows_with_radius(self):
        result = ablation_permuted_index(
            radii=(2, 10, 18), n_fingerprints=400, n_queries=40, seed=19
        )
        fractions = [r["candidate_fraction"] for r in result.rows]
        assert fractions[0] < fractions[-1]

    def test_large_radius_degenerates(self):
        """The paper's argument: at λc=18 the index approaches a full scan."""
        result = ablation_permuted_index(
            radii=(18,), n_fingerprints=400, n_queries=40, seed=19
        )
        assert result.rows[0]["candidate_fraction"] > 0.5

    def test_small_radius_prunes(self):
        result = ablation_permuted_index(
            radii=(2,), n_fingerprints=400, n_queries=40, seed=19
        )
        assert result.rows[0]["candidate_fraction"] < 0.2


class TestCliqueCoverAblation:
    def test_greedy_beats_trivial_on_dataset(self, dataset):
        result = ablation_clique_cover(dataset)
        greedy, trivial = result.rows
        assert greedy["total_membership"] <= trivial["total_membership"]


class TestIndexedUnibinAblation:
    def test_outputs_identical_and_candidates_shrink(self, dataset):
        from repro.eval import ablation_indexed_unibin

        result = ablation_indexed_unibin(dataset, lambda_cs=(3, 18))
        by_lc = {r["lambda_c"]: r for r in result.rows}
        assert by_lc[3]["candidate_reduction"] > by_lc[18]["candidate_reduction"]
        assert by_lc[3]["candidate_reduction"] > 0.9


class TestServiceCapacityAblation:
    def test_rows_and_headroom(self, dataset):
        from repro.eval import service_capacity

        result = service_capacity(dataset)
        assert [r["algorithm"] for r in result.rows] == [
            "unibin",
            "neighborbin",
            "cliquebin",
        ]
        for row in result.rows:
            assert row["sustainable_speedup"] > 1


class TestBurstBehaviourAblation:
    def test_zero_violations_and_burst_visible(self):
        from repro.eval import burst_behaviour

        result = burst_behaviour()
        assert result.parameters["coverage_violations"] == 0
        arrivals = [r["arrivals"] for r in result.rows]
        assert max(arrivals) > 3 * (sum(arrivals) / len(arrivals))


class TestScanOrderAblation:
    def test_same_output_both_orders(self, dataset):
        result = ablation_scan_order(dataset)
        assert "yes" in result.notes[0]
        newest, oldest = result.rows
        assert newest["admitted"] == oldest["admitted"]

    def test_newest_first_fewer_or_equal_comparisons(self, dataset):
        """Duplicates cluster near their source in time, so the newest-first
        scan should find coverage sooner on the synthetic stream."""
        result = ablation_scan_order(dataset)
        newest, oldest = result.rows
        assert newest["comparisons"] <= oldest["comparisons"]
