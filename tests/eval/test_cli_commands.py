"""Tests for the CLI's diversify/generate subcommands."""

import json

import pytest

from repro.authors import AuthorGraph
from repro.cli import main
from repro.core import Post
from repro.io import write_graph_json, write_posts_jsonl


@pytest.fixture()
def trace(tmp_path):
    posts = [
        Post.create(1, 1, "big story breaking now", 0.0),
        Post.create(2, 2, "big story breaking now", 60.0),   # dup, similar author
        Post.create(3, 3, "completely different topic here", 120.0),
    ]
    graph = AuthorGraph([1, 2, 3], [(1, 2)])
    posts_path = tmp_path / "posts.jsonl"
    graph_path = tmp_path / "graph.json"
    write_posts_jsonl(posts, posts_path)
    write_graph_json(graph, graph_path)
    return posts_path, graph_path


class TestDiversifyCommand:
    def test_prunes_duplicate(self, trace, tmp_path, capsys):
        posts_path, graph_path = trace
        out_path = tmp_path / "shown.jsonl"
        code = main(
            [
                "diversify",
                "--posts", str(posts_path),
                "--graph", str(graph_path),
                "--lambda-t", "600",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        shown = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert [record["post_id"] for record in shown] == [1, 3]
        assert "2/3 posts kept" in capsys.readouterr().out

    def test_each_algorithm(self, trace, capsys):
        posts_path, graph_path = trace
        for algorithm in ("unibin", "neighborbin", "cliquebin", "indexed_unibin"):
            code = main(
                [
                    "diversify",
                    "--posts", str(posts_path),
                    "--graph", str(graph_path),
                    "--algorithm", algorithm,
                    "--lambda-t", "600",
                ]
            )
            assert code == 0
            assert algorithm in capsys.readouterr().out

    def test_author_dimension_off_without_graph(self, trace, capsys):
        posts_path, _ = trace
        code = main(
            [
                "diversify",
                "--posts", str(posts_path),
                "--lambda-a", "1.0",
                "--lambda-t", "600",
            ]
        )
        assert code == 0
        assert "2/3 posts kept" in capsys.readouterr().out


class TestGenerateCommand:
    def test_writes_all_files(self, tmp_path, capsys):
        out_dir = tmp_path / "trace"
        code = main(["generate", "--out-dir", str(out_dir), "--scale", "small"])
        assert code == 0
        assert (out_dir / "posts.jsonl").exists()
        assert (out_dir / "graph.json").exists()
        assert (out_dir / "subscriptions.json").exists()

    def test_generated_trace_diversifies(self, tmp_path, capsys):
        out_dir = tmp_path / "trace"
        main(["generate", "--out-dir", str(out_dir), "--scale", "small"])
        code = main(
            [
                "diversify",
                "--posts", str(out_dir / "posts.jsonl"),
                "--graph", str(out_dir / "graph.json"),
            ]
        )
        assert code == 0
        assert "pruned" in capsys.readouterr().out
