"""Tests for repro.cli."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure11" in out
        assert "table4" in out
        assert "ablation_scan_order" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_static_table_runs(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Twitch" in out

    def test_scale_flag_accepted(self, capsys):
        assert main(["table3", "--scale", "small"]) == 0
        assert "unibin" in capsys.readouterr().out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table3", "--scale", "galactic"])

    def test_dataset_experiment_small_scale(self, capsys):
        assert main(["figure9", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "fraction_of_pairs_at_least" in out
