"""Shared seeded-world helpers for the test and benchmark suites.

Historically each suite's ``conftest.py`` grew its own copy of the
deterministic worlds (and sibling suites imported them through fragile
``..parallel.conftest`` paths). This module is now the single home:

* the **multi-component world** — twenty authors in ten similarity
  components, six users with overlapping subscriptions, and a seeded
  admit/cover post stream (``make_posts``) — used by the parallel,
  supervision, storage and resilience suites; and
* the **churn world** — twelve maintained authors whose followee sets
  draw from a small interest pool, plus a seeded mixed post/churn event
  stream (``make_events``) — used by the dynamic and supervision suites.

Conftests keep their pytest fixtures (scoping is a per-suite decision)
but build them from these helpers.
"""

from __future__ import annotations

import random

from repro.core import Post
from repro.dynamic import FollowEvent, UnfollowEvent

# -- multi-component world (parallel / supervise / storage / resilience) ------

AUTHORS = list(range(1, 21))

EDGES = [
    (1, 2), (1, 3), (2, 3), (3, 4),       # triangle + tail
    (5, 6),                               # pair
    (7, 8), (8, 9),                       # chain
    (11, 12),                             # pair
    (17, 18), (18, 19), (19, 20),         # chain
]
# 10 and 13..16 stay singletons.

# Overlapping interests: components {1..4}, {5,6}, {7,8,9}, {10} and
# {17..20} are each shared by at least two users.
SUBSCRIPTIONS_SPEC = {
    100: [1, 2, 3, 4, 10, 13],
    200: [1, 2, 3, 4, 5, 6],
    300: [5, 6, 7, 8, 9, 14],
    400: [7, 8, 9, 17, 18, 19, 20],
    500: [10, 11, 12, 15, 16],
    600: [1, 2, 3, 4, 17, 18, 19, 20],
}


def make_posts(n: int = 240, seed: int = 11) -> list[Post]:
    """Seeded stream over the fixture authors: strictly ordered timestamps,
    ~half the posts perturbations of an earlier fingerprint (0–3 bit flips,
    inside λc=8) so coverage actually fires, the rest fresh 64-bit values."""
    rng = random.Random(seed)
    posts: list[Post] = []
    now = 0.0
    for i in range(n):
        now += rng.random() * 2.0
        if posts and rng.random() < 0.5:
            fingerprint = posts[rng.randrange(len(posts))].fingerprint
            for _ in range(rng.randrange(4)):
                fingerprint ^= 1 << rng.randrange(64)
        else:
            fingerprint = rng.getrandbits(64)
        posts.append(
            Post(
                post_id=i,
                author=rng.choice(AUTHORS),
                text=f"p{i}",
                timestamp=now,
                fingerprint=fingerprint,
            )
        )
    return posts


def chunked(seq, size: int):
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def run_batches(engine, posts, batch: int = 32):
    """Feed the stream in chunks, collecting per-post receiver sets."""
    received = []
    for chunk in chunked(posts, batch):
        received.extend(engine.offer_batch(chunk))
    return received


# -- churn world (dynamic / supervise) ----------------------------------------

#: The similarity-graph universe (friends keys); fixed across churn.
DYNAMIC_AUTHORS = list(range(1, 13))

#: Followee targets. Small on purpose: with sets of size 2–4 drawn from
#: twelve interests, one edge flip routinely crosses the λa threshold.
INTERESTS = list(range(100, 112))

# Overlapping interests so the catalog shares instances between users
# and a single edge flip can straddle several users' component views.
DYNAMIC_SUBSCRIPTIONS_SPEC = {
    100: [1, 2, 3, 4, 10],
    200: [1, 2, 3, 4, 5, 6],
    300: [5, 6, 7, 8, 9],
    400: [7, 8, 9, 10, 11, 12],
    500: [2, 5, 8, 11],
    600: [1, 4, 7, 10, 12],
}


def make_friends(seed: int = 5) -> dict[int, set[int]]:
    """Seeded initial followee relation over the churn-world authors."""
    rng = random.Random(seed)
    return {
        author: set(rng.sample(INTERESTS, rng.randint(2, 4)))
        for author in DYNAMIC_AUTHORS
    }


def make_events(
    n_posts: int = 200,
    seed: int = 17,
    churn_prob: float = 0.15,
):
    """Seeded mixed stream: strictly ordered timestamps, ~half the posts
    near-duplicates of an earlier fingerprint (inside λc=8), and before
    each post a ``churn_prob`` chance of one follow/unfollow event over
    the interest pool (never a self-follow — interests are disjoint from
    the author ids)."""
    rng = random.Random(seed)
    events = []
    posts: list[Post] = []
    now = 0.0
    for i in range(n_posts):
        now += rng.random() * 2.0
        if rng.random() < churn_prob:
            author = rng.choice(DYNAMIC_AUTHORS)
            followee = rng.choice(INTERESTS)
            cls = FollowEvent if rng.random() < 0.5 else UnfollowEvent
            events.append(cls(author=author, followee=followee, timestamp=now))
        if posts and rng.random() < 0.5:
            fingerprint = posts[rng.randrange(len(posts))].fingerprint
            for _ in range(rng.randrange(4)):
                fingerprint ^= 1 << rng.randrange(64)
        else:
            fingerprint = rng.getrandbits(64)
        post = Post(
            post_id=i,
            author=rng.choice(DYNAMIC_AUTHORS),
            text=f"p{i}",
            timestamp=now,
            fingerprint=fingerprint,
        )
        posts.append(post)
        events.append(post)
    return events
