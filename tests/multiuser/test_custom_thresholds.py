"""Per-user customised thresholds (paper §2) on the M_* engines."""

import pytest

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds
from repro.multiuser import IndependentMultiUser, SubscriptionTable


@pytest.fixture()
def world():
    graph = AuthorGraph([1, 2], [(1, 2)])
    subscriptions = SubscriptionTable({100: [1, 2], 200: [1, 2]})
    # Two near-identical posts 60 s apart from similar authors.
    posts = [
        Post(post_id=1, author=1, text="", timestamp=0.0, fingerprint=0),
        Post(post_id=2, author=2, text="", timestamp=60.0, fingerprint=0b1),
    ]
    return graph, subscriptions, posts


class TestPerUserThresholds:
    def test_custom_lambda_t_changes_one_users_timeline(self, world):
        graph, subscriptions, posts = world
        # Default λt = 30 s: the second post falls outside the window and
        # is shown. User 200 customises λt to 10 minutes → it is pruned.
        engine = IndependentMultiUser(
            "unibin",
            Thresholds(lambda_c=3, lambda_t=30.0, lambda_a=0.7),
            graph,
            subscriptions,
            per_user_thresholds={
                200: Thresholds(lambda_c=3, lambda_t=600.0, lambda_a=0.7)
            },
        )
        timelines = engine.run(posts)
        assert [p.post_id for p in timelines[100]] == [1, 2]
        assert [p.post_id for p in timelines[200]] == [1]

    def test_without_overrides_users_agree(self, world):
        graph, subscriptions, posts = world
        engine = IndependentMultiUser(
            "unibin",
            Thresholds(lambda_c=3, lambda_t=30.0, lambda_a=0.7),
            graph,
            subscriptions,
        )
        timelines = engine.run(posts)
        assert timelines[100] == timelines[200]

    def test_override_for_unknown_user_ignored(self, world):
        graph, subscriptions, posts = world
        engine = IndependentMultiUser(
            "unibin",
            Thresholds(lambda_c=3, lambda_t=30.0, lambda_a=0.7),
            graph,
            subscriptions,
            per_user_thresholds={999: Thresholds()},
        )
        timelines = engine.run(posts)
        assert set(timelines) == {100, 200}

    @pytest.mark.parametrize("algorithm", ["neighborbin", "cliquebin"])
    def test_binned_algorithms_support_overrides_too(self, world, algorithm):
        graph, subscriptions, posts = world
        engine = IndependentMultiUser(
            algorithm,
            Thresholds(lambda_c=3, lambda_t=30.0, lambda_a=0.7),
            graph,
            subscriptions,
            per_user_thresholds={
                200: Thresholds(lambda_c=3, lambda_t=600.0, lambda_a=0.7)
            },
        )
        timelines = engine.run(posts)
        assert [p.post_id for p in timelines[100]] == [1, 2]
        assert [p.post_id for p in timelines[200]] == [1]
