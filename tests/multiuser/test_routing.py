"""Tests for repro.multiuser.routing — the subscription table."""

import pytest

from repro.errors import ConfigurationError
from repro.multiuser import SubscriptionTable


@pytest.fixture()
def table() -> SubscriptionTable:
    return SubscriptionTable(
        {
            100: [1, 2, 3],
            200: [2, 3],
            300: [4],
        }
    )


class TestConstruction:
    def test_len(self, table):
        assert len(table) == 3

    def test_contains(self, table):
        assert 100 in table
        assert 999 not in table

    def test_empty_subscription_rejected(self):
        with pytest.raises(ConfigurationError):
            SubscriptionTable({100: []})

    def test_duplicate_authors_collapsed(self):
        table = SubscriptionTable({100: [1, 1, 2]})
        assert table.subscriptions_of(100) == frozenset({1, 2})


class TestLookups:
    def test_subscriptions_of(self, table):
        assert table.subscriptions_of(200) == frozenset({2, 3})

    def test_subscriptions_of_unknown(self, table):
        with pytest.raises(ConfigurationError):
            table.subscriptions_of(999)

    def test_subscribers_of(self, table):
        assert table.subscribers_of(2) == frozenset({100, 200})
        assert table.subscribers_of(4) == frozenset({300})

    def test_subscribers_of_unsubscribed_author(self, table):
        assert table.subscribers_of(99) == frozenset()

    def test_authors(self, table):
        assert set(table.authors) == {1, 2, 3, 4}

    def test_as_dict_is_copy(self, table):
        d = table.as_dict()
        d[999] = frozenset({1})
        assert 999 not in table


class TestStatistics:
    def test_average(self, table):
        assert table.average_subscriptions() == pytest.approx(2.0)

    def test_median_odd(self, table):
        assert table.median_subscriptions() == 2.0

    def test_median_even(self):
        table = SubscriptionTable({1: [1], 2: [1, 2], 3: [1, 2, 3], 4: [1, 2, 3, 4]})
        assert table.median_subscriptions() == 2.5
