"""Tests for the M-SPSD engines: M_* baselines and S_* shared-component.

The central correctness property (paper §5): for every user, the shared-
component engine delivers exactly the same timeline as running the
single-user algorithm on that user's own stream.
"""

import pytest

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds, make_diversifier
from repro.errors import UnknownAlgorithmError
from repro.multiuser import (
    MULTIUSER_NAMES,
    IndependentMultiUser,
    SharedComponentMultiUser,
    SubscriptionTable,
    make_multiuser,
)


@pytest.fixture()
def graph() -> AuthorGraph:
    # The §5 example graph: {1,2,6} component, 3-4-5 chain.
    return AuthorGraph([1, 2, 3, 4, 5, 6], [(1, 2), (2, 6), (3, 4), (4, 5)])


@pytest.fixture()
def subscriptions() -> SubscriptionTable:
    return SubscriptionTable(
        {
            100: [1, 2, 6, 3, 4],   # u1 of the paper's example
            200: [1, 2, 6, 4, 5],   # u2
            300: [4],
        }
    )


def make_stream() -> list[Post]:
    """Posts by the example authors with a duplicate pattern: author 5's
    post covers author 4's near-duplicate for u2 (who subscribes to 5) but
    not for u1 (who does not) — the paper's non-shareable case."""
    return [
        Post(post_id=1, author=5, text="", timestamp=0.0, fingerprint=0),
        Post(post_id=2, author=4, text="", timestamp=10.0, fingerprint=0b1),
        Post(post_id=3, author=1, text="", timestamp=20.0, fingerprint=0b111111),
        Post(post_id=4, author=2, text="", timestamp=30.0, fingerprint=0b111110),
        Post(post_id=5, author=3, text="", timestamp=40.0, fingerprint=1 << 20),
        Post(post_id=6, author=6, text="", timestamp=50.0, fingerprint=0b111100),
    ]


@pytest.fixture()
def thresholds() -> Thresholds:
    return Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=0.7)


class TestNames:
    def test_six_engines(self):
        assert len(MULTIUSER_NAMES) == 6

    def test_make_by_name(self, graph, subscriptions, thresholds):
        assert isinstance(
            make_multiuser("m_unibin", thresholds, graph, subscriptions),
            IndependentMultiUser,
        )
        assert isinstance(
            make_multiuser("s_cliquebin", thresholds, graph, subscriptions),
            SharedComponentMultiUser,
        )

    def test_unknown_rejected(self, graph, subscriptions, thresholds):
        with pytest.raises(UnknownAlgorithmError):
            make_multiuser("x_unibin", thresholds, graph, subscriptions)
        with pytest.raises(UnknownAlgorithmError):
            make_multiuser("m_turbobin", thresholds, graph, subscriptions)


class TestPaperSection5Semantics:
    def test_author4_differs_between_users(self, graph, subscriptions, thresholds):
        """u2 (subscribed to the similar author 5) must NOT see post 2 —
        it is covered by author 5's post 1; u1 (not subscribed to 5) must
        see it."""
        engine = make_multiuser("s_unibin", thresholds, graph, subscriptions)
        timelines = engine.run(make_stream())
        u1_ids = [p.post_id for p in timelines[100]]
        u2_ids = [p.post_id for p in timelines[200]]
        assert 2 in u1_ids
        assert 2 not in u2_ids

    def test_shared_component_same_output(self, graph, subscriptions, thresholds):
        """Posts from the shared {1,2,6} component appear identically for
        u1 and u2."""
        engine = make_multiuser("s_unibin", thresholds, graph, subscriptions)
        timelines = engine.run(make_stream())
        shared_authors = {1, 2, 6}
        u1_shared = [p.post_id for p in timelines[100] if p.author in shared_authors]
        u2_shared = [p.post_id for p in timelines[200] if p.author in shared_authors]
        assert u1_shared == u2_shared


class TestEquivalence:
    @pytest.mark.parametrize("algorithm", ["unibin", "neighborbin", "cliquebin"])
    def test_m_equals_s_timelines(self, graph, subscriptions, thresholds, algorithm):
        posts = make_stream()
        m_engine = make_multiuser(f"m_{algorithm}", thresholds, graph, subscriptions)
        s_engine = make_multiuser(f"s_{algorithm}", thresholds, graph, subscriptions)
        m_timelines = m_engine.run(posts)
        s_timelines = s_engine.run(posts)
        assert m_timelines == s_timelines

    @pytest.mark.parametrize("algorithm", ["unibin", "neighborbin", "cliquebin"])
    def test_m_matches_per_user_single_runs(
        self, graph, subscriptions, thresholds, algorithm
    ):
        posts = make_stream()
        engine = make_multiuser(f"m_{algorithm}", thresholds, graph, subscriptions)
        timelines = engine.run(posts)
        for user in subscriptions.users:
            subs = subscriptions.subscriptions_of(user)
            solo = make_diversifier(algorithm, thresholds, graph.subgraph(subs))
            expected = [p.post_id for p in posts if p.author in subs and solo.offer(p)]
            got = [p.post_id for p in timelines.get(user, [])]
            assert got == expected, f"user {user} timeline diverges"


class TestEngineAccounting:
    def test_instance_counts(self, graph, subscriptions, thresholds):
        m_engine = make_multiuser("m_unibin", thresholds, graph, subscriptions)
        s_engine = make_multiuser("s_unibin", thresholds, graph, subscriptions)
        assert m_engine.instance_count() == 3  # one per user
        # distinct components: {1,2,6} (shared), {3,4}, {4,5}, {4} → 4
        assert s_engine.instance_count() == 4

    def test_sharing_ratio(self, graph, subscriptions, thresholds):
        engine = make_multiuser("s_unibin", thresholds, graph, subscriptions)
        # instances: u1 has 2 components, u2 has 2, u3 has 1 → 5 total, 4 distinct
        assert engine.sharing_ratio() == pytest.approx(1 - 4 / 5)

    def test_aggregate_stats_counts_all(self, graph, subscriptions, thresholds):
        engine = make_multiuser("m_unibin", thresholds, graph, subscriptions)
        engine.run(make_stream())
        stats = engine.aggregate_stats()
        # Each post processed once per subscribing user.
        assert stats.posts_processed == sum(
            len(subscriptions.subscribers_of(p.author)) for p in make_stream()
        )

    def test_purge_and_stored_copies(self, graph, subscriptions, thresholds):
        engine = make_multiuser("m_unibin", thresholds, graph, subscriptions)
        engine.run(make_stream())
        assert engine.stored_copies() > 0
        engine.purge(now=10_000.0)
        assert engine.stored_copies() == 0

    def test_unsubscribed_author_ignored(self, graph, subscriptions, thresholds):
        engine = make_multiuser("s_unibin", thresholds, graph, subscriptions)
        ghost = Post(post_id=99, author=6, text="", timestamp=0.0, fingerprint=0)
        # Author 6 is subscribed (by 100 and 200) — use a graph node nobody
        # subscribes to instead: there is none here, so check a post from an
        # author outside every catalog component routes nowhere.
        engine2 = make_multiuser(
            "s_unibin", thresholds, graph, SubscriptionTable({100: [3]})
        )
        assert engine2.offer(ghost) == frozenset()
