"""Supervised dynamic pools: crash recovery under live topology churn.

The dynamic engine journals installs, patches and batches alike, and its
checkpoints carry each instance's subgraph — so a worker lost *between*
two follow events must come back with the graph as it stood, then replay
the churn. The oracle is the same engine run with ``workers=1`` (whose
exactness the dynamic suite already pins to the rebuild baseline).
"""

import pytest

from repro.dynamic import DynamicMultiUser
from repro.multiuser import SubscriptionTable
from repro.resilience import WorkerFaultPlan

from ..support import (
    DYNAMIC_SUBSCRIPTIONS_SPEC as SUBSCRIPTIONS_SPEC,
    make_events,
    make_friends,
)
from .conftest import fast_config


@pytest.fixture(scope="module")
def events():
    return make_events()


@pytest.fixture(scope="module")
def subscriptions() -> SubscriptionTable:
    # The dynamic fixture world (authors 1..12 over the interest pool),
    # not this package's static parallel world.
    return SubscriptionTable(SUBSCRIPTIONS_SPEC)


def run_against_oracle(engine, oracle, events):
    for i, event in enumerate(events):
        got = engine.apply(event)
        expected = oracle.apply(event)
        assert got == expected, (
            f"receivers diverged at event {i} ({type(event).__name__}): "
            f"{sorted(got or ())} != {sorted(expected or ())}"
        )


class TestDynamicRecovery:
    @pytest.mark.parametrize("algorithm", ("unibin", "cliquebin"))
    def test_crash_and_corrupt_recovery_under_churn(
        self, thresholds, subscriptions, events, algorithm
    ):
        oracle = DynamicMultiUser(
            algorithm, thresholds, make_friends(), subscriptions
        )
        with DynamicMultiUser(
            algorithm,
            thresholds,
            make_friends(),
            subscriptions,
            workers=3,
            supervised=True,
            supervision=fast_config(),
            fault_plans={
                0: WorkerFaultPlan(crash_on_batch=5),
                2: WorkerFaultPlan(corrupt_on_batch=9),
            },
        ) as engine:
            run_against_oracle(engine, oracle, events)
            supervisor = engine.supervisor
            assert supervisor.restarts_total == 2
            assert supervisor.degraded_shards() == ()
            assert (
                engine.aggregate_stats().snapshot()
                == oracle.aggregate_stats().snapshot()
            )
            assert engine.migrations == oracle.migrations
            assert engine.graph_version == oracle.graph_version

    def test_poison_worker_degrades_and_churn_stays_exact(
        self, thresholds, subscriptions, events
    ):
        oracle = DynamicMultiUser(
            "unibin", thresholds, make_friends(), subscriptions
        )
        with DynamicMultiUser(
            "unibin",
            thresholds,
            make_friends(),
            subscriptions,
            workers=2,
            supervised=True,
            supervision=fast_config(max_restarts=1),
            fault_plans={
                1: WorkerFaultPlan(crash_on_batch=4, survive_restarts=True)
            },
        ) as engine:
            run_against_oracle(engine, oracle, events)
            supervisor = engine.supervisor
            assert supervisor.degraded_shards() == (1,)
            assert supervisor.restarts_total == 1
            assert (
                engine.aggregate_stats().snapshot()
                == oracle.aggregate_stats().snapshot()
            )

    def test_checkpoints_roll_during_churn(
        self, thresholds, subscriptions, events
    ):
        with DynamicMultiUser(
            "unibin",
            thresholds,
            make_friends(),
            subscriptions,
            workers=2,
            supervised=True,
            supervision=fast_config(checkpoint_every=20, journal_limit=16),
        ) as engine:
            for event in events:
                engine.apply(event)
            supervisor = engine.supervisor
            assert supervisor.checkpoints_taken > 0
            # Every journal sits below the forced-checkpoint bound.
            for index in range(supervisor.shard_count):
                assert supervisor.journal_depth(index) < 16
