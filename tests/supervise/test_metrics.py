"""Supervision observability: metric families and the /healthz probe.

Counters must equal the supervisor's own accounting, per-shard gauges
must flip when a shard degrades, and a scraped ``/healthz`` must name the
quarantined shards while the service keeps answering exactly.
"""

import urllib.request

from repro.obs import Registry, snapshot
from repro.parallel import ParallelSharedMultiUser
from repro.resilience import WorkerFaultPlan
from repro.service import DiversificationService

from .conftest import fast_config, run_batches


def supervised_engine(graph, subscriptions, thresholds, *, plans=None, **overrides):
    return ParallelSharedMultiUser(
        "unibin",
        thresholds,
        graph,
        subscriptions,
        workers=2,
        supervised=True,
        supervision=fast_config(**overrides),
        fault_plans=plans,
    )


class TestSupervisionMetrics:
    def test_counters_track_the_supervisor(
        self, graph, subscriptions, thresholds, posts
    ):
        registry = Registry()
        with supervised_engine(
            graph,
            subscriptions,
            thresholds,
            plans={0: WorkerFaultPlan(crash_on_batch=2)},
        ) as engine:
            engine.bind_metrics(registry)
            run_batches(engine, posts)
            supervisor = engine.supervisor
            name = engine.name
            assert registry.value(
                "repro_supervision_restarts_total", engine=name
            ) == supervisor.restarts_total == 1
            assert registry.value(
                "repro_supervision_checkpoints_total", engine=name
            ) == supervisor.checkpoints_taken
            assert registry.value(
                "repro_supervision_replayed_commands_total", engine=name
            ) == supervisor.replayed_commands
            assert registry.value(
                "repro_supervision_degradations_total", engine=name
            ) == 0
            assert registry.value(
                "repro_shard_restarts_total", engine=name, shard=0
            ) == 1
            assert registry.value(
                "repro_shard_live", engine=name, shard=0
            ) == 1
            assert registry.value(
                "repro_shard_degraded", engine=name, shard=0
            ) == 0

    def test_degradation_flips_the_shard_gauges(
        self, graph, subscriptions, thresholds, posts
    ):
        registry = Registry()
        with supervised_engine(
            graph,
            subscriptions,
            thresholds,
            plans={1: WorkerFaultPlan(crash_on_batch=2, survive_restarts=True)},
            max_restarts=1,
        ) as engine:
            engine.bind_metrics(registry)
            run_batches(engine, posts)
            name = engine.name
            assert engine.supervisor.is_degraded(1)
            assert registry.value(
                "repro_supervision_degradations_total", engine=name
            ) == 1
            assert registry.value("repro_shard_degraded", engine=name, shard=1) == 1
            assert registry.value("repro_shard_live", engine=name, shard=1) == 0
            assert registry.value("repro_shard_live", engine=name, shard=0) == 1

    def test_histogram_families_are_exported(
        self, graph, subscriptions, thresholds, posts
    ):
        registry = Registry()
        with supervised_engine(
            graph,
            subscriptions,
            thresholds,
            plans={0: WorkerFaultPlan(crash_on_batch=2)},
        ) as engine:
            engine.bind_metrics(registry)
            run_batches(engine, posts)
            names = {metric["name"] for metric in snapshot(registry)["metrics"]}
            assert "repro_supervision_recovery_seconds" in names
            assert "repro_supervision_journal_depth" in names
            assert "repro_supervision_heartbeats_total" in names
            assert "repro_supervision_missed_heartbeats_total" in names

    def test_unsupervised_engine_exports_no_supervision_family(
        self, graph, subscriptions, thresholds, posts
    ):
        registry = Registry()
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            engine.bind_metrics(registry)
            run_batches(engine, posts[:32])
            names = {metric["name"] for metric in snapshot(registry)["metrics"]}
            assert not any(n.startswith("repro_supervision_") for n in names)


class TestHealthProbe:
    def test_healthz_reports_ok_then_degraded(
        self, graph, subscriptions, thresholds, posts
    ):
        with supervised_engine(
            graph,
            subscriptions,
            thresholds,
            plans={1: WorkerFaultPlan(crash_on_batch=2, survive_restarts=True)},
            max_restarts=1,
        ) as engine:
            service = DiversificationService(engine)
            server = service.serve_metrics()
            try:
                with urllib.request.urlopen(server.url + "/healthz") as reply:
                    assert reply.read() == b"ok\n"
                run_batches(engine, posts)
                assert engine.supervisor.is_degraded(1)
                with urllib.request.urlopen(server.url + "/healthz") as reply:
                    body = reply.read().decode("utf-8")
                assert body == (
                    "degraded: shards [1] quarantined, running serial in-parent\n"
                )
            finally:
                server.stop()

    def test_unsupervised_service_stays_ok(self, graph, subscriptions, thresholds):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            service = DiversificationService(engine)
            assert service._health_probe() == "ok\n"
