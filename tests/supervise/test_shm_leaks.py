"""Shared-memory hygiene: no ring segment survives its pool.

Every ``transport="shm"`` pool allocates ``/dev/shm/repro_ring_*``
segments; a leak is invisible in-process (handles close fine) but eats
the host's shm budget run after run. These tests drive each lifecycle
path — clean close, worker crash + recovery, poison-shard degradation,
unsupervised teardown, shard split/merge — and assert the filesystem
itself is clean afterwards.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.parallel import ParallelSharedMultiUser, RING_PREFIX, shared_memory_available
from repro.resilience import WorkerFaultPlan

from .conftest import fast_config, run_batches

SHM_DIR = Path("/dev/shm")

pytestmark = [
    pytest.mark.skipif(not shared_memory_available(), reason="no shared memory"),
    pytest.mark.skipif(not SHM_DIR.is_dir(), reason="no /dev/shm to inspect"),
]


def ring_segments() -> list[str]:
    return sorted(p.name for p in SHM_DIR.glob(f"{RING_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_preexisting_rings():
    before = ring_segments()
    assert before == [], f"leaked rings from an earlier test: {before}"
    yield


def make_engine(thresholds, graph, subscriptions, **kwargs):
    return ParallelSharedMultiUser(
        "unibin", thresholds, graph, subscriptions,
        workers=3, transport="shm", **kwargs,
    )


class TestRingLifecycle:
    def test_clean_close_unlinks_all_rings(
        self, thresholds, graph, subscriptions, posts
    ):
        with make_engine(thresholds, graph, subscriptions) as engine:
            run_batches(engine, posts)
            assert ring_segments() != []  # rings exist while the pool lives
        assert ring_segments() == []

    def test_crash_recovery_leaves_no_rings(
        self, thresholds, graph, subscriptions, posts
    ):
        with make_engine(
            thresholds, graph, subscriptions,
            supervised=True,
            supervision=fast_config(),
            fault_plans={0: WorkerFaultPlan(crash_on_batch=3)},
        ) as engine:
            run_batches(engine, posts)
            assert engine.supervisor.restarts_total == 1
        assert ring_segments() == []

    def test_degradation_leaves_no_rings(
        self, thresholds, graph, subscriptions, posts
    ):
        with make_engine(
            thresholds, graph, subscriptions,
            supervised=True,
            supervision=fast_config(max_restarts=1),
            fault_plans={
                1: WorkerFaultPlan(crash_on_batch=2, survive_restarts=True)
            },
        ) as engine:
            run_batches(engine, posts)
            assert engine.supervisor.degraded_shards() == (1,)
        assert ring_segments() == []

    def test_unsupervised_teardown_leaves_no_rings(
        self, thresholds, graph, subscriptions, posts
    ):
        engine = make_engine(thresholds, graph, subscriptions)
        run_batches(engine, posts)
        engine.close()
        assert ring_segments() == []

    def test_split_and_merge_track_ring_count(
        self, thresholds, graph, subscriptions, posts
    ):
        """split mints a ring for the new shard; merge unlinks the
        retired source's immediately (its journal holds detached blobs,
        never ring references)."""
        with make_engine(
            thresholds, graph, subscriptions,
            supervised=True, supervision=fast_config(),
        ) as engine:
            half = len(posts) // 2
            run_batches(engine, posts[:half])
            before = len(ring_segments())
            engine.split_shard(0)
            assert len(ring_segments()) == before + 1
            engine.merge_shards(0, 1)
            assert len(ring_segments()) == before
            run_batches(engine, posts[half:])
        assert ring_segments() == []
