"""Fixtures for the supervision suite.

The same deterministic multi-component world as the parallel suite (ten
components, six overlapping users, a seeded admit/cover stream), plus a
``fast_config`` helper that shrinks every supervision timescale — backoff
in the low milliseconds, tight checkpoint cadence, zero jitter — so chaos
tests recover in well under a second while exercising the same code paths
as the production-shaped defaults.
"""

from __future__ import annotations

import pytest

from repro.authors import AuthorGraph
from repro.core import Thresholds
from repro.multiuser import SubscriptionTable
from repro.supervise import SupervisionConfig

from ..support import (
    AUTHORS,
    EDGES,
    SUBSCRIPTIONS_SPEC,
    chunked,
    make_posts,
    run_batches,
)

__all__ = ["chunked", "make_posts", "fast_config", "run_batches", "ALGORITHMS"]

ALGORITHMS = ("unibin", "neighborbin", "cliquebin", "indexed_unibin")


@pytest.fixture(scope="module")
def graph() -> AuthorGraph:
    return AuthorGraph(nodes=AUTHORS, edges=EDGES)


@pytest.fixture(scope="module")
def subscriptions() -> SubscriptionTable:
    return SubscriptionTable(SUBSCRIPTIONS_SPEC)


@pytest.fixture(scope="module")
def thresholds() -> Thresholds:
    return Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5)


@pytest.fixture(scope="module")
def posts():
    return make_posts()


def fast_config(**overrides) -> SupervisionConfig:
    """Test-speed supervision: instant backoff, tight checkpoint cadence."""
    settings = dict(
        heartbeat_interval=0.05,
        deadline=5.0,
        max_restarts=3,
        backoff_base=0.001,
        backoff_cap=0.01,
        jitter=0.0,
        checkpoint_every=48,
        journal_limit=8,
    )
    settings.update(overrides)
    return SupervisionConfig(**settings)
