"""BatchJournal and SupervisionConfig: the bookkeeping under recovery."""

import pytest

from repro.errors import ConfigurationError
from repro.supervise import BatchJournal, SupervisionConfig


class TestBatchJournal:
    def test_replay_preserves_acknowledgement_order(self):
        journal = BatchJournal(limit=4)
        messages = [("batch", [i]) for i in range(3)]
        for message in messages:
            journal.append(message, posts=1)
        assert journal.replay() == tuple(messages)
        assert len(journal) == 3
        assert journal.posts == 3

    def test_full_at_limit_but_entries_never_dropped(self):
        journal = BatchJournal(limit=2)
        assert not journal.full
        for i in range(5):
            journal.append(("batch", [i]))
        # Dropping an entry would diverge recovered state; the limit only
        # signals "checkpoint now", it never truncates.
        assert journal.full
        assert len(journal) == 5
        assert [m[1][0] for m in journal.replay()] == [0, 1, 2, 3, 4]

    def test_clear_resets_entries_and_post_count(self):
        journal = BatchJournal(limit=2)
        journal.append(("batch", [1, 2]), posts=2)
        journal.clear()
        assert len(journal) == 0
        assert journal.posts == 0
        assert not journal.full
        assert journal.replay() == ()

    def test_non_post_commands_count_zero_posts(self):
        journal = BatchJournal(limit=8)
        journal.append(("purge", 10.0))
        journal.append(("batch", [1]), posts=1)
        assert journal.posts == 1

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigurationError):
            BatchJournal(limit=0)


class TestSupervisionConfig:
    def test_defaults_are_valid(self):
        config = SupervisionConfig()
        assert config.max_restarts == 3
        assert config.deadline > config.heartbeat_interval

    @pytest.mark.parametrize(
        "overrides",
        (
            {"heartbeat_interval": 0.0},
            {"deadline": 0.0},
            {"max_restarts": -1},
            {"backoff_base": -0.1},
            {"backoff_base": 1.0, "backoff_cap": 0.5},
            {"jitter": -0.5},
            {"checkpoint_every": 0},
            {"journal_limit": 0},
        ),
    )
    def test_rejects_invalid_knobs(self, overrides):
        with pytest.raises(ConfigurationError):
            SupervisionConfig(**overrides)
