"""BatchJournal and SupervisionConfig: the bookkeeping under recovery."""

import pytest

from repro.errors import ConfigurationError, JournalOverflowError
from repro.supervise import BatchJournal, SupervisionConfig


class TestBatchJournal:
    def test_replay_preserves_acknowledgement_order(self):
        journal = BatchJournal(limit=4)
        messages = [("batch", [i]) for i in range(3)]
        for message in messages:
            journal.append(message, posts=1)
        assert journal.replay() == tuple(messages)
        assert len(journal) == 3
        assert journal.posts == 3

    def test_depth_bound_is_enforced(self):
        journal = BatchJournal(limit=2)
        assert not journal.full
        journal.append(("batch", [0]))
        journal.append(("batch", [1]))
        assert journal.full
        # Growth past the bound is a supervisor bug (it must checkpoint
        # and clear once `full` turns true), so append refuses rather
        # than let replay cost grow without limit. Entries below the
        # bound are never dropped — truncation would diverge recovery.
        with pytest.raises(JournalOverflowError):
            journal.append(("batch", [2]))
        assert len(journal) == 2
        assert [m[1][0] for m in journal.replay()] == [0, 1]

    def test_clear_reopens_a_full_journal(self):
        journal = BatchJournal(limit=1)
        journal.append(("batch", [0]), posts=1)
        journal.clear()
        journal.append(("batch", [1]), posts=1)
        assert [m[1][0] for m in journal.replay()] == [1]

    def test_approx_bytes_tracks_appends_and_clear(self):
        journal = BatchJournal(limit=4)
        assert journal.approx_bytes() == 0
        journal.append(("batch", ["payload"]), posts=1)
        grown = journal.approx_bytes()
        assert grown > 0
        journal.append(("purge", 10.0))
        assert journal.approx_bytes() > grown
        journal.clear()
        assert journal.approx_bytes() == 0

    def test_clear_resets_entries_and_post_count(self):
        journal = BatchJournal(limit=2)
        journal.append(("batch", [1, 2]), posts=2)
        journal.clear()
        assert len(journal) == 0
        assert journal.posts == 0
        assert not journal.full
        assert journal.replay() == ()

    def test_non_post_commands_count_zero_posts(self):
        journal = BatchJournal(limit=8)
        journal.append(("purge", 10.0))
        journal.append(("batch", [1]), posts=1)
        assert journal.posts == 1

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigurationError):
            BatchJournal(limit=0)


class TestSupervisionConfig:
    def test_defaults_are_valid(self):
        config = SupervisionConfig()
        assert config.max_restarts == 3
        assert config.deadline > config.heartbeat_interval

    @pytest.mark.parametrize(
        "overrides",
        (
            {"heartbeat_interval": 0.0},
            {"deadline": 0.0},
            {"max_restarts": -1},
            {"backoff_base": -0.1},
            {"backoff_base": 1.0, "backoff_cap": 0.5},
            {"jitter": -0.5},
            {"checkpoint_every": 0},
            {"journal_limit": 0},
        ),
    )
    def test_rejects_invalid_knobs(self, overrides):
        with pytest.raises(ConfigurationError):
            SupervisionConfig(**overrides)
