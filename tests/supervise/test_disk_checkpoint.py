"""Rolling per-shard checkpoints on disk: atomicity, torn-write rejection,
and the journal depth bound that keeps replay cost finite.

``checkpoint_dir`` moves each shard's rolling checkpoint out of parent
memory into an atomically-replaced, CRC-framed file. The invariants:
recovery from a disk checkpoint is byte-identical to in-memory recovery;
a torn or truncated file is *rejected* (CheckpointError), never silently
half-loaded; and no crash instant can leave the previous checkpoint
unreadable, because the write goes through temp + fsync + rename.
"""

import os
import struct

import pytest

from repro.errors import CheckpointError, JournalOverflowError
from repro.multiuser import SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser
from repro.resilience import WorkerFaultPlan, snapshot_engine
from repro.supervise.supervisor import (
    _read_shard_checkpoint,
    _write_shard_checkpoint,
)

from .conftest import fast_config, run_batches


def supervised(thresholds, graph, subscriptions, *, plans=None, config=None):
    return ParallelSharedMultiUser(
        "unibin",
        thresholds,
        graph,
        subscriptions,
        workers=3,
        supervised=True,
        supervision=config if config is not None else fast_config(),
        fault_plans=plans,
    )


def checkpoint_files(directory):
    return sorted(p for p in os.listdir(directory) if p.endswith(".ckpt"))


class TestCheckpointFileFormat:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "shard.ckpt")
        payload = [("batch", [1, 2, 3]), {"state": b"\x00\xff"}]
        _write_shard_checkpoint(path, payload)
        assert _read_shard_checkpoint(path) == payload
        assert not os.path.exists(path + ".tmp")  # temp renamed away

    def test_rewrite_replaces_atomically(self, tmp_path):
        path = str(tmp_path / "shard.ckpt")
        _write_shard_checkpoint(path, "old")
        _write_shard_checkpoint(path, "new")
        assert _read_shard_checkpoint(path) == "new"
        assert checkpoint_files(tmp_path) == ["shard.ckpt"]

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            _read_shard_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_truncated_header_is_rejected(self, tmp_path):
        path = str(tmp_path / "shard.ckpt")
        with open(path, "wb") as fh:
            fh.write(b"\x01\x02\x03")  # shorter than the length+CRC header
        with pytest.raises(CheckpointError, match="truncated"):
            _read_shard_checkpoint(path)

    def test_truncated_payload_is_rejected(self, tmp_path):
        path = str(tmp_path / "shard.ckpt")
        _write_shard_checkpoint(path, list(range(100)))
        with open(path, "rb") as fh:
            raw = fh.read()
        with open(path, "wb") as fh:
            fh.write(raw[:-7])  # crash mid-write: payload cut short
        with pytest.raises(CheckpointError, match="truncated"):
            _read_shard_checkpoint(path)

    def test_corrupt_payload_fails_the_crc(self, tmp_path):
        path = str(tmp_path / "shard.ckpt")
        _write_shard_checkpoint(path, list(range(100)))
        with open(path, "rb") as fh:
            raw = bytearray(fh.read())
        header = struct.Struct("<QI").size
        raw[header + 10] ^= 0xFF  # one flipped byte, length intact
        with open(path, "wb") as fh:
            fh.write(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC"):
            _read_shard_checkpoint(path)


class TestDiskCheckpointRecovery:
    def test_checkpoints_land_on_disk_not_in_parent_memory(
        self, tmp_path, graph, subscriptions, thresholds, posts
    ):
        config = fast_config(checkpoint_dir=str(tmp_path))
        with supervised(
            thresholds, graph, subscriptions, config=config
        ) as engine:
            run_batches(engine, posts)
            assert engine.supervisor.checkpoints_taken > 0
            files = checkpoint_files(tmp_path)
            assert len(files) == 3  # one rolling file per shard
            for shard in engine.supervisor._shards:
                assert not isinstance(shard.checkpoint, (list, tuple))

    def test_crash_recovery_from_disk_is_byte_identical(
        self, tmp_path, graph, subscriptions, thresholds, posts
    ):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        config = fast_config(checkpoint_dir=str(tmp_path))
        with supervised(
            thresholds,
            graph,
            subscriptions,
            plans={0: WorkerFaultPlan(crash_on_batch=4)},
            config=config,
        ) as engine:
            received = run_batches(engine, posts)
            assert engine.supervisor.restarts_of(0) == 1
            assert received == expected
            assert (
                engine.aggregate_stats().snapshot()
                == serial.aggregate_stats().snapshot()
            )
            assert (
                snapshot_engine(engine)["components"]
                == snapshot_engine(serial)["components"]
            )

    def test_torn_disk_checkpoint_surfaces_not_silently_loads(
        self, tmp_path, graph, subscriptions, thresholds, posts
    ):
        """If the checkpoint file is torn between the write and a crash
        recovery (disk fault), recovery must raise CheckpointError rather
        than restore from garbage."""
        config = fast_config(checkpoint_dir=str(tmp_path), checkpoint_every=16)
        with supervised(
            thresholds, graph, subscriptions, config=config
        ) as engine:
            run_batches(engine, posts[:96])
            assert engine.supervisor.checkpoints_taken > 0
            (victim,) = [
                s for s in engine.supervisor._shards if s.index == 0
            ]
            path = victim.checkpoint.path
            with open(path, "rb") as fh:
                raw = fh.read()
            with open(path, "wb") as fh:
                fh.write(raw[: len(raw) // 2])
            victim.process.kill()
            with pytest.raises(CheckpointError):
                run_batches(engine, posts[96:128])

    def test_retiring_a_shard_unlinks_its_checkpoint_file(
        self, tmp_path, graph, subscriptions, thresholds, posts
    ):
        config = fast_config(checkpoint_dir=str(tmp_path), checkpoint_every=16)
        with supervised(
            thresholds, graph, subscriptions, config=config
        ) as engine:
            run_batches(engine, posts[:96])
            assert len(checkpoint_files(tmp_path)) == 3
            engine.merge_shards(0, 1)
            assert len(checkpoint_files(tmp_path)) == 2


class TestJournalDepthBound:
    def test_journal_never_exceeds_the_bound_in_a_long_run(
        self, graph, subscriptions, thresholds
    ):
        """Regression: the supervisor checkpoints whenever a journal turns
        full, so observed depth stays strictly under the bound across a
        long fault-free run (an enforced-at-append invariant since the
        depth limit became a hard error)."""
        from .conftest import make_posts

        config = fast_config(checkpoint_every=10_000, journal_limit=4)
        with supervised(
            thresholds, graph, subscriptions, config=config
        ) as engine:
            sup = engine.supervisor
            for chunk in [make_posts(600, seed=3)[i : i + 8] for i in range(0, 600, 8)]:
                engine.offer_batch(chunk)
                for shard in sup._shards:
                    assert len(shard.journal) < 4
            assert sup.checkpoints_taken > 0

    def test_forced_overflow_raises_not_truncates(
        self, graph, subscriptions, thresholds, posts
    ):
        """Bypassing the checkpoint cadence (as a buggy coordinator would)
        hits the hard depth bound instead of unbounded replay growth."""
        with supervised(thresholds, graph, subscriptions) as engine:
            shard = engine.supervisor._shards[0]
            with pytest.raises(JournalOverflowError):
                for i in range(100):
                    shard.journal.append(("batch", [i]), posts=0)
