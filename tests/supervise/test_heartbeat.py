"""Heartbeats: liveness detection that rides on traffic, not threads.

``maybe_heartbeat`` pings shards idle past the interval; a worker that
died *between* requests (no in-flight command to expose it) must be
found, respawned and restored before the next batch touches it.
"""

import time

from repro.multiuser import SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser

from .conftest import fast_config, run_batches


def supervised_engine(graph, subscriptions, thresholds, **overrides):
    return ParallelSharedMultiUser(
        "unibin",
        thresholds,
        graph,
        subscriptions,
        workers=3,
        supervised=True,
        supervision=fast_config(**overrides),
    )


class TestHeartbeat:
    def test_forced_heartbeat_pings_every_live_shard(
        self, graph, subscriptions, thresholds
    ):
        with supervised_engine(graph, subscriptions, thresholds) as engine:
            supervisor = engine.supervisor
            supervisor.maybe_heartbeat(force=True)
            assert supervisor.heartbeats_sent == 3
            assert supervisor.heartbeats_missed == 0

    def test_heartbeat_respects_interval(self, graph, subscriptions, thresholds):
        with supervised_engine(
            graph, subscriptions, thresholds, heartbeat_interval=3600.0
        ) as engine:
            supervisor = engine.supervisor
            supervisor.maybe_heartbeat()  # inside the interval: no pings
            assert supervisor.heartbeats_sent == 0

    def test_silent_worker_death_is_caught_and_healed(
        self, graph, subscriptions, thresholds, posts
    ):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        with supervised_engine(graph, subscriptions, thresholds) as engine:
            supervisor = engine.supervisor
            # Kill a worker out-of-band: no request is in flight, so only
            # the heartbeat can notice.
            victim = supervisor._shards[2].process
            victim.kill()
            victim.join(timeout=5.0)
            supervisor.maybe_heartbeat(force=True)
            assert supervisor.heartbeats_missed == 1
            assert supervisor.restarts_total == 1
            assert supervisor.is_live(2)
            assert run_batches(engine, posts) == expected
            assert (
                engine.aggregate_stats().snapshot()
                == serial.aggregate_stats().snapshot()
            )

    def test_mid_stream_kill_heals_via_journal(
        self, graph, subscriptions, thresholds, posts
    ):
        """Kill after acknowledged work exists: the heartbeat recovery
        must restore checkpoint + journal, keeping the stream exact."""
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        with supervised_engine(graph, subscriptions, thresholds) as engine:
            supervisor = engine.supervisor
            received = run_batches(engine, posts[:96])
            victim = supervisor._shards[0].process
            victim.kill()
            victim.join(timeout=5.0)
            time.sleep(0.06)  # fall idle past the heartbeat interval
            supervisor.maybe_heartbeat()
            assert supervisor.restarts_total == 1
            received.extend(run_batches(engine, posts[96:]))
            assert received == expected
            assert (
                engine.aggregate_stats().snapshot()
                == serial.aggregate_stats().snapshot()
            )
