"""Unsupervised failure surface: fail fast, name the culprit, leave no
zombies.

Without a supervisor the sharded engine must not hang forever on a dead
or wedged worker: every pipe ``recv`` carries the ``shard_deadline``, and
crash / hang / corrupt-reply all raise :class:`~repro.errors.
ParallelError` naming the shard and the in-flight command. ``close()``
must reap every worker afterwards — including one that ignores both
``stop`` and SIGTERM.
"""

import pytest

from repro.errors import ParallelError
from repro.multiuser import SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser
from repro.resilience import WorkerFaultPlan

from .conftest import run_batches


class TestWorkerFaultPlan:
    def test_action_schedule(self):
        plan = WorkerFaultPlan(crash_on_batch=2, slow_every=3, slow_seconds=0.01)
        assert plan.action_for(1) is None
        assert plan.action_for(2) == "crash"
        assert plan.action_for(3) == "slow"
        assert plan.action_for(6) == "slow"

    def test_one_shot_faults_fire_once(self):
        plan = WorkerFaultPlan(hang_on_batch=1)
        assert plan.action_for(1) == "hang"
        assert plan.action_for(2) is None


class TestUnsupervisedFailFast:
    def _engine(self, graph, subscriptions, thresholds, plan, **kwargs):
        return ParallelSharedMultiUser(
            "unibin",
            thresholds,
            graph,
            subscriptions,
            workers=2,
            fault_plans={0: plan},
            **kwargs,
        )

    def test_crashed_worker_raises_naming_shard_and_command(
        self, graph, subscriptions, thresholds, posts
    ):
        with self._engine(
            graph, subscriptions, thresholds, WorkerFaultPlan(crash_on_batch=1)
        ) as engine:
            with pytest.raises(ParallelError, match=r"shard 0 worker died.*'(shm_)?batch'"):
                run_batches(engine, posts)
        assert not any(p.is_alive() for p in engine._processes)

    def test_hung_worker_breaches_deadline_instead_of_blocking(
        self, graph, subscriptions, thresholds, posts
    ):
        engine = self._engine(
            graph,
            subscriptions,
            thresholds,
            WorkerFaultPlan(hang_on_batch=1),
            shard_deadline=0.4,
        )
        try:
            with pytest.raises(ParallelError, match=r"no reply to '(shm_)?batch'"):
                run_batches(engine, posts)
        finally:
            engine.close()
        # The hang injector ignores SIGTERM, so this asserts the
        # terminate -> kill escalation actually escalated.
        assert not any(p.is_alive() for p in engine._processes)

    def test_corrupt_reply_is_a_failure_not_a_crash(
        self, graph, subscriptions, thresholds, posts
    ):
        with self._engine(
            graph, subscriptions, thresholds, WorkerFaultPlan(corrupt_on_batch=1)
        ) as engine:
            with pytest.raises(ParallelError, match=r"corrupt reply to '(shm_)?batch'"):
                run_batches(engine, posts)

    def test_slow_worker_is_correct_just_late(
        self, graph, subscriptions, thresholds, posts
    ):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts[:96]]
        with self._engine(
            graph,
            subscriptions,
            thresholds,
            WorkerFaultPlan(slow_every=1, slow_seconds=0.01),
        ) as engine:
            assert run_batches(engine, posts[:96]) == expected

    def test_requests_after_close_are_rejected(
        self, graph, subscriptions, thresholds, posts
    ):
        engine = ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        )
        engine.close()
        with pytest.raises(ParallelError, match="already closed"):
            engine.offer_batch(posts[:4])

    def test_close_is_idempotent(self, graph, subscriptions, thresholds):
        engine = ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        )
        engine.close()
        engine.close()
        assert not any(p.is_alive() for p in engine._processes)
