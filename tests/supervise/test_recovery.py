"""The recovery acceptance bar: a crash must be *invisible*.

Every test injects a worker fault mid-stream into a supervised pool and
pits the result against the serial shared-component oracle: per-post
receiver sets, every RunStats counter, resident copies, and the
checkpoint snapshot must all be byte-identical to a run where nothing
ever failed.
"""

import pytest

from repro.multiuser import SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser
from repro.resilience import WorkerFaultPlan, snapshot_engine

from .conftest import ALGORITHMS, fast_config, run_batches


def serial_oracle(algorithm, thresholds, graph, subscriptions, posts):
    serial = SharedComponentMultiUser(algorithm, thresholds, graph, subscriptions)
    expected = [serial.offer(post) for post in posts]
    return serial, expected


def supervised(algorithm, thresholds, graph, subscriptions, *, plans, config=None):
    return ParallelSharedMultiUser(
        algorithm,
        thresholds,
        graph,
        subscriptions,
        workers=3,
        supervised=True,
        supervision=config if config is not None else fast_config(),
        fault_plans=plans,
    )


def assert_equivalent(engine, serial, received, expected):
    assert received == expected
    assert engine.aggregate_stats().snapshot() == serial.aggregate_stats().snapshot()
    assert engine.stored_copies() == serial.stored_copies()
    assert (
        snapshot_engine(engine)["components"]
        == snapshot_engine(serial)["components"]
    )


class TestCrashRecovery:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_crash_mid_stream_is_invisible(
        self, graph, subscriptions, thresholds, posts, algorithm
    ):
        serial, expected = serial_oracle(
            algorithm, thresholds, graph, subscriptions, posts
        )
        with supervised(
            algorithm,
            thresholds,
            graph,
            subscriptions,
            plans={0: WorkerFaultPlan(crash_on_batch=3)},
        ) as engine:
            received = run_batches(engine, posts)
            assert engine.supervisor.restarts_total == 1
            assert engine.supervisor.restarts_of(0) == 1
            assert engine.supervisor.degraded_shards() == ()
            assert_equivalent(engine, serial, received, expected)

    @pytest.mark.parametrize("workers", (2, 3))
    def test_worker_count_is_still_invisible_under_crashes(
        self, graph, subscriptions, thresholds, posts, workers
    ):
        serial, expected = serial_oracle(
            "unibin", thresholds, graph, subscriptions, posts
        )
        with ParallelSharedMultiUser(
            "unibin",
            thresholds,
            graph,
            subscriptions,
            workers=workers,
            supervised=True,
            supervision=fast_config(),
            fault_plans={i: WorkerFaultPlan(crash_on_batch=2 + i) for i in range(workers)},
        ) as engine:
            received = run_batches(engine, posts)
            assert engine.supervisor.restarts_total == workers
            assert_equivalent(engine, serial, received, expected)

    def test_journal_replay_rebuilds_unchecked_pointed_state(
        self, graph, subscriptions, thresholds, posts
    ):
        """With the checkpoint cadence pushed out of reach, recovery must
        come entirely from replaying the journalled batches."""
        serial, expected = serial_oracle(
            "cliquebin", thresholds, graph, subscriptions, posts
        )
        config = fast_config(checkpoint_every=10_000, journal_limit=500)
        with supervised(
            "cliquebin",
            thresholds,
            graph,
            subscriptions,
            plans={0: WorkerFaultPlan(crash_on_batch=4)},
            config=config,
        ) as engine:
            received = run_batches(engine, posts)
            # Three acknowledged batches preceded the crash; all three
            # must have been replayed into the replacement worker.
            assert engine.supervisor.replayed_commands == 3
            assert engine.supervisor.checkpoints_taken == 0
            assert_equivalent(engine, serial, received, expected)

    def test_recovery_latency_is_recorded(
        self, graph, subscriptions, thresholds, posts
    ):
        with supervised(
            "unibin",
            thresholds,
            graph,
            subscriptions,
            plans={1: WorkerFaultPlan(crash_on_batch=2)},
        ) as engine:
            run_batches(engine, posts)
            latencies = engine.supervisor.recovery_latencies
            assert len(latencies) == 1
            assert latencies[0] > 0


class TestHangRecovery:
    def test_hung_worker_is_killed_and_replaced(
        self, graph, subscriptions, thresholds, posts
    ):
        serial, expected = serial_oracle(
            "unibin", thresholds, graph, subscriptions, posts
        )
        with supervised(
            "unibin",
            thresholds,
            graph,
            subscriptions,
            plans={0: WorkerFaultPlan(hang_on_batch=2)},
            config=fast_config(deadline=0.4),
        ) as engine:
            received = run_batches(engine, posts)
            assert engine.supervisor.restarts_total == 1
            assert engine.supervisor.is_live(0)
            assert_equivalent(engine, serial, received, expected)


class TestCorruptReplyRecovery:
    @pytest.mark.parametrize("algorithm", ("neighborbin", "indexed_unibin"))
    def test_corrupt_reply_triggers_exact_recovery(
        self, graph, subscriptions, thresholds, posts, algorithm
    ):
        serial, expected = serial_oracle(
            algorithm, thresholds, graph, subscriptions, posts
        )
        with supervised(
            algorithm,
            thresholds,
            graph,
            subscriptions,
            plans={2: WorkerFaultPlan(corrupt_on_batch=3)},
        ) as engine:
            received = run_batches(engine, posts)
            assert engine.supervisor.restarts_total == 1
            assert_equivalent(engine, serial, received, expected)


class TestCheckpointInteroperability:
    def test_recovered_engine_checkpoint_restores_into_serial(
        self, graph, subscriptions, thresholds, posts
    ):
        """A snapshot taken after a crash+recovery must restore into the
        serial engine and continue identically — recovery leaves no scars
        in persisted state."""
        from repro.resilience import restore_engine

        serial, _ = serial_oracle(
            "unibin", thresholds, graph, subscriptions, posts[:160]
        )
        with supervised(
            "unibin",
            thresholds,
            graph,
            subscriptions,
            plans={0: WorkerFaultPlan(crash_on_batch=2)},
        ) as engine:
            run_batches(engine, posts[:160])
            snap = snapshot_engine(engine)
        snap["engine"] = "s_unibin"  # restore the shared serial flavour
        resumed = restore_engine(snap, graph=graph, subscriptions=subscriptions)
        for post in posts[160:]:
            assert resumed.offer(post) == serial.offer(post)
