"""Poison shards: exhaust the restart budget, degrade, never be wrong.

A shard whose fault survives respawns (``survive_restarts=True``) crashes
its replacement workers too; once the budget is spent the supervisor must
rebuild that shard's engines in-parent and serve them serially — with
receiver sets, stats and checkpoints still byte-identical to the
fault-free serial run.
"""

import pytest

from repro.errors import ParallelError
from repro.multiuser import SharedComponentMultiUser
from repro.parallel import ParallelSharedMultiUser
from repro.resilience import WorkerFaultPlan, snapshot_engine

from .conftest import ALGORITHMS, fast_config, run_batches

POISON = WorkerFaultPlan(crash_on_batch=2, survive_restarts=True)


def poisoned_engine(algorithm, thresholds, graph, subscriptions, *, max_restarts=2):
    return ParallelSharedMultiUser(
        algorithm,
        thresholds,
        graph,
        subscriptions,
        workers=3,
        supervised=True,
        supervision=fast_config(max_restarts=max_restarts),
        fault_plans={1: POISON},
    )


class TestDegradation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_poison_shard_degrades_and_stays_exact(
        self, graph, subscriptions, thresholds, posts, algorithm
    ):
        serial = SharedComponentMultiUser(algorithm, thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        with poisoned_engine(algorithm, thresholds, graph, subscriptions) as engine:
            received = run_batches(engine, posts)
            supervisor = engine.supervisor
            assert supervisor.degraded_shards() == (1,)
            assert supervisor.is_degraded(1)
            assert supervisor.restarts_of(1) == 2  # full budget spent
            assert supervisor.degradations == 1
            assert not supervisor.is_live(1)
            assert supervisor.is_live(0) and supervisor.is_live(2)
            assert received == expected
            assert (
                engine.aggregate_stats().snapshot()
                == serial.aggregate_stats().snapshot()
            )
            assert engine.stored_copies() == serial.stored_copies()
            assert (
                snapshot_engine(engine)["components"]
                == snapshot_engine(serial)["components"]
            )

    def test_zero_budget_degrades_without_respawning(
        self, graph, subscriptions, thresholds, posts
    ):
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = [serial.offer(post) for post in posts]
        with poisoned_engine(
            "unibin", thresholds, graph, subscriptions, max_restarts=0
        ) as engine:
            received = run_batches(engine, posts)
            assert engine.supervisor.restarts_total == 0
            assert engine.supervisor.degradations == 1
            assert received == expected

    def test_degraded_shard_keeps_serving_writes(
        self, graph, subscriptions, thresholds, posts
    ):
        """purge and load flow through the in-parent server like any
        other command — and journaling is off (there is no worker whose
        loss could need a replay)."""
        with poisoned_engine("unibin", thresholds, graph, subscriptions) as engine:
            run_batches(engine, posts[:96])
            assert engine.supervisor.is_degraded(1)
            engine.purge(posts[95].timestamp + 1000.0)
            assert engine.supervisor.journal_depth(1) == 0
            state = engine.state_dict()
            engine.load_state(state)
            assert engine.state_dict() == state

    def test_status_reports_degradation(
        self, graph, subscriptions, thresholds, posts
    ):
        with poisoned_engine("unibin", thresholds, graph, subscriptions) as engine:
            run_batches(engine, posts[:96])
            status = engine.supervision_status()
            assert status["degraded_shards"] == [1]
            assert status["live_shards"] == 2
            assert status["shards"] == 3
            assert status["degradations"] == 1
            assert status["restarts"] == 2

    def test_unsupervised_engine_reports_no_status(
        self, graph, subscriptions, thresholds
    ):
        with ParallelSharedMultiUser(
            "unibin", thresholds, graph, subscriptions, workers=2
        ) as engine:
            assert engine.supervisor is None
            assert engine.supervision_status() is None

    def test_close_after_degradation_leaves_no_processes(
        self, graph, subscriptions, thresholds, posts
    ):
        engine = poisoned_engine("unibin", thresholds, graph, subscriptions)
        run_batches(engine, posts[:96])
        engine.close()
        with pytest.raises(ParallelError, match="already closed"):
            engine.offer_batch(posts[:4])
