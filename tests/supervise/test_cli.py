"""The --supervise family of CLI flags.

A supervised run must produce the same receiver trace as the serial
engine, print its supervision accounting, and flow through checkpoint
resume; the flags must be rejected outside multi-user sharded mode.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.io import write_graph_json, write_posts_jsonl, write_subscriptions_json
from repro.multiuser import SharedComponentMultiUser

from .conftest import make_posts


@pytest.fixture()
def world_files(tmp_path, graph, subscriptions):
    posts = make_posts(n=120, seed=5)
    posts_path = tmp_path / "posts.jsonl"
    graph_path = tmp_path / "graph.json"
    subs_path = tmp_path / "subscriptions.json"
    write_posts_jsonl(posts, posts_path)
    write_graph_json(graph, graph_path)
    write_subscriptions_json(subscriptions, subs_path)
    return posts, posts_path, graph_path, subs_path


def _lambda_args(thresholds):
    return [
        "--lambda-c", str(thresholds.lambda_c),
        "--lambda-t", str(thresholds.lambda_t),
        "--lambda-a", str(thresholds.lambda_a),
    ]


def _receivers_by_post(path):
    import json

    out = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            out[record["post_id"]] = sorted(record["receivers"])
    return out


class TestSupervisedCli:
    def test_supervised_run_matches_serial_engine(
        self, tmp_path, world_files, graph, subscriptions, thresholds, capsys
    ):
        posts, posts_path, graph_path, subs_path = world_files
        out_path = tmp_path / "receivers.jsonl"
        rc = main(
            [
                "diversify",
                "--posts", str(posts_path),
                "--graph", str(graph_path),
                "--subscriptions", str(subs_path),
                "--workers", "2",
                "--supervise",
                "--heartbeat-interval", "0.5",
                "--max-restarts", "2",
                "--shard-deadline", "20",
                "--output", str(out_path),
                *_lambda_args(thresholds),
            ]
        )
        assert rc == 0
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = {
            post.post_id: sorted(receivers)
            for post in posts
            if (receivers := serial.offer(post))
        }
        assert _receivers_by_post(out_path) == expected
        captured = capsys.readouterr()
        assert "supervision: 2/2 shards live" in captured.err

    def test_supervised_checkpoint_resume_round_trip(
        self, tmp_path, world_files, graph, subscriptions, thresholds
    ):
        posts, posts_path, graph_path, subs_path = world_files
        half = len(posts) // 2
        first_path = tmp_path / "first.jsonl"
        rest_path = tmp_path / "rest.jsonl"
        write_posts_jsonl(posts[:half], first_path)
        write_posts_jsonl(posts[half:], rest_path)
        ckpt = tmp_path / "ckpt.json"
        common = [
            "--graph", str(graph_path),
            "--subscriptions", str(subs_path),
            "--workers", "2",
            "--supervise",
            *_lambda_args(thresholds),
        ]
        assert main(
            ["diversify", "--posts", str(first_path), *common,
             "--checkpoint-out", str(ckpt)]
        ) == 0
        out_path = tmp_path / "resumed.jsonl"
        assert main(
            ["diversify", "--posts", str(rest_path), *common,
             "--resume-from", str(ckpt), "--output", str(out_path)]
        ) == 0
        serial = SharedComponentMultiUser("unibin", thresholds, graph, subscriptions)
        expected = {
            post.post_id: sorted(receivers)
            for i, post in enumerate(posts)
            if (receivers := serial.offer(post)) and i >= half
        }
        assert _receivers_by_post(out_path) == expected

    def test_supervise_requires_subscriptions(self, world_files):
        _, posts_path, _, _ = world_files
        assert main(
            ["diversify", "--posts", str(posts_path), "--supervise"]
        ) == 2

    def test_supervise_rejected_in_dynamic_single_user_mode(
        self, tmp_path, world_files
    ):
        import json

        _, _, _, _ = world_files
        events_path = tmp_path / "events.jsonl"
        events_path.write_text("", encoding="utf-8")
        friends_path = tmp_path / "friends.json"
        friends_path.write_text(json.dumps({"1": [2]}), encoding="utf-8")
        rc = main(
            [
                "diversify",
                "--events", str(events_path),
                "--friends", str(friends_path),
                "--supervise",
            ]
        )
        assert rc == 2

    def test_unsupervised_run_prints_no_supervision_line(
        self, tmp_path, world_files, thresholds, capsys
    ):
        _, posts_path, graph_path, subs_path = world_files
        rc = main(
            [
                "diversify",
                "--posts", str(posts_path),
                "--graph", str(graph_path),
                "--subscriptions", str(subs_path),
                "--workers", "2",
                *_lambda_args(thresholds),
            ]
        )
        assert rc == 0
        assert "supervision:" not in capsys.readouterr().err
