"""Shared fixtures: a paper-example world and a session-scoped dataset."""

from __future__ import annotations

import pytest

from repro.authors import AuthorGraph
from repro.core import Post, Thresholds
from repro.social import small_dataset


@pytest.fixture(scope="session")
def dataset():
    """A small but realistic dataset, built once per session."""
    return small_dataset()


@pytest.fixture()
def paper_graph() -> AuthorGraph:
    """The author graph of the paper's running example (Figure 5a):
    a1–a2, a1–a3, a2–a3 form a triangle; a3–a4 hangs off it."""
    return AuthorGraph(
        nodes=[1, 2, 3, 4],
        edges=[(1, 2), (1, 3), (2, 3), (3, 4)],
    )


def fp(bits: int) -> int:
    """Fingerprint with ``bits`` low bits set (Hamming distance from zero
    equals ``bits``)."""
    return (1 << bits) - 1


@pytest.fixture()
def paper_posts() -> list[Post]:
    """Posts enacting the paper's Figure 5b/6 walk-through with λc = 3,
    λt = 100:

    * P1 (a1, t=0): baseline fingerprint.
    * P2 (a2, t=1): far from P1 in content → admitted.
    * P3 (a3, t=2): content-close to P1, far from P2; a1~a3 → covered by P1.
    * P4 (a4, t=3): far from P1 and P2 → admitted.
    * P5 (a3, t=4): content-close to P4; a3~a4 → covered by P4.
    """
    base = 0
    far = fp(10)  # 10 bits away from base
    very_far = fp(20) << 30  # far from both base and far
    near_p4 = very_far ^ 0b11  # 2 bits from P4
    return [
        Post(post_id=1, author=1, text="p1", timestamp=0.0, fingerprint=base),
        Post(post_id=2, author=2, text="p2", timestamp=1.0, fingerprint=far),
        Post(post_id=3, author=3, text="p3", timestamp=2.0, fingerprint=base ^ 0b1),
        Post(post_id=4, author=4, text="p4", timestamp=3.0, fingerprint=very_far),
        Post(post_id=5, author=3, text="p5", timestamp=4.0, fingerprint=near_p4),
    ]


@pytest.fixture()
def paper_thresholds() -> Thresholds:
    """λc = 3, λt = 100 s; λa is embodied by the example graph's edges."""
    return Thresholds(lambda_c=3, lambda_t=100.0, lambda_a=0.7)
