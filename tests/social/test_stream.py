"""Tests for repro.social.stream — the Poisson duplicate-injecting stream."""

import pytest

from repro.errors import DatasetError
from repro.social import (
    DuplicateFactory,
    StreamConfig,
    TextGenerator,
    Vocabulary,
    generate_stream,
)


@pytest.fixture(scope="module")
def world():
    vocab = Vocabulary(topics=4, seed=61)
    generator = TextGenerator(vocab, seed=62)
    factory = DuplicateFactory(generator, seed=63)
    return generator, factory


@pytest.fixture(scope="module")
def stream(world):
    generator, factory = world
    authors = list(range(40))
    community = {a: a % 4 for a in authors}
    config = StreamConfig(
        duration=4 * 3600.0, posts_per_author_per_day=30.0, seed=64
    )
    similar = {a: [b for b in authors if b % 4 == a % 4 and b != a] for a in authors}
    return generate_stream(
        authors, community, generator, factory, config, similar_authors=similar
    )


class TestConfigValidation:
    def test_bad_duration(self):
        with pytest.raises(DatasetError):
            StreamConfig(duration=0)

    def test_bad_rate(self):
        with pytest.raises(DatasetError):
            StreamConfig(posts_per_author_per_day=0)

    def test_bad_probability(self):
        with pytest.raises(DatasetError):
            StreamConfig(duplicate_prob=1.5)


class TestStreamShape:
    def test_expected_count(self, stream):
        # 40 authors × 30/day × (4/24 day) = 200
        assert len(stream.posts) == 200

    def test_timestamp_ordered(self, stream):
        times = [p.timestamp for p in stream.posts]
        assert times == sorted(times)

    def test_post_ids_sequential(self, stream):
        assert [p.post_id for p in stream.posts] == list(range(200))

    def test_authors_in_universe(self, stream):
        assert all(0 <= p.author < 40 for p in stream.posts)

    def test_fingerprints_computed(self, stream):
        assert all(p.fingerprint >= 0 for p in stream.posts)
        assert any(p.fingerprint > 0 for p in stream.posts)

    def test_duplicates_exist(self, stream):
        assert stream.duplicate_count > 0
        assert stream.redundant_count > 0
        assert stream.redundant_count <= stream.duplicate_count


class TestProvenance:
    def test_sources_are_earlier(self, stream):
        posts = {p.post_id: p for p in stream.posts}
        for pid, prov in stream.provenance.items():
            assert prov.source_post_id < pid
            assert (
                posts[pid].timestamp >= posts[prov.source_post_id].timestamp
            )

    def test_lag_bounded(self, stream):
        posts = {p.post_id: p for p in stream.posts}
        for pid, prov in stream.provenance.items():
            lag = posts[pid].timestamp - posts[prov.source_post_id].timestamp
            assert lag <= StreamConfig().far_lag_max

    def test_redundant_flag_matches_damage(self, stream):
        from repro.social import REDUNDANT_DAMAGE_LIMIT

        for prov in stream.provenance.values():
            assert prov.redundant == (prov.damage < REDUNDANT_DAMAGE_LIMIT)

    def test_duplicate_authors_mostly_similar(self, stream):
        """With similar_author_prob=0.78+ default, most duplicates should be
        authored by someone in the source's similar set (same community here)."""
        posts = {p.post_id: p for p in stream.posts}
        similar = 0
        for pid, prov in stream.provenance.items():
            a = posts[pid].author
            b = posts[prov.source_post_id].author
            if a % 4 == b % 4:
                similar += 1
        assert similar / stream.duplicate_count > 0.5


class TestTransforms:
    def test_subsample_ratio(self, stream):
        sub = stream.subsample_posts(0.5, seed=1)
        assert 0 < len(sub.posts) < len(stream.posts)
        assert set(p.post_id for p in sub.posts) <= {p.post_id for p in stream.posts}
        assert set(sub.provenance) <= {p.post_id for p in sub.posts}

    def test_subsample_bad_ratio(self, stream):
        with pytest.raises(DatasetError):
            stream.subsample_posts(0.0)
        with pytest.raises(DatasetError):
            stream.subsample_posts(1.5)

    def test_subsample_full(self, stream):
        assert len(stream.subsample_posts(1.0).posts) == len(stream.posts)

    def test_restrict_to_authors(self, stream):
        kept_authors = set(range(10))
        sub = stream.restrict_to_authors(kept_authors)
        assert all(p.author in kept_authors for p in sub.posts)
        assert set(sub.community) == kept_authors & set(stream.community)


class TestValidationErrors:
    def test_no_authors(self, world):
        generator, factory = world
        with pytest.raises(DatasetError):
            generate_stream([], {}, generator, factory)

    def test_missing_community(self, world):
        generator, factory = world
        with pytest.raises(DatasetError):
            generate_stream([1, 2], {1: 0}, generator, factory)
