"""Tests for the abbreviate perturbation operator."""

import random

from repro.simhash import ABBREVIATIONS
from repro.social.duplication import abbreviate


def rng():
    return random.Random(5)


class TestAbbreviate:
    def test_compresses_known_words(self):
        result = abbreviate("thanks for the update people", rng())
        assert result.damage == 0.0
        tokens = result.text.split()
        assert "thx" in tokens or "thanks" in tokens  # 0.8 per-word chance
        assert result.operator in ("abbreviate", "noop")

    def test_no_expandable_words_is_noop(self):
        result = abbreviate("zygote quark flux", rng())
        assert result.operator == "noop"
        assert result.text == "zygote quark flux"

    def test_only_single_word_expansions_inverted(self):
        """Multi-word expansions ("by the way") cannot be inverted from a
        single token and must never be produced."""
        text = " ".join(
            long for long in ABBREVIATIONS.values() if " " not in long
        )
        result = abbreviate(text, rng())
        inverse = {v: k for k, v in ABBREVIATIONS.items() if " " not in v}
        for token in result.text.split():
            # Every output token is either an original word or its shorthand.
            assert token in inverse or token in inverse.values() or token in text

    def test_case_insensitive_match(self):
        result = abbreviate("Thanks Thanks Thanks Thanks Thanks", random.Random(1))
        assert "thx" in result.text.split()

    def test_round_trips_with_expansion(self):
        """abbreviate ∘ expand_abbreviations restores single-word forms."""
        from repro.simhash import expand_abbreviations

        text = "thanks for the great update please people"
        compressed = abbreviate(text, random.Random(3)).text
        assert expand_abbreviations(compressed) == text
