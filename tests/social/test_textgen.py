"""Tests for repro.social.textgen."""

import random
import re

from repro.social import (
    TextGenerator,
    Vocabulary,
    random_handle,
    random_short_url,
)


class TestHelpers:
    def test_short_url_format(self):
        url = random_short_url(random.Random(1))
        assert re.fullmatch(r"http://t\.co/\w{10}", url)

    def test_handle_format(self):
        handle = random_handle(random.Random(1))
        assert re.fullmatch(r"@[a-z]{5,10}", handle)

    def test_urls_vary(self):
        rng = random.Random(2)
        assert len({random_short_url(rng) for _ in range(20)}) == 20


class TestTextGenerator:
    def setup_method(self):
        self.vocab = Vocabulary(topics=4, seed=3)
        self.generator = TextGenerator(self.vocab, seed=4)

    def test_fresh_nonempty(self):
        post = self.generator.fresh(0)
        assert post.text.strip()
        assert post.topic == 0

    def test_deterministic_with_rng(self):
        a = TextGenerator(self.vocab, seed=9).fresh(1)
        b = TextGenerator(self.vocab, seed=9).fresh(1)
        assert a.text == b.text

    def test_word_count_in_range(self):
        rng = random.Random(5)
        for _ in range(50):
            text = self.generator.fresh(2, rng=rng).text
            # 6-16 core words plus up to ~5 decorations
            assert 5 <= len(text.split()) <= 25

    def test_url_target_set_when_url_present(self):
        rng = random.Random(6)
        for _ in range(100):
            post = self.generator.fresh(1, rng=rng)
            has_url = "http://t.co/" in post.text
            assert (post.url_target is not None) == has_url

    def test_topics_use_different_vocabulary(self):
        rng = random.Random(7)
        words0 = set()
        words1 = set()
        for _ in range(40):
            words0.update(self.generator.fresh(0, rng=rng).text.lower().split())
            words1.update(self.generator.fresh(1, rng=rng).text.lower().split())
        topic0 = set(self.vocab.topic_samplers[0].items)
        topic1 = set(self.vocab.topic_samplers[1].items)
        assert words0 & topic0
        assert not (words1 & topic0 - topic1) or True  # overlap via global ok
        assert words1 & topic1

    def test_agency_longform_keeps_prefix(self):
        rng = random.Random(8)
        base = self.generator.fresh(0, rng=rng)
        long = self.generator.agency_longform(base, rng=rng)
        headline = base.text.split(" http://t.co/")[0]
        assert long.startswith(headline + ":")
        assert "..." in long
        assert "http://t.co/" in long
