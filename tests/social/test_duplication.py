"""Tests for repro.social.duplication — operators and labelled pairs."""

import random

from repro.simhash import hamming, simhash
from repro.social import DuplicateFactory, TextGenerator, Vocabulary
from repro.social.duplication import (
    REDUNDANT_DAMAGE_LIMIT,
    add_hashtags,
    casing_noise,
    punctuation_noise,
    reshorten_urls,
    retweet,
    rewrite_tail,
    substitute_words,
    truncate,
    word_dropout,
)


def rng():
    return random.Random(11)


class TestSurfaceOperators:
    """Damage-0 operators: same information, different surface."""

    def test_reshorten_urls_changes_slug_only(self):
        text = "big story http://t.co/aaaaaaaaaa tonight"
        result = reshorten_urls(text, rng())
        assert result.damage == 0.0
        assert result.text != text
        assert result.text.split()[0] == "big"
        assert "http://t.co/" in result.text

    def test_reshorten_no_url_is_noop(self):
        result = reshorten_urls("no links here", rng())
        assert result.operator == "noop"
        assert result.text == "no links here"

    def test_retweet_prefixes(self):
        result = retweet("original text", rng())
        assert result.text.startswith("RT @")
        assert result.text.endswith("original text")
        assert result.damage == 0.0

    def test_add_hashtags_appends(self):
        result = add_hashtags("market rally continues strongly", rng())
        assert result.damage == 0.0
        assert "#" in result.text
        assert result.text.startswith("market rally continues strongly")

    def test_casing_noise_same_words(self):
        text = "alpha beta gamma delta epsilon"
        result = casing_noise(text, rng())
        assert result.damage == 0.0
        assert [w.lower() for w in result.text.split()] == text.split()

    def test_punctuation_noise_zero_damage(self):
        assert punctuation_noise("some words here now", rng()).damage == 0.0

    def test_surface_ops_small_normalized_distance(self):
        """The Figure 3→4 mechanism: surface edits barely move the
        normalised fingerprint."""
        text = "markets rally after strong earnings reports from tech giants"
        for op in (casing_noise, punctuation_noise):
            variant = op(text, rng()).text
            assert hamming(simhash(text), simhash(variant)) <= 6


class TestDamagingOperators:
    def test_truncate_damage(self):
        text = "one two three four five six seven eight nine ten"
        result = truncate(text, rng())
        assert result.damage == 0.5
        assert result.text.endswith("...")

    def test_truncate_short_text_noop(self):
        result = truncate("a b c", rng())
        assert result.operator == "noop"

    def test_word_dropout_damage_scales(self):
        text = "one two three four five six seven eight"
        result = word_dropout(text, rng(), count=2)
        assert result.damage == 1.0
        assert len(result.text.split()) == 6

    def test_substitute_words_damage(self):
        result = substitute_words(
            "alpha beta gamma delta", rng(), ["sub1", "sub2"], count=2
        )
        assert result.damage == 2.0

    def test_rewrite_tail_heavy_damage(self):
        result = rewrite_tail(
            "one two three four five six", rng(), ["x", "y", "z"]
        )
        assert result.damage == 3.0
        assert result.text.startswith("one two three")


class TestDuplicateFactory:
    def setup_method(self):
        vocab = Vocabulary(topics=4, seed=21)
        self.generator = TextGenerator(vocab, seed=22)
        self.factory = DuplicateFactory(self.generator, seed=23)

    def test_pair_fields(self):
        base = self.generator.fresh(0)
        pair = self.factory.variant_of(base, intensity=0.3)
        assert pair.original == base.text
        assert pair.variant
        assert pair.damage >= 0.0
        assert pair.redundant == (pair.damage < REDUNDANT_DAMAGE_LIMIT)

    def test_redundant_variant_always_redundant(self):
        r = random.Random(31)
        for _ in range(60):
            base = self.generator.fresh(r.randrange(4), rng=r)
            assert self.factory.redundant_variant(base, rng=r).redundant

    def test_intensity_raises_damage_statistically(self):
        r = random.Random(41)
        low = [
            self.factory.variant_of(self.generator.fresh(0, rng=r), intensity=0.1, rng=r).damage
            for _ in range(100)
        ]
        high = [
            self.factory.variant_of(self.generator.fresh(0, rng=r), intensity=0.9, rng=r).damage
            for _ in range(100)
        ]
        assert sum(high) / len(high) > sum(low) / len(low)

    def test_intensity_raises_distance_statistically(self):
        r = random.Random(51)

        def mean_distance(intensity):
            total = 0
            for _ in range(60):
                base = self.generator.fresh(1, rng=r)
                pair = self.factory.variant_of(base, intensity=intensity, rng=r)
                total += hamming(simhash(pair.original), simhash(pair.variant))
            return total / 60

        assert mean_distance(0.9) > mean_distance(0.1)
