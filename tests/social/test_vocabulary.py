"""Tests for repro.social.vocabulary."""

import random
from collections import Counter

import pytest

from repro.social import Vocabulary, ZipfSampler, build_word_list


class TestBuildWordList:
    def test_size_and_uniqueness(self):
        words = build_word_list(500, random.Random(1))
        assert len(words) == 500
        assert len(set(words)) == 500

    def test_deterministic(self):
        assert build_word_list(300, random.Random(7)) == build_word_list(
            300, random.Random(7)
        )

    def test_small_size_uses_seed_lexicon(self):
        words = build_word_list(10, random.Random(1))
        assert words[0] == "the"


class TestZipfSampler:
    def test_requires_items(self):
        with pytest.raises(ValueError):
            ZipfSampler([])

    def test_sample_in_items(self):
        sampler = ZipfSampler(["a", "b", "c"])
        rng = random.Random(3)
        assert all(sampler.sample(rng) in {"a", "b", "c"} for _ in range(50))

    def test_skew_toward_low_ranks(self):
        sampler = ZipfSampler([str(i) for i in range(100)])
        rng = random.Random(5)
        counts = Counter(sampler.sample(rng) for _ in range(5000))
        assert counts["0"] > counts["50"]
        assert counts["0"] > counts["99"]

    def test_sample_many(self):
        sampler = ZipfSampler(["x", "y"])
        assert len(sampler.sample_many(random.Random(1), 7)) == 7


class TestVocabulary:
    def test_topic_count(self):
        vocab = Vocabulary(topics=5, seed=1)
        assert vocab.topic_count == 5

    def test_topic_words_disjoint_from_global(self):
        vocab = Vocabulary(global_size=100, topics=2, topic_words=20, seed=1)
        global_words = set(vocab.global_sampler.items)
        for sampler in vocab.topic_samplers:
            assert not (set(sampler.items) & global_words)

    def test_topics_disjoint_from_each_other(self):
        vocab = Vocabulary(global_size=50, topics=3, topic_words=10, seed=1)
        seen: set[str] = set()
        for sampler in vocab.topic_samplers:
            words = set(sampler.items)
            assert not (words & seen)
            seen |= words

    def test_words_mix_topic_and_global(self):
        vocab = Vocabulary(global_size=200, topics=2, topic_words=50, seed=2)
        rng = random.Random(9)
        drawn = set(vocab.words(rng, 300, topic=0, topical_prob=0.5))
        topic_words = set(vocab.topic_samplers[0].items)
        assert drawn & topic_words
        assert drawn - topic_words

    def test_topic_wraps_modulo(self):
        vocab = Vocabulary(topics=3, seed=1)
        rng = random.Random(4)
        # topic index beyond range must not raise
        vocab.word(rng, topic=10)
