"""Tests for bursty arrival generation (flash crowds)."""

import pytest

from repro.errors import DatasetError
from repro.social import (
    DuplicateFactory,
    StreamConfig,
    TextGenerator,
    Vocabulary,
    generate_stream,
)


def build(config):
    vocab = Vocabulary(topics=2, seed=81)
    generator = TextGenerator(vocab, seed=82)
    factory = DuplicateFactory(generator, seed=83)
    authors = list(range(20))
    community = {a: a % 2 for a in authors}
    return generate_stream(authors, community, generator, factory, config)


class TestBurstValidation:
    def test_center_outside_duration(self):
        with pytest.raises(DatasetError):
            StreamConfig(duration=100.0, bursts=((200.0, 10.0, 5.0),))

    def test_bad_width(self):
        with pytest.raises(DatasetError):
            StreamConfig(duration=100.0, bursts=((50.0, 0.0, 5.0),))

    def test_bad_intensity(self):
        with pytest.raises(DatasetError):
            StreamConfig(duration=100.0, bursts=((50.0, 10.0, -1.0),))


class TestBurstyArrivals:
    def test_total_count_unchanged(self):
        base = StreamConfig(
            duration=4 * 3600.0, posts_per_author_per_day=60.0, seed=84
        )
        bursty = StreamConfig(
            duration=4 * 3600.0,
            posts_per_author_per_day=60.0,
            bursts=((7200.0, 1800.0, 8.0),),
            seed=84,
        )
        assert len(build(base).posts) == len(build(bursty).posts)

    def test_burst_window_is_denser(self):
        config = StreamConfig(
            duration=4 * 3600.0,
            posts_per_author_per_day=120.0,
            bursts=((7200.0, 1800.0, 8.0),),
            seed=85,
        )
        stream = build(config)
        in_burst = sum(
            1 for p in stream.posts if 6300.0 <= p.timestamp < 8100.0
        )
        window_fraction = 1800.0 / (4 * 3600.0)
        # Without the burst ~12.5% of posts fall in the window; with
        # intensity 8 the window rate is 9x the baseline.
        assert in_burst / len(stream.posts) > 3 * window_fraction

    def test_still_ordered(self):
        config = StreamConfig(
            duration=2 * 3600.0,
            posts_per_author_per_day=60.0,
            bursts=((1800.0, 600.0, 5.0), (5400.0, 600.0, 3.0)),
            seed=86,
        )
        times = [p.timestamp for p in build(config).posts]
        assert times == sorted(times)
        assert all(0.0 <= t <= 2 * 3600.0 for t in times)

    def test_no_bursts_unaffected(self):
        a = StreamConfig(duration=3600.0, posts_per_author_per_day=30.0, seed=87)
        b = StreamConfig(
            duration=3600.0, posts_per_author_per_day=30.0, bursts=(), seed=87
        )
        assert [p.timestamp for p in build(a).posts] == [
            p.timestamp for p in build(b).posts
        ]
