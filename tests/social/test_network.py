"""Tests for repro.social.network — the follower-network generator."""

import pytest

from repro.errors import DatasetError
from repro.social import NetworkConfig, generate_network


class TestConfigValidation:
    def test_too_few_authors(self):
        with pytest.raises(DatasetError):
            NetworkConfig(n_authors=1)

    def test_bad_communities(self):
        with pytest.raises(DatasetError):
            NetworkConfig(n_authors=10, n_communities=11)
        with pytest.raises(DatasetError):
            NetworkConfig(n_authors=10, n_communities=0)

    def test_bad_probability(self):
        with pytest.raises(DatasetError):
            NetworkConfig(in_community_prob=1.2)

    def test_bad_affinity_floor(self):
        with pytest.raises(DatasetError):
            NetworkConfig(in_community_prob=0.5, min_community_affinity=0.6)

    def test_bad_followees(self):
        with pytest.raises(DatasetError):
            NetworkConfig(mean_followees=0)


class TestGeneration:
    @pytest.fixture(scope="class")
    def network(self):
        return generate_network(NetworkConfig(n_authors=300, n_communities=6, seed=5))

    def test_all_authors_present(self, network):
        assert network.n_authors == 300
        assert set(network.followees) == set(range(300))

    def test_no_self_follow(self, network):
        for author, follows in network.followees.items():
            assert author not in follows

    def test_followees_in_universe(self, network):
        for follows in network.followees.values():
            assert all(0 <= f < 300 for f in follows)

    def test_every_author_follows_someone(self, network):
        assert all(len(f) >= 1 for f in network.followees.values())

    def test_communities_assigned(self, network):
        assert set(network.community) == set(range(300))
        assert set(network.community.values()) <= set(range(6))

    def test_celebrities_exist(self, network):
        assert len(network.celebrities) == 3  # 1% of 300

    def test_deterministic(self):
        config = NetworkConfig(n_authors=100, n_communities=4, seed=9)
        assert generate_network(config).followees == generate_network(config).followees

    def test_seed_changes_network(self):
        a = generate_network(NetworkConfig(n_authors=100, n_communities=4, seed=1))
        b = generate_network(NetworkConfig(n_authors=100, n_communities=4, seed=2))
        assert a.followees != b.followees

    def test_community_bias(self, network):
        """Follows should skew toward the author's own community."""
        in_community = 0
        total = 0
        for author, follows in network.followees.items():
            own = network.community[author]
            for f in follows:
                total += 1
                if network.community[f] == own:
                    in_community += 1
        # Community share at random would be ~1/6; the bias must beat it
        # clearly even with heterogeneous affinity.
        assert in_community / total > 0.3

    def test_followers_of_inverse(self, network):
        author = 0
        followers = network.followers_of(author)
        assert all(author in network.followees[f] for f in followers)

    def test_members_of(self, network):
        members = network.members_of(0)
        assert all(network.community[m] == 0 for m in members)
        assert sum(len(network.members_of(c)) for c in range(6)) == 300
