"""Tests for repro.social.sampling — BFS author sampling."""

import pytest

from repro.errors import DatasetError
from repro.social import NetworkConfig, bfs_sample, generate_network


@pytest.fixture(scope="module")
def network():
    return generate_network(NetworkConfig(n_authors=200, n_communities=4, seed=3))


class TestBfsSample:
    def test_sample_size(self, network):
        assert len(bfs_sample(network, 50)) == 50

    def test_no_duplicates(self, network):
        sample = bfs_sample(network, 120)
        assert len(set(sample)) == 120

    def test_full_sample(self, network):
        assert sorted(bfs_sample(network, 200)) == list(range(200))

    def test_deterministic(self, network):
        assert bfs_sample(network, 60, seed=7) == bfs_sample(network, 60, seed=7)

    def test_seed_changes_sample(self, network):
        assert bfs_sample(network, 60, seed=1) != bfs_sample(network, 60, seed=2)

    def test_invalid_sizes(self, network):
        with pytest.raises(DatasetError):
            bfs_sample(network, 0)
        with pytest.raises(DatasetError):
            bfs_sample(network, 201)

    def test_bfs_connectivity(self, network):
        """Each sampled author after the first must be adjacent (undirected)
        to some earlier-sampled author, unless a BFS restart occurred —
        detectable as a node with no earlier neighbour; restarts only happen
        when the previous frontier was exhausted."""
        sample = bfs_sample(network, 100, seed=5)
        adjacency = {a: set(f) for a, f in network.followees.items()}
        for a, follows in network.followees.items():
            for b in follows:
                adjacency[b].add(a)
        seen = {sample[0]}
        restarts = 0
        for node in sample[1:]:
            if not (adjacency[node] & seen):
                restarts += 1
            seen.add(node)
        # The synthetic network is essentially one weak component.
        assert restarts <= 2
