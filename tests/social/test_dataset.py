"""Tests for repro.social.dataset — the full §6.1 pipeline."""

import pytest

from repro.errors import DatasetError
from repro.social import DatasetConfig, NetworkConfig, StreamConfig, build_dataset


@pytest.fixture(scope="module")
def built():
    return build_dataset(
        DatasetConfig(
            network=NetworkConfig(n_authors=150, n_communities=5, seed=71),
            stream=StreamConfig(
                duration=2 * 3600.0, posts_per_author_per_day=24.0, seed=72
            ),
            sample_size=100,
        )
    )


class TestBuild:
    def test_sampled_author_count(self, built):
        assert len(built.authors) == 100
        assert len(built.vectors) == 100

    def test_posts_only_from_sampled_authors(self, built):
        sampled = set(built.authors)
        assert all(p.author in sampled for p in built.posts)

    def test_similarities_cover_positive_pairs(self, built):
        for (a, b), sim in built.similarities.items():
            assert a < b
            assert 0 < sim <= 1.0 + 1e-9

    def test_sample_size_validation(self):
        with pytest.raises(DatasetError):
            DatasetConfig(
                network=NetworkConfig(n_authors=50, n_communities=2),
                sample_size=60,
            )


class TestGraphCache:
    def test_graph_cached_per_lambda(self, built):
        assert built.graph(0.7) is built.graph(0.7)
        assert built.graph(0.7) is not built.graph(0.8)

    def test_graph_matches_similarities(self, built):
        graph = built.graph(0.7)
        for (a, b), sim in built.similarities.items():
            assert graph.are_similar(a, b) == (sim >= 0.3 - 1e-12)

    def test_denser_at_larger_lambda(self, built):
        assert built.graph(0.8).edge_count >= built.graph(0.6).edge_count


class TestSubscriptions:
    def test_users_subscribe_to_sampled_followees(self, built):
        table = built.subscriptions()
        sampled = set(built.authors)
        for user in table.users:
            subs = table.subscriptions_of(user)
            assert subs
            assert subs <= sampled
            assert subs <= built.network.followees[user]

    def test_users_are_sampled_authors(self, built):
        table = built.subscriptions()
        assert set(table.users) <= set(built.authors)
