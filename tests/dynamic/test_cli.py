"""The CLI's dynamic mode: ``diversify --events`` (and churny generate)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import Post
from repro.dynamic import DynamicDiversifier, RebuildMultiUser, write_events_jsonl
from repro.io import write_friends_json, write_subscriptions_json

from .conftest import make_events, make_friends


@pytest.fixture()
def world_files(tmp_path, subscriptions):
    events = make_events(n_posts=120, seed=13)
    events_path = tmp_path / "events.jsonl"
    friends_path = tmp_path / "friends.json"
    subs_path = tmp_path / "subscriptions.json"
    write_events_jsonl(events, events_path)
    write_friends_json(make_friends(), friends_path)
    write_subscriptions_json(subscriptions, subs_path)
    return events, events_path, friends_path, subs_path


def _lambda_args(thresholds):
    return [
        "--lambda-c", str(thresholds.lambda_c),
        "--lambda-t", str(thresholds.lambda_t),
        "--lambda-a", str(thresholds.lambda_a),
    ]


class TestEventsMode:
    def test_multiuser_trace_matches_rebuild_oracle(
        self, tmp_path, world_files, subscriptions, thresholds, capsys
    ):
        events, events_path, friends_path, subs_path = world_files
        out_path = tmp_path / "receivers.jsonl"
        rc = main(
            [
                "diversify",
                "--events", str(events_path),
                "--friends", str(friends_path),
                "--subscriptions", str(subs_path),
                "--algorithm", "neighborbin",
                "--workers", "2",
                "--batch-size", "16",
                "--output", str(out_path),
                *_lambda_args(thresholds),
            ]
        )
        assert rc == 0
        assert "graph version" in capsys.readouterr().out

        oracle = RebuildMultiUser(
            "neighborbin", thresholds, make_friends(), subscriptions
        )
        expected = {}
        for event in events:
            receivers = oracle.apply(event)
            if receivers:
                expected[event.post_id] = sorted(receivers)
        got = {}
        with open(out_path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                got[record["post_id"]] = record["receivers"]
        assert got == expected

    def test_single_mode_checkpoint_and_resume(
        self, tmp_path, world_files, thresholds, capsys
    ):
        events, events_path, friends_path, _ = world_files
        cut = len(events) // 2
        head_path = tmp_path / "head.jsonl"
        tail_path = tmp_path / "tail.jsonl"
        write_events_jsonl(events[:cut], head_path)
        write_events_jsonl(events[cut:], tail_path)
        ckpt = tmp_path / "ckpt.json"
        base = ["--friends", str(friends_path), "--algorithm", "cliquebin",
                *_lambda_args(thresholds)]

        assert main(
            ["diversify", "--events", str(head_path),
             "--checkpoint-out", str(ckpt), *base]
        ) == 0
        out_path = tmp_path / "admitted.jsonl"
        assert main(
            ["diversify", "--events", str(tail_path),
             "--resume-from", str(ckpt), "--output", str(out_path), *base]
        ) == 0

        # The resumed run must admit exactly what an uninterrupted single
        # run admits among the tail posts.
        reference = DynamicDiversifier("cliquebin", thresholds, make_friends())
        uninterrupted = [p.post_id for p in reference.run(events)]
        tail_ids = {e.post_id for e in events[cut:] if isinstance(e, Post)}
        expected = [pid for pid in uninterrupted if pid in tail_ids]
        with open(out_path, encoding="utf-8") as handle:
            got = [json.loads(line)["post_id"] for line in handle]
        assert got == expected

    def test_posts_and_events_are_mutually_exclusive(
        self, tmp_path, world_files, capsys
    ):
        _, events_path, friends_path, _ = world_files
        rc = main(
            ["diversify", "--events", str(events_path),
             "--posts", str(events_path), "--friends", str(friends_path)]
        )
        assert rc == 2
        rc = main(["diversify"])
        assert rc == 2

    def test_events_require_friends(self, world_files):
        _, events_path, _, _ = world_files
        assert main(["diversify", "--events", str(events_path)]) == 2

    def test_pipeline_flags_rejected(self, world_files):
        _, events_path, friends_path, _ = world_files
        rc = main(
            ["diversify", "--events", str(events_path),
             "--friends", str(friends_path), "--max-skew", "5"]
        )
        assert rc == 2


class TestGenerateChurn:
    def test_generate_writes_dynamic_inputs(self, tmp_path, capsys):
        rc = main(
            ["generate", "--out-dir", str(tmp_path), "--scale", "small",
             "--churn-rate", "0.05"]
        )
        assert rc == 0
        assert (tmp_path / "friends.json").exists()
        events_path = tmp_path / "events.jsonl"
        assert events_path.exists()
        kinds = set()
        timestamps = []
        with open(events_path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                kinds.add(record["type"])
                timestamps.append(record["timestamp"])
        assert "post" in kinds and kinds & {"follow", "unfollow"}
        assert timestamps == sorted(timestamps)
