"""DynamicDiversifier vs a literal teardown-and-rebuild single engine."""

import pytest

from repro.core import ALGORITHMS, Post, Thresholds
from repro.dynamic import DynamicDiversifier
from repro.dynamic.events import FollowEvent, UnfollowEvent
from repro.dynamic.migrate import seeded_engine
from repro.dynamic.topology import TopologyManager
from repro.errors import UnknownAlgorithmError

from .conftest import make_events, make_friends


class _RebuildSingle:
    """Oracle: discard the engine and rebuild from scratch (fresh index,
    fresh greedy cover) on every effective topology change, re-seeding the
    carried λt window."""

    def __init__(self, algorithm: str, thresholds: Thresholds, friends):
        self.algorithm = algorithm
        self.thresholds = thresholds
        self.topology = TopologyManager(friends, lambda_a=thresholds.lambda_a)
        self.engine = seeded_engine(
            algorithm, thresholds, self.topology.graph, [], float("-inf")
        )

    def apply(self, event):
        if isinstance(event, (FollowEvent, UnfollowEvent)):
            mutate = (
                self.topology.follow
                if isinstance(event, FollowEvent)
                else self.topology.unfollow
            )
            if not mutate(event.author, event.followee).empty:
                self.engine = seeded_engine(
                    self.algorithm,
                    self.thresholds,
                    self.topology.graph,
                    self.engine.admitted_posts(),
                    self.engine.last_timestamp,
                )
            return None
        return self.engine.offer(event)


@pytest.mark.parametrize("algorithm", tuple(ALGORITHMS))
def test_matches_rebuild_at_every_prefix(algorithm, thresholds, events):
    reference = _RebuildSingle(algorithm, thresholds, make_friends())
    engine = DynamicDiversifier(
        algorithm, thresholds, make_friends(), validate_covers=True
    )
    for i, event in enumerate(events):
        assert engine.apply(event) == reference.apply(event), (
            f"{algorithm}: verdict diverged at event {i}"
        )
        if isinstance(event, Post):
            # Bins prune lazily, so entries *outside* λt may linger (they
            # can never cover — the time check re-runs per offer); the
            # windows must agree on everything still inside λt.
            cutoff = event.timestamp - thresholds.lambda_t
            got = {
                p.post_id
                for p in engine.admitted_posts()
                if p.timestamp >= cutoff
            }
            expected = {
                p.post_id
                for p in reference.engine.admitted_posts()
                if p.timestamp >= cutoff
            }
            assert got == expected, f"{algorithm}: window diverged at event {i}"
    assert engine.graph_version == reference.topology.version
    assert engine.migrations > 0, "fixture stream caused no migration"
    assert engine.event_counts["post"] == sum(
        1 for e in events if isinstance(e, Post)
    )


def test_run_returns_admitted_posts(thresholds):
    events = make_events(n_posts=80, seed=3)
    engine = DynamicDiversifier("unibin", thresholds, make_friends())
    admitted = engine.run(events)
    assert admitted
    assert engine.stats.posts_admitted == len(admitted)
    # The live window is the admitted suffix still inside λt.
    window = {p.post_id for p in engine.admitted_posts()}
    assert window <= {p.post_id for p in admitted}


def test_unknown_algorithm_rejected(thresholds):
    with pytest.raises(UnknownAlgorithmError):
        DynamicDiversifier("quadtree", thresholds, make_friends())
