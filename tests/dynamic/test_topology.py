"""Tests for repro.dynamic.topology — versioned graph, components, cover."""

import random

import pytest

from repro.authors import AuthorGraph, greedy_clique_cover, verify_cover
from repro.dynamic import TopologyManager, repair_cover
from repro.dynamic.topology import grow_clique, scoped_components
from repro.errors import GraphError

from .conftest import AUTHORS, INTERESTS, make_friends


class TestScopedComponents:
    def test_restricts_bfs_to_scope(self):
        graph = AuthorGraph(range(1, 7), [(1, 2), (2, 3), (3, 4), (5, 6)])
        # Excluding the bridge node 3 splits {1,2} from {4}.
        assert scoped_components(graph, [1, 2, 4, 5, 6]) == [
            frozenset({1, 2}),
            frozenset({4}),
            frozenset({5, 6}),
        ]

    def test_full_scope_equals_global_components(self):
        graph = AuthorGraph(range(1, 8), [(1, 2), (3, 4), (4, 5)])
        assert scoped_components(graph, graph.nodes) == [
            frozenset({1, 2}),
            frozenset({3, 4, 5}),
            frozenset({6}),
            frozenset({7}),
        ]

    def test_deterministic_order(self):
        graph = AuthorGraph([9, 3, 7], [])
        assert scoped_components(graph, [9, 3, 7]) == [
            frozenset({3}),
            frozenset({7}),
            frozenset({9}),
        ]


class TestRepairCover:
    def test_grow_clique_is_maximal(self):
        graph = AuthorGraph(
            range(1, 6), [(1, 2), (1, 3), (2, 3), (3, 4), (1, 4), (2, 4)]
        )
        assert grow_clique(graph, 1, 2) == frozenset({1, 2, 3, 4})

    def test_removal_repair_is_valid(self):
        graph = AuthorGraph(range(1, 5), [(1, 2), (1, 3), (2, 3), (3, 4)])
        cover = greedy_clique_cover(graph)
        graph.remove_edge(1, 2)
        repaired = repair_cover(graph, cover, added=(), removed=[(1, 2)])
        verify_cover(graph, repaired)

    def test_addition_repair_is_valid(self):
        graph = AuthorGraph(range(1, 5), [(1, 2), (3, 4)])
        cover = greedy_clique_cover(graph)
        graph.add_edge(2, 3)
        repaired = repair_cover(graph, cover, added=[(2, 3)], removed=())
        verify_cover(graph, repaired)

    def test_orphaned_node_gets_singleton(self):
        graph = AuthorGraph([1, 2], [(1, 2)])
        cover = greedy_clique_cover(graph)
        graph.remove_edge(1, 2)
        repaired = repair_cover(graph, cover, added=(), removed=[(1, 2)])
        verify_cover(graph, repaired)
        # Both endpoints stay covered by (at least) singletons.
        covered = set().union(*repaired.cliques)
        assert covered == {1, 2}

    def test_random_churn_stays_valid(self):
        rng = random.Random(3)
        nodes = list(range(1, 11))
        graph = AuthorGraph(nodes, [(1, 2), (2, 3), (1, 3), (4, 5)])
        cover = greedy_clique_cover(graph)
        present = {(1, 2), (2, 3), (1, 3), (4, 5)}
        for _ in range(80):
            a, b = rng.sample(nodes, 2)
            edge = (a, b) if a < b else (b, a)
            if edge in present:
                present.discard(edge)
                graph.remove_edge(*edge)
                cover = repair_cover(graph, cover, (), [edge])
            else:
                present.add(edge)
                graph.add_edge(*edge)
                cover = repair_cover(graph, cover, [edge], ())
            verify_cover(graph, cover)


class TestTopologyManager:
    def test_lambda_a_validation(self):
        with pytest.raises(GraphError):
            TopologyManager(make_friends(), lambda_a=1.0)
        with pytest.raises(GraphError):
            TopologyManager(make_friends(), lambda_a=-0.1)

    def test_noop_delta_does_not_bump_version(self):
        friends = {1: {100}, 2: {101}}
        manager = TopologyManager(friends, lambda_a=0.5)
        version = manager.version
        # Duplicate follow: no followee-set change at all.
        delta = manager.follow(1, 100)
        assert delta.empty and manager.version == version
        # Absent unfollow: same.
        delta = manager.unfollow(2, 99)
        assert delta.empty and manager.version == version

    def test_effective_delta_bumps_version_once(self):
        friends = {1: {100}, 2: {101}}
        manager = TopologyManager(friends, lambda_a=0.5)
        delta = manager.follow(2, 100)  # 2 = {100, 101}: sim 1/sqrt(2) ≥ 0.5
        assert delta.added == {(1, 2)}
        assert delta.version == manager.version == 1
        assert manager.graph.are_similar(1, 2)

    def test_components_track_from_scratch(self):
        rng = random.Random(9)
        friends = make_friends()
        manager = TopologyManager(friends, lambda_a=0.5)
        for _ in range(150):
            author = rng.choice(AUTHORS)
            followee = rng.choice(INTERESTS)
            if rng.random() < 0.5:
                manager.follow(author, followee)
            else:
                manager.unfollow(author, followee)
            expected = scoped_components(manager.graph, manager.graph.nodes)
            assert manager.components() == expected
            assert manager.component_count == len(expected)
            for component in expected:
                for node in component:
                    assert manager.component_of(node) == component

    def test_maintained_cover_survives_churn(self):
        rng = random.Random(21)
        manager = TopologyManager(
            make_friends(),
            lambda_a=0.5,
            maintain_cover=True,
            validate_covers=True,  # verify_cover after every repair
        )
        effective = 0
        for _ in range(150):
            author = rng.choice(AUTHORS)
            followee = rng.choice(INTERESTS)
            if rng.random() < 0.5:
                delta = manager.follow(author, followee)
            else:
                delta = manager.unfollow(author, followee)
            if not delta.empty:
                effective += 1
        assert effective > 10, "fixture produced no real churn"
        verify_cover(manager.graph, manager.cover)
        assert manager.version == effective
