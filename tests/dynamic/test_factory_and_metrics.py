"""Construction surface: make_multiuser dynamic mode, validation errors,
and the DynamicInstruments observability bundle."""

import pytest

from repro.dynamic import DynamicMultiUser
from repro.errors import ConfigurationError, UnknownAlgorithmError
from repro.multiuser import make_multiuser
from repro.obs import Registry

from .conftest import make_events, make_friends


class TestFactory:
    def test_parallel_name_builds_dynamic_engine(self, thresholds, subscriptions):
        with make_multiuser(
            "p_cliquebin",
            thresholds,
            None,
            subscriptions,
            workers=2,
            dynamic=True,
            friends=make_friends(),
        ) as engine:
            assert isinstance(engine, DynamicMultiUser)
            assert engine.name == "d_cliquebin"
            assert engine.workers == 2

    def test_serial_name_ignores_workers(self, thresholds, subscriptions):
        engine = make_multiuser(
            "s_unibin",
            thresholds,
            None,
            subscriptions,
            workers=4,
            dynamic=True,
            friends=make_friends(),
        )
        assert isinstance(engine, DynamicMultiUser)
        assert engine.workers == 1

    def test_dynamic_requires_friends(self, thresholds, subscriptions):
        with pytest.raises(ConfigurationError, match="friends"):
            make_multiuser(
                "s_unibin", thresholds, None, subscriptions, dynamic=True
            )

    def test_per_user_engines_have_no_dynamic_variant(
        self, thresholds, subscriptions
    ):
        with pytest.raises(UnknownAlgorithmError):
            make_multiuser(
                "m_unibin",
                thresholds,
                None,
                subscriptions,
                dynamic=True,
                friends=make_friends(),
            )


class TestValidation:
    def test_unknown_algorithm(self, thresholds, subscriptions):
        with pytest.raises(UnknownAlgorithmError):
            DynamicMultiUser("nope", thresholds, make_friends(), subscriptions)

    def test_bad_workers_and_batch(self, thresholds, subscriptions):
        with pytest.raises(ConfigurationError):
            DynamicMultiUser(
                "unibin", thresholds, make_friends(), subscriptions, workers=0
            )
        with pytest.raises(ConfigurationError):
            DynamicMultiUser(
                "unibin", thresholds, make_friends(), subscriptions, batch_size=0
            )

    def test_subscribed_author_missing_from_universe(self, thresholds):
        from repro.multiuser import SubscriptionTable

        table = SubscriptionTable({100: [1, 999]})
        with pytest.raises(ConfigurationError, match="999"):
            DynamicMultiUser("unibin", thresholds, make_friends(), table)


class TestInstruments:
    def test_gauges_and_counters_track_engine(self, thresholds, subscriptions):
        registry = Registry()
        with DynamicMultiUser(
            "neighborbin", thresholds, make_friends(), subscriptions
        ) as engine:
            engine.bind_metrics(registry)
            for event in make_events(n_posts=120, seed=29, churn_prob=0.25):
                engine.apply(event)
            assert engine.migrations > 0
            name = engine.name
            assert registry.value(
                "repro_dynamic_graph_version", engine=name
            ) == engine.graph_version
            assert registry.value(
                "repro_dynamic_migrations", engine=name
            ) == engine.migrations
            for kind in ("post", "follow", "unfollow"):
                assert registry.value(
                    "repro_dynamic_events_total", engine=name, type=kind
                ) == engine.event_counts[kind]
            latency = registry.histogram(
                "repro_dynamic_migration_latency_seconds",
                labelnames=("engine",),
            ).labels(engine=name)
            assert latency.count == engine.migrations
