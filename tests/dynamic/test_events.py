"""Tests for the mixed event codec and the churn generator."""

import pytest

from repro.core import Post
from repro.dynamic import (
    FollowEvent,
    UnfollowEvent,
    event_from_dict,
    event_to_dict,
    read_events_jsonl,
    write_events_jsonl,
)
from repro.errors import DatasetError
from repro.resilience import Quarantine
from repro.social import ChurnConfig, interleave_churn

from .conftest import make_events


def _mixed():
    return [
        Post.create(1, 42, "hello world", 10.0),
        FollowEvent(author=42, followee=7, timestamp=10.5),
        Post.create(2, 7, "hello again", 11.0),
        UnfollowEvent(author=42, followee=7, timestamp=12.0),
    ]


class TestCodec:
    def test_round_trip(self):
        events = _mixed()
        assert [event_from_dict(event_to_dict(e)) for e in events] == events

    def test_post_record_carries_type_tag(self):
        record = event_to_dict(_mixed()[0])
        assert record["type"] == "post"
        assert record["fingerprint"] == _mixed()[0].fingerprint

    def test_unknown_type_rejected(self):
        with pytest.raises(DatasetError, match="unknown type"):
            event_from_dict({"type": "retweet", "author": 1, "timestamp": 0.0})
        with pytest.raises(DatasetError):
            event_from_dict(["not", "an", "object"])

    def test_missing_field_rejected(self):
        with pytest.raises(DatasetError, match="missing field"):
            event_from_dict({"type": "follow", "author": 1, "timestamp": 0.0})

    def test_non_finite_timestamp_rejected(self):
        with pytest.raises(DatasetError, match="finite"):
            event_from_dict(
                {"type": "follow", "author": 1, "followee": 2, "timestamp": "nan"}
            )


class TestJsonl:
    def test_file_round_trip(self, tmp_path):
        events = _mixed() + make_events(n_posts=40)
        events.sort(key=lambda e: e.timestamp)
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(events, path) == len(events)
        assert list(read_events_jsonl(path)) == events

    def test_strict_mode_reports_line_number(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "post"}\n')
        with pytest.raises(DatasetError, match=r":1:"):
            list(read_events_jsonl(path))

    def test_skip_and_quarantine_modes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = event_to_dict(FollowEvent(author=1, followee=2, timestamp=0.5))
        import json

        path.write_text(
            "not json\n" + json.dumps(good) + "\n" + '{"type": "nope"}\n'
        )
        assert len(list(read_events_jsonl(path, on_error="skip"))) == 1
        sink = Quarantine()
        kept = list(read_events_jsonl(path, on_error="quarantine", quarantine=sink))
        assert len(kept) == 1
        assert sink.by_reason["invalid_json"] == 1
        assert sink.by_reason["invalid_record"] == 1


class TestChurnGenerator:
    def _posts(self, n=60):
        return [Post.create(i, 1 + i % 3, f"t{i}", float(i)) for i in range(n)]

    def _friends(self):
        return {1: {10, 11}, 2: {10}, 3: {12}}

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            ChurnConfig(rate=-1.0)
        with pytest.raises(DatasetError):
            ChurnConfig(follow_fraction=1.5)
        with pytest.raises(DatasetError):
            # Lazy generator: validation fires on first consumption.
            list(interleave_churn(self._posts(), {1: set()}, ChurnConfig(rate=0.5)))

    def test_zero_rate_passes_posts_through(self):
        posts = self._posts()
        out = list(interleave_churn(posts, self._friends(), ChurnConfig(rate=0.0)))
        assert out == posts

    def test_deterministic_and_ordered(self):
        config = ChurnConfig(rate=0.8, seed=3)
        first = list(interleave_churn(self._posts(), self._friends(), config))
        second = list(interleave_churn(self._posts(), self._friends(), config))
        assert first == second
        timestamps = [e.timestamp for e in first]
        assert timestamps == sorted(timestamps)
        churn = [e for e in first if not isinstance(e, Post)]
        assert churn, "rate=0.8 over 60 posts produced no churn"
        assert all(e.author != e.followee for e in churn)

    def test_every_event_is_effective_in_order(self):
        """Replaying the emitted follow/unfollow events against the initial
        relation never hits a duplicate follow or an absent unfollow — the
        generator tracks the evolving relation, not the initial one."""
        shadow = {a: set(f) for a, f in self._friends().items()}
        stream = interleave_churn(
            self._posts(200), self._friends(), ChurnConfig(rate=0.9, seed=11)
        )
        for event in stream:
            if isinstance(event, FollowEvent):
                assert event.followee not in shadow[event.author]
                shadow[event.author].add(event.followee)
            elif isinstance(event, UnfollowEvent):
                assert event.followee in shadow[event.author]
                shadow[event.author].discard(event.followee)
