"""Dynamic checkpoint round-trips — including across a graph-version
change and across executor shapes (serial ↔ parallel restore)."""

import pytest

from repro.core import ALGORITHMS
from repro.dynamic import DynamicDiversifier, DynamicMultiUser
from repro.errors import CheckpointError
from repro.resilience import (
    load_checkpoint,
    restore_engine,
    save_checkpoint,
    snapshot_engine,
)

from .conftest import make_friends


def _split(events):
    """Cut the stream at a point with topology churn on both sides."""
    cut = len(events) // 2
    return events[:cut], events[cut:]


def _receivers(engine, tail):
    out = []
    for event in tail:
        result = engine.apply(event)
        if result is not None:
            out.append((event.post_id, result))
    return out


@pytest.mark.parametrize("algorithm", tuple(ALGORITHMS))
def test_multi_round_trip_resumes_identically(
    algorithm, thresholds, subscriptions, events, tmp_path
):
    head, tail = _split(events)
    reference = DynamicMultiUser(
        algorithm, thresholds, make_friends(), subscriptions
    )
    for event in events:
        reference.apply(event)

    engine = DynamicMultiUser(algorithm, thresholds, make_friends(), subscriptions)
    for event in head:
        engine.apply(event)
    assert engine.graph_version > 0, "no churn before the checkpoint cut"
    path = tmp_path / "ckpt.json"
    save_checkpoint(snapshot_engine(engine), path)

    restored = restore_engine(load_checkpoint(path), subscriptions=subscriptions)
    assert isinstance(restored, DynamicMultiUser)
    assert restored.graph_version == engine.graph_version
    assert _receivers(restored, tail) == _receivers(engine, tail)
    assert (
        restored.aggregate_stats().state_dict()
        == reference.aggregate_stats().state_dict()
    )


def test_serial_checkpoint_restores_into_parallel(
    thresholds, subscriptions, events, tmp_path
):
    """A serial snapshot taken mid-churn restores onto a 3-worker pool and
    still reproduces the uninterrupted run, receivers and stats alike."""
    head, tail = _split(events)
    reference = DynamicMultiUser(
        "neighborbin", thresholds, make_friends(), subscriptions
    )
    for event in head:
        reference.apply(event)
    path = tmp_path / "ckpt.json"
    save_checkpoint(snapshot_engine(reference), path)

    with restore_engine(
        load_checkpoint(path), subscriptions=subscriptions, workers=3
    ) as restored:
        assert restored.workers == 3
        assert _receivers(restored, tail) == _receivers(reference, tail)
        assert (
            restored.aggregate_stats().state_dict()
            == reference.aggregate_stats().state_dict()
        )


def test_parallel_checkpoint_restores_into_serial(
    thresholds, subscriptions, events, tmp_path
):
    head, tail = _split(events)
    with DynamicMultiUser(
        "cliquebin", thresholds, make_friends(), subscriptions, workers=2
    ) as engine:
        for event in head:
            engine.apply(event)
        snapshot = snapshot_engine(engine)
        path = tmp_path / "ckpt.json"
        save_checkpoint(snapshot, path)
        restored = restore_engine(
            load_checkpoint(path), subscriptions=subscriptions, workers=1
        )
        assert restored.workers == 1
        assert _receivers(restored, tail) == _receivers(engine, tail)


@pytest.mark.parametrize("algorithm", ("cliquebin", "indexed_unibin"))
def test_single_round_trip_across_version_change(
    algorithm, thresholds, events, tmp_path
):
    """dyn_* snapshots carry the follow relation and (for CliqueBin) the
    repaired cover; the restored engine continues verdict-for-verdict."""
    head, tail = _split(events)
    engine = DynamicDiversifier(algorithm, thresholds, make_friends())
    for event in head:
        engine.apply(event)
    assert engine.graph_version > 0
    path = tmp_path / "ckpt.json"
    save_checkpoint(snapshot_engine(engine), path)

    restored = restore_engine(load_checkpoint(path))
    assert isinstance(restored, DynamicDiversifier)
    assert restored.graph_version == engine.graph_version
    assert {p.post_id for p in restored.admitted_posts()} == {
        p.post_id for p in engine.admitted_posts()
    }
    for event in tail:
        assert restored.apply(event) == engine.apply(event)


class TestRejections:
    def test_multi_restore_requires_subscriptions(
        self, thresholds, subscriptions
    ):
        engine = DynamicMultiUser(
            "unibin", thresholds, make_friends(), subscriptions
        )
        snapshot = snapshot_engine(engine)
        with pytest.raises(CheckpointError, match="subscription"):
            restore_engine(snapshot)

    def test_engine_name_mismatch(self, thresholds, subscriptions):
        engine = DynamicMultiUser(
            "unibin", thresholds, make_friends(), subscriptions
        )
        state = engine.state_dict()
        state["engine"] = "d_cliquebin"
        with pytest.raises(CheckpointError, match="d_cliquebin"):
            engine.load_state(state)

    def test_pending_deltas_refused(self, thresholds, subscriptions):
        engine = DynamicMultiUser(
            "unibin", thresholds, make_friends(), subscriptions
        )
        state = engine.state_dict()
        state["pending_deltas"] = [{"version": 1}]
        with pytest.raises(CheckpointError, match="pending"):
            engine.load_state(state)

    def test_unknown_user_refused(self, thresholds, subscriptions):
        engine = DynamicMultiUser(
            "unibin", thresholds, make_friends(), subscriptions
        )
        state = engine.state_dict()
        state["instances"][0]["users"] = [31337]
        with pytest.raises(CheckpointError, match="unknown users"):
            engine.load_state(state)
