"""The dynamic acceptance bar: rebuild-equivalence at every prefix.

After *any* prefix of the mixed event stream, the incremental engine's
receiver sets must be identical to tearing everything down and rebuilding
from scratch on the current graph. :class:`RebuildMultiUser` does the
teardown literally (per-user engines, full rebuild on every effective
delta); these tests pit every algorithm and every executor against it,
post by post.
"""

import pytest

from repro.core import ALGORITHMS, Post
from repro.dynamic import DynamicMultiUser, RebuildMultiUser
from repro.dynamic.events import FollowEvent, UnfollowEvent

from .conftest import make_events, make_friends

ALL_ALGORITHMS = tuple(ALGORITHMS)


@pytest.mark.parametrize("workers", [1, 2, 3])
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_matches_rebuild_at_every_prefix(
    algorithm, workers, thresholds, subscriptions, events
):
    reference = RebuildMultiUser(
        algorithm, thresholds, make_friends(), subscriptions
    )
    with DynamicMultiUser(
        algorithm,
        thresholds,
        make_friends(),
        subscriptions,
        workers=workers,
        validate_covers=(workers == 1),
    ) as engine:
        migrated = False
        for i, event in enumerate(events):
            got = engine.apply(event)
            expected = reference.apply(event)
            assert got == expected, (
                f"{algorithm} workers={workers}: receivers diverged at "
                f"event {i} ({type(event).__name__}): {sorted(got or ())} "
                f"!= {sorted(expected or ())}"
            )
            migrated = migrated or engine.migrations > 0
        assert migrated, "fixture stream caused no effective topology change"
        assert engine.graph_version == reference.graph_version
        assert engine.migrations == reference.rebuilds


def test_instances_partition_each_users_subscriptions(
    thresholds, subscriptions, events
):
    """The structural invariant migration must preserve: every user's
    instances partition their subscription set, and every instance node
    set is connected in the current graph restricted to it."""
    from repro.dynamic.topology import scoped_components

    with DynamicMultiUser(
        "neighborbin", thresholds, make_friends(), subscriptions
    ) as engine:
        for event in events:
            engine.apply(event)
            if isinstance(event, Post):
                continue  # only topology events can break the invariant
            for user in subscriptions.users:
                subs = set(subscriptions.subscriptions_of(user))
                seen: set[int] = set()
                for iid in engine._user_instances[user]:
                    nodes = engine._instances[iid].nodes
                    assert nodes <= subs
                    assert not (nodes & seen), "user's instances overlap"
                    seen |= nodes
                    parts = scoped_components(engine.topology.graph, nodes)
                    assert len(parts) == 1, "instance is not connected"
                assert seen == subs, "user's instances do not cover subs"


def test_run_events_equals_per_event_apply(thresholds, subscriptions, events):
    """The batching fast path must deliver exactly the per-event verdicts."""
    per_event = RebuildMultiUser(
        "unibin", thresholds, make_friends(), subscriptions
    )
    expected: dict[int, list[int]] = {}
    for event in events:
        receivers = per_event.apply(event)
        if receivers is None:
            continue
        for user in receivers:
            expected.setdefault(user, []).append(event.post_id)
    with DynamicMultiUser(
        "unibin",
        thresholds,
        make_friends(),
        subscriptions,
        workers=2,
        batch_size=16,
    ) as engine:
        timelines = engine.run_events(events)
    got = {
        user: [post.post_id for post in posts]
        for user, posts in timelines.items()
    }
    assert got == expected


def test_churn_only_stream_converges(thresholds, subscriptions):
    """A burst of topology events with no posts in between must leave the
    engine equivalent to a freshly built one on the final graph."""
    follows = [
        FollowEvent(author=a, followee=f, timestamp=float(i))
        for i, (a, f) in enumerate([(1, 104), (2, 104), (3, 104), (4, 104)])
    ]
    unfollows = [
        UnfollowEvent(author=a, followee=f, timestamp=10.0 + i)
        for i, (a, f) in enumerate([(1, 104), (2, 104)])
    ]
    with DynamicMultiUser(
        "cliquebin",
        thresholds,
        make_friends(),
        subscriptions,
        validate_covers=True,
    ) as engine:
        for event in follows + unfollows:
            engine.apply(event)
        final_friends = engine.topology.maintainer.friends()
        with DynamicMultiUser(
            "cliquebin", thresholds, final_friends, subscriptions
        ) as fresh:
            for post in make_events(n_posts=60, churn_prob=0.0):
                assert engine.apply(post) == fresh.apply(post)
