"""Fixtures for the dynamic-topology suite.

A deterministic churn world: twelve maintained authors whose followee
sets draw from a small interest pool (so single follow/unfollow events
actually flip λa similarity edges), six users with overlapping
subscriptions (so instances are shared and merges/splits have real
work), and a seeded mixed event stream — posts with near-duplicate
fingerprints interleaved with follow/unfollow churn.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Post, Thresholds
from repro.dynamic import FollowEvent, UnfollowEvent
from repro.multiuser import SubscriptionTable

#: The similarity-graph universe (friends keys); fixed across churn.
AUTHORS = list(range(1, 13))

#: Followee targets. Small on purpose: with sets of size 2–4 drawn from
#: twelve interests, one edge flip routinely crosses the λa threshold.
INTERESTS = list(range(100, 112))


def make_friends(seed: int = 5) -> dict[int, set[int]]:
    """Seeded initial followee relation over the fixture authors."""
    rng = random.Random(seed)
    return {
        author: set(rng.sample(INTERESTS, rng.randint(2, 4)))
        for author in AUTHORS
    }


@pytest.fixture(scope="module")
def friends() -> dict[int, set[int]]:
    return make_friends()


# Overlapping interests so the catalog shares instances between users
# and a single edge flip can straddle several users' component views.
SUBSCRIPTIONS_SPEC = {
    100: [1, 2, 3, 4, 10],
    200: [1, 2, 3, 4, 5, 6],
    300: [5, 6, 7, 8, 9],
    400: [7, 8, 9, 10, 11, 12],
    500: [2, 5, 8, 11],
    600: [1, 4, 7, 10, 12],
}


@pytest.fixture(scope="module")
def subscriptions() -> SubscriptionTable:
    return SubscriptionTable(SUBSCRIPTIONS_SPEC)


@pytest.fixture(scope="module")
def thresholds() -> Thresholds:
    return Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5)


def make_events(
    n_posts: int = 200,
    seed: int = 17,
    churn_prob: float = 0.15,
):
    """Seeded mixed stream: strictly ordered timestamps, ~half the posts
    near-duplicates of an earlier fingerprint (inside λc=8), and before
    each post a ``churn_prob`` chance of one follow/unfollow event over
    the interest pool (never a self-follow — interests are disjoint from
    the author ids)."""
    rng = random.Random(seed)
    events = []
    posts: list[Post] = []
    now = 0.0
    for i in range(n_posts):
        now += rng.random() * 2.0
        if rng.random() < churn_prob:
            author = rng.choice(AUTHORS)
            followee = rng.choice(INTERESTS)
            cls = FollowEvent if rng.random() < 0.5 else UnfollowEvent
            events.append(cls(author=author, followee=followee, timestamp=now))
        if posts and rng.random() < 0.5:
            fingerprint = posts[rng.randrange(len(posts))].fingerprint
            for _ in range(rng.randrange(4)):
                fingerprint ^= 1 << rng.randrange(64)
        else:
            fingerprint = rng.getrandbits(64)
        post = Post(
            post_id=i,
            author=rng.choice(AUTHORS),
            text=f"p{i}",
            timestamp=now,
            fingerprint=fingerprint,
        )
        posts.append(post)
        events.append(post)
    return events


@pytest.fixture(scope="module")
def events():
    return make_events()
