"""Fixtures for the dynamic-topology suite.

A deterministic churn world: twelve maintained authors whose followee
sets draw from a small interest pool (so single follow/unfollow events
actually flip λa similarity edges), six users with overlapping
subscriptions (so instances are shared and merges/splits have real
work), and a seeded mixed event stream — posts with near-duplicate
fingerprints interleaved with follow/unfollow churn. The world itself
lives in ``tests/support.py`` (shared with the supervision suite); this
conftest only wraps it in fixtures.
"""

from __future__ import annotations

import pytest

from repro.core import Thresholds
from repro.multiuser import SubscriptionTable

from ..support import (
    DYNAMIC_AUTHORS as AUTHORS,
    DYNAMIC_SUBSCRIPTIONS_SPEC as SUBSCRIPTIONS_SPEC,
    INTERESTS,
    make_events,
    make_friends,
)

__all__ = ["AUTHORS", "INTERESTS", "SUBSCRIPTIONS_SPEC", "make_events", "make_friends"]


@pytest.fixture(scope="module")
def friends() -> dict[int, set[int]]:
    return make_friends()


@pytest.fixture(scope="module")
def subscriptions() -> SubscriptionTable:
    return SubscriptionTable(SUBSCRIPTIONS_SPEC)


@pytest.fixture(scope="module")
def thresholds() -> Thresholds:
    return Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5)


@pytest.fixture(scope="module")
def events():
    return make_events()
