"""Tests for repro.authors.incremental — similarity maintenance."""

import random

import pytest

from repro.authors import FriendVectors, pairwise_similarities
from repro.authors.incremental import SimilarityMaintainer
from repro.errors import GraphError, UnknownAuthorError


def expected_edges(friends: dict[int, set[int]], threshold: float) -> set[tuple[int, int]]:
    """Ground truth via full recomputation."""
    vectors = FriendVectors(friends)
    return {
        pair
        for pair, sim in pairwise_similarities(vectors).items()
        if sim >= threshold - 1e-12
    }


class TestConstruction:
    def test_initial_edges_match_full_computation(self):
        friends = {1: {10, 11}, 2: {10, 11}, 3: {10, 99}, 4: {50}}
        maintainer = SimilarityMaintainer(friends, threshold=0.4)
        assert maintainer.edges() == expected_edges(
            {a: set(f) for a, f in friends.items()}, 0.4
        )

    def test_threshold_validation(self):
        with pytest.raises(GraphError):
            SimilarityMaintainer({}, threshold=0.0)
        with pytest.raises(GraphError):
            SimilarityMaintainer({}, threshold=1.5)

    def test_unknown_author(self):
        maintainer = SimilarityMaintainer({1: {10}}, threshold=0.5)
        with pytest.raises(UnknownAuthorError):
            maintainer.follow(99, 10)


class TestFollow:
    def test_self_follow_rejected(self):
        maintainer = SimilarityMaintainer({1: {10}, 2: {10}}, threshold=0.5)
        with pytest.raises(GraphError, match="themselves"):
            maintainer.follow(1, 1)
        # State untouched by the rejected mutation.
        assert maintainer.edges() == {(1, 2)}

    def test_similarity_exactly_at_threshold_is_an_edge(self):
        # |A ∩ B| / sqrt(|A|·|B|) = 1 / sqrt(2·2) = 0.5 exactly; the λa cut
        # is inclusive (similarity ≥ 1 − λa), so the edge must exist.
        maintainer = SimilarityMaintainer(
            {1: {10, 11}, 2: {10, 12}}, threshold=0.5
        )
        assert maintainer.similarity(1, 2) == 0.5
        assert maintainer.edges() == {(1, 2)}
        # One step below the boundary removes it.
        delta = maintainer.follow(2, 13)  # sim -> 1/sqrt(6) < 0.5
        assert delta["removed"] == {(1, 2)}

    def test_follow_creates_edge(self):
        maintainer = SimilarityMaintainer({1: {10}, 2: {11}}, threshold=0.5)
        assert maintainer.edges() == set()
        delta = maintainer.follow(1, 11)
        assert delta["added"] == {(1, 2)}
        assert maintainer.edges() == {(1, 2)}

    def test_follow_can_remove_edge_by_dilution(self):
        # 1 and 2 identical; 1 follows many extras → similarity drops.
        maintainer = SimilarityMaintainer({1: {10}, 2: {10}}, threshold=0.9)
        assert maintainer.edges() == {(1, 2)}
        removed = set()
        for extra in range(100, 104):
            delta = maintainer.follow(1, extra)
            removed |= delta["removed"]
        assert (1, 2) in removed
        assert maintainer.edges() == set()

    def test_duplicate_follow_is_noop(self):
        maintainer = SimilarityMaintainer({1: {10}, 2: {10}}, threshold=0.5)
        delta = maintainer.follow(1, 10)
        assert delta == {"added": set(), "removed": set()}


class TestUnfollow:
    def test_unfollow_removes_edge(self):
        maintainer = SimilarityMaintainer({1: {10}, 2: {10}}, threshold=0.9)
        delta = maintainer.unfollow(1, 10)
        assert delta["removed"] == {(1, 2)}
        assert maintainer.edges() == set()

    def test_unfollow_can_create_edge_by_concentration(self):
        # 1 = {10, 99}, 2 = {10}: sim = 1/sqrt(2) ≈ 0.707 < 0.9.
        maintainer = SimilarityMaintainer({1: {10, 99}, 2: {10}}, threshold=0.9)
        assert maintainer.edges() == set()
        delta = maintainer.unfollow(1, 99)
        assert delta["added"] == {(1, 2)}

    def test_unfollow_absent_is_noop(self):
        maintainer = SimilarityMaintainer({1: {10}, 2: {10}}, threshold=0.5)
        assert maintainer.unfollow(1, 77) == {"added": set(), "removed": set()}


class TestAgainstFullRecomputation:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_update_sequences(self, seed):
        """After any mutation sequence, the incremental edge set must equal
        a from-scratch recomputation."""
        rng = random.Random(seed)
        authors = list(range(12))
        friends = {
            a: {rng.randrange(30) for _ in range(rng.randrange(1, 6))}
            for a in authors
        }
        threshold = 0.4
        maintainer = SimilarityMaintainer(friends, threshold=threshold)
        shadow = {a: set(f) for a, f in friends.items()}
        for _ in range(120):
            author = rng.choice(authors)
            followee = rng.randrange(30)
            if followee == author:
                continue  # self-follows are rejected, not applied
            if rng.random() < 0.5:
                maintainer.follow(author, followee)
                shadow[author].add(followee)
            else:
                maintainer.unfollow(author, followee)
                shadow[author].discard(followee)
            assert maintainer.edges() == expected_edges(shadow, threshold)

    def test_deltas_compose(self):
        """Applying the reported deltas to a copy reconstructs the edges."""
        rng = random.Random(7)
        friends = {a: {rng.randrange(15) for _ in range(3)} for a in range(8)}
        maintainer = SimilarityMaintainer(friends, threshold=0.4)
        edges = maintainer.edges()
        for _ in range(60):
            author = rng.randrange(8)
            followee = rng.randrange(15)
            if followee == author:
                continue  # self-follows are rejected, not applied
            if rng.random() < 0.5:
                delta = maintainer.follow(author, followee)
            else:
                delta = maintainer.unfollow(author, followee)
            edges |= delta["added"]
            edges -= delta["removed"]
            assert edges == maintainer.edges()
