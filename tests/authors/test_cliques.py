"""Tests for repro.authors.cliques — the greedy clique edge cover."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.authors import (
    AuthorGraph,
    CliqueCover,
    greedy_clique_cover,
    per_edge_cover,
    verify_cover,
)
from repro.errors import GraphError


def random_graph(n: int, p: float, seed: int) -> AuthorGraph:
    rng = random.Random(seed)
    edges = [
        (a, b) for a in range(n) for b in range(a + 1, n) if rng.random() < p
    ]
    return AuthorGraph(range(n), edges)


class TestGreedyCover:
    def test_triangle_single_clique(self):
        graph = AuthorGraph([1, 2, 3], [(1, 2), (1, 3), (2, 3)])
        cover = greedy_clique_cover(graph)
        assert len(cover) == 1
        assert cover.cliques[0] == frozenset({1, 2, 3})

    def test_paper_example_cover(self, paper_graph):
        """Figure 6c: cliques {a1,a2,a3} and {a3,a4} cover all edges."""
        cover = greedy_clique_cover(paper_graph)
        assert frozenset({1, 2, 3}) in cover.cliques
        assert frozenset({3, 4}) in cover.cliques
        assert len(cover) == 2

    def test_isolated_nodes_get_singletons(self):
        graph = AuthorGraph([1, 2, 3], [(1, 2)])
        cover = greedy_clique_cover(graph)
        assert frozenset({3}) in cover.cliques

    def test_empty_graph(self):
        graph = AuthorGraph([1, 2], [])
        cover = greedy_clique_cover(graph)
        assert sorted(cover.cliques) == [frozenset({1}), frozenset({2})]

    def test_deterministic(self):
        graph = random_graph(25, 0.3, seed=1)
        assert greedy_clique_cover(graph).cliques == greedy_clique_cover(graph).cliques

    def test_node_order_changes_cover_not_validity(self):
        graph = random_graph(15, 0.4, seed=2)
        cover = greedy_clique_cover(graph, node_order=reversed(sorted(graph.nodes)))
        verify_cover(graph, cover)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.floats(0.05, 0.6))
    def test_valid_on_random_graphs(self, seed, p):
        graph = random_graph(18, p, seed)
        verify_cover(graph, greedy_clique_cover(graph))

    def test_greedy_no_worse_than_per_edge(self):
        for seed in range(5):
            graph = random_graph(20, 0.35, seed)
            greedy = greedy_clique_cover(graph)
            trivial = per_edge_cover(graph)
            assert greedy.total_membership <= trivial.total_membership


class TestPerEdgeCover:
    def test_one_clique_per_edge(self):
        graph = AuthorGraph([1, 2, 3], [(1, 2), (2, 3)])
        cover = per_edge_cover(graph)
        assert frozenset({1, 2}) in cover.cliques
        assert frozenset({2, 3}) in cover.cliques
        verify_cover(graph, cover)

    def test_isolated_nodes_covered(self):
        graph = AuthorGraph([1, 2, 3], [(1, 2)])
        verify_cover(graph, per_edge_cover(graph))


class TestCliqueCoverLookup:
    def test_cliques_of(self, paper_graph):
        cover = greedy_clique_cover(paper_graph)
        a3_cliques = cover.cliques_of(3)
        assert len(a3_cliques) == 2  # a3 is in both cliques
        assert len(cover.cliques_of(1)) == 1
        assert cover.cliques_of(99) == []

    def test_metrics(self, paper_graph):
        cover = greedy_clique_cover(paper_graph)
        # memberships: {1,2,3} + {3,4} → total 5 over 4 authors, 2 cliques
        assert cover.total_membership == 5
        assert cover.average_cliques_per_author() == pytest.approx(5 / 4)
        assert cover.average_clique_size() == pytest.approx(5 / 2)

    def test_empty_clique_rejected(self):
        with pytest.raises(GraphError):
            CliqueCover([frozenset()])


class TestVerifyCover:
    def test_detects_uncovered_edge(self, paper_graph):
        bad = CliqueCover([frozenset({1, 2, 3})])  # edge (3, 4) uncovered
        with pytest.raises(GraphError, match="not covered"):
            verify_cover(paper_graph, bad)

    def test_detects_non_clique(self, paper_graph):
        bad = CliqueCover([frozenset({1, 2, 3, 4})])  # (1,4),(2,4) not edges
        with pytest.raises(GraphError, match="non-edge"):
            verify_cover(paper_graph, bad)

    def test_detects_missing_node(self, paper_graph):
        bad = CliqueCover([frozenset({1, 2, 3}), frozenset({3, 4})])
        graph = AuthorGraph(list(paper_graph.nodes) + [99], list(paper_graph.edges()))
        with pytest.raises(GraphError, match="no clique"):
            verify_cover(graph, bad)

    def test_detects_foreign_member(self, paper_graph):
        bad = CliqueCover([frozenset({1, 77})])
        with pytest.raises(GraphError):
            verify_cover(paper_graph, bad)
