"""Tests for repro.authors.graph — the thresholded author graph."""

import pytest

from repro.authors import AuthorGraph, FriendVectors
from repro.errors import GraphError, UnknownAuthorError


@pytest.fixture()
def triangle_plus_tail() -> AuthorGraph:
    return AuthorGraph(nodes=[1, 2, 3, 4, 5], edges=[(1, 2), (1, 3), (2, 3), (3, 4)])


class TestConstruction:
    def test_nodes_and_edges(self, triangle_plus_tail):
        assert len(triangle_plus_tail) == 5
        assert triangle_plus_tail.edge_count == 4

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            AuthorGraph([1], [(1, 1)])

    def test_edge_adds_missing_nodes(self):
        graph = AuthorGraph([], [(1, 2)])
        assert 1 in graph and 2 in graph

    def test_duplicate_edges_idempotent(self):
        graph = AuthorGraph([1, 2], [(1, 2), (2, 1), (1, 2)])
        assert graph.edge_count == 1

    def test_add_node_idempotent(self, triangle_plus_tail):
        triangle_plus_tail.add_node(1)
        assert len(triangle_plus_tail) == 5


class TestQueries:
    def test_neighbors(self, triangle_plus_tail):
        assert triangle_plus_tail.neighbors(3) == {1, 2, 4}
        assert triangle_plus_tail.neighbors(5) == set()

    def test_neighbors_unknown(self, triangle_plus_tail):
        with pytest.raises(UnknownAuthorError):
            triangle_plus_tail.neighbors(99)

    def test_degree(self, triangle_plus_tail):
        assert triangle_plus_tail.degree(3) == 3
        assert triangle_plus_tail.degree(5) == 0

    def test_are_similar_same_author(self, triangle_plus_tail):
        assert triangle_plus_tail.are_similar(5, 5)

    def test_are_similar_adjacent(self, triangle_plus_tail):
        assert triangle_plus_tail.are_similar(1, 2)
        assert triangle_plus_tail.are_similar(4, 3)

    def test_are_similar_non_adjacent(self, triangle_plus_tail):
        assert not triangle_plus_tail.are_similar(1, 4)
        assert not triangle_plus_tail.are_similar(5, 1)

    def test_edges_yields_each_once(self, triangle_plus_tail):
        edges = list(triangle_plus_tail.edges())
        assert len(edges) == 4
        assert all(a < b for a, b in edges)


class TestSubgraph:
    def test_induced_edges(self, triangle_plus_tail):
        sub = triangle_plus_tail.subgraph([1, 2, 4])
        assert len(sub) == 3
        assert sub.edge_count == 1  # only (1, 2); 4's edge to 3 is cut
        assert sub.are_similar(1, 2)
        assert not sub.are_similar(1, 4)

    def test_unknown_node_rejected(self, triangle_plus_tail):
        with pytest.raises(UnknownAuthorError):
            triangle_plus_tail.subgraph([1, 99])

    def test_empty_subgraph(self, triangle_plus_tail):
        assert len(triangle_plus_tail.subgraph([])) == 0


class TestFromVectors:
    def test_threshold_respected(self):
        vectors = FriendVectors(
            {1: {10, 11}, 2: {10, 11}, 3: {10, 99}, 4: {50}}
        )
        # sim(1,2) = 1.0; sim(1,3) = sim(2,3) = 0.5; others 0.
        graph = AuthorGraph.from_vectors(vectors, lambda_a=0.3)  # sim >= 0.7
        assert graph.are_similar(1, 2)
        assert not graph.are_similar(1, 3)
        graph = AuthorGraph.from_vectors(vectors, lambda_a=0.6)  # sim >= 0.4
        assert graph.are_similar(1, 3)
        assert not graph.are_similar(1, 4)

    def test_lambda_a_one_is_complete(self):
        vectors = FriendVectors({1: {10}, 2: {20}, 3: {30}})
        graph = AuthorGraph.from_vectors(vectors, lambda_a=1.0)
        assert graph.edge_count == 3

    def test_negative_lambda_a_rejected(self):
        vectors = FriendVectors({1: {10}})
        with pytest.raises(GraphError):
            AuthorGraph.from_vectors(vectors, lambda_a=-0.1)

    def test_from_similarities_matches_from_vectors(self):
        from repro.authors import pairwise_similarities

        vectors = FriendVectors(
            {1: {10, 11}, 2: {10, 11}, 3: {10, 99}, 4: {50}}
        )
        sims = pairwise_similarities(vectors)
        a = AuthorGraph.from_vectors(vectors, 0.6)
        b = AuthorGraph.from_similarities(vectors.authors, sims, 0.6)
        assert set(a.edges()) == set(b.edges())


class TestStatistics:
    def test_average_degree(self, triangle_plus_tail):
        # degrees: 2, 2, 3, 1, 0 → mean 1.6
        assert triangle_plus_tail.average_degree() == pytest.approx(1.6)

    def test_density(self, triangle_plus_tail):
        assert triangle_plus_tail.density() == pytest.approx(4 / 10)

    def test_empty_graph_statistics(self):
        graph = AuthorGraph([], [])
        assert graph.average_degree() == 0.0
        assert graph.density() == 0.0
