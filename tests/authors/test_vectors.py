"""Tests for repro.authors.vectors — friend vectors and cosine."""

import math

import pytest

from repro.authors import FriendVectors
from repro.errors import UnknownAuthorError


@pytest.fixture()
def vectors() -> FriendVectors:
    return FriendVectors(
        {
            1: {10, 11, 12, 13},
            2: {10, 11, 12, 13},   # identical to 1
            3: {10, 11, 20, 21},   # half overlap with 1
            4: {30, 31},           # disjoint from all
            5: set(),              # follows nobody
        }
    )


class TestFriendVectors:
    def test_len_and_contains(self, vectors):
        assert len(vectors) == 5
        assert 1 in vectors
        assert 99 not in vectors

    def test_friends_of(self, vectors):
        assert vectors.friends_of(4) == frozenset({30, 31})

    def test_friends_of_unknown(self, vectors):
        with pytest.raises(UnknownAuthorError):
            vectors.friends_of(99)

    def test_authors_order(self):
        vectors = FriendVectors({3: {1}, 1: {2}, 2: {3}})
        assert vectors.authors == [3, 1, 2]


class TestSimilarity:
    def test_identical_sets(self, vectors):
        assert math.isclose(vectors.similarity(1, 2), 1.0)

    def test_half_overlap(self, vectors):
        # |{10,11}| / sqrt(4*4) = 0.5
        assert math.isclose(vectors.similarity(1, 3), 0.5)

    def test_disjoint(self, vectors):
        assert vectors.similarity(1, 4) == 0.0

    def test_empty_vector(self, vectors):
        assert vectors.similarity(1, 5) == 0.0
        assert vectors.similarity(5, 5) == 0.0

    def test_symmetry(self, vectors):
        assert vectors.similarity(1, 3) == vectors.similarity(3, 1)

    def test_different_sizes(self):
        vectors = FriendVectors({1: {10}, 2: {10, 11, 12, 13}})
        # 1 / sqrt(1*4) = 0.5
        assert math.isclose(vectors.similarity(1, 2), 0.5)

    def test_distance_complements_similarity(self, vectors):
        assert math.isclose(
            vectors.distance(1, 3), 1.0 - vectors.similarity(1, 3)
        )

    def test_unknown_author(self, vectors):
        with pytest.raises(UnknownAuthorError):
            vectors.similarity(1, 99)
