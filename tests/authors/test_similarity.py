"""Tests for repro.authors.similarity — inverted-index all-pairs cosine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.authors import (
    FriendVectors,
    candidate_pairs,
    pairwise_similarities,
    similarity_values,
)

friend_maps = st.dictionaries(
    keys=st.integers(min_value=0, max_value=30),
    values=st.frozensets(st.integers(min_value=100, max_value=130), max_size=8),
    min_size=2,
    max_size=15,
)


class TestCandidatePairs:
    def test_only_sharing_pairs(self):
        vectors = FriendVectors({1: {10}, 2: {10}, 3: {20}})
        assert set(candidate_pairs(vectors)) == {(1, 2)}

    def test_pairs_unique_and_ordered(self):
        vectors = FriendVectors({1: {10, 11}, 2: {10, 11}, 3: {10, 11}})
        pairs = list(candidate_pairs(vectors))
        assert len(pairs) == len(set(pairs)) == 3
        assert all(a < b for a, b in pairs)

    @settings(max_examples=40, deadline=None)
    @given(friend_maps)
    def test_support_is_exact(self, friends):
        """Every pair NOT yielded must have similarity exactly zero, and
        every yielded pair must share a followee."""
        vectors = FriendVectors(friends)
        yielded = set(candidate_pairs(vectors))
        authors = vectors.authors
        for i, a in enumerate(authors):
            for b in authors[i + 1 :]:
                key = (min(a, b), max(a, b))
                shares = bool(vectors.friends_of(a) & vectors.friends_of(b))
                assert (key in yielded) == shares


class TestPairwiseSimilarities:
    def test_matches_brute_force(self):
        rng = random.Random(5)
        friends = {
            a: {rng.randrange(40) for _ in range(rng.randrange(1, 10))}
            for a in range(20)
        }
        vectors = FriendVectors(friends)
        table = pairwise_similarities(vectors)
        for a in range(20):
            for b in range(a + 1, 20):
                expected = vectors.similarity(a, b)
                if expected > 0:
                    assert abs(table[(a, b)] - expected) < 1e-12
                else:
                    assert (a, b) not in table

    def test_min_similarity_filter(self):
        vectors = FriendVectors({1: {10, 11}, 2: {10, 11}, 3: {10, 99}})
        table = pairwise_similarities(vectors, min_similarity=0.9)
        assert (1, 2) in table
        assert (1, 3) not in table

    def test_zero_pairs_excluded(self):
        vectors = FriendVectors({1: {10}, 2: {20}})
        assert pairwise_similarities(vectors) == {}


class TestSimilarityValues:
    def test_values_positive(self):
        vectors = FriendVectors({1: {10}, 2: {10}, 3: {10, 20}})
        values = similarity_values(vectors)
        assert values
        assert all(v > 0 for v in values)

    def test_count_matches_candidates(self):
        vectors = FriendVectors({1: {10, 11}, 2: {10}, 3: {11}})
        assert len(similarity_values(vectors)) == len(list(candidate_pairs(vectors)))
