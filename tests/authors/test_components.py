"""Tests for repro.authors.components — the M-SPSD sharing substrate."""

import pytest

from repro.authors import (
    AuthorGraph,
    ComponentCatalog,
    connected_components,
    user_components,
)


class TestConnectedComponents:
    def test_single_component(self):
        graph = AuthorGraph([1, 2, 3], [(1, 2), (2, 3)])
        assert connected_components(graph) == [frozenset({1, 2, 3})]

    def test_multiple_components(self):
        graph = AuthorGraph([1, 2, 3, 4], [(1, 2), (3, 4)])
        assert set(connected_components(graph)) == {
            frozenset({1, 2}),
            frozenset({3, 4}),
        }

    def test_isolated_nodes_are_singletons(self):
        graph = AuthorGraph([1, 2, 3], [(1, 2)])
        assert frozenset({3}) in connected_components(graph)

    def test_empty_graph(self):
        assert connected_components(AuthorGraph([], [])) == []

    def test_components_partition_nodes(self):
        graph = AuthorGraph(range(10), [(0, 1), (1, 2), (4, 5), (7, 8)])
        components = connected_components(graph)
        seen = [node for comp in components for node in comp]
        assert sorted(seen) == list(range(10))


class TestUserComponents:
    def test_paper_section5_example(self):
        """The §5 example: u1 and u2 share {a1, a2, a6} as a component of
        both subscription graphs, so that component is reusable; a4 is not,
        because u2 also subscribes to the similar a5."""
        graph = AuthorGraph(
            [1, 2, 3, 4, 5, 6],
            [(1, 2), (2, 6), (3, 4), (4, 5)],
        )
        u1 = user_components(graph, [1, 2, 6, 4, 3])
        u2 = user_components(graph, [1, 2, 6, 4, 5])
        shared = frozenset({1, 2, 6})
        assert shared in u1 and shared in u2
        # u1 sees a3–a4 together, u2 sees a4–a5 together: different units.
        assert frozenset({3, 4}) in u1
        assert frozenset({4, 5}) in u2


class TestComponentCatalog:
    @pytest.fixture()
    def graph(self):
        return AuthorGraph(
            [1, 2, 3, 4, 5, 6],
            [(1, 2), (2, 6), (3, 4), (4, 5)],
        )

    def test_dedup_across_users(self, graph):
        catalog = ComponentCatalog(
            graph,
            {
                100: [1, 2, 6, 3, 4],
                200: [1, 2, 6, 4, 5],
            },
        )
        # Distinct: {1,2,6} (shared), {3,4}, {4,5} → 3; total instances 4.
        assert catalog.distinct_count == 3
        assert catalog.total_user_components == 4
        assert catalog.sharing_ratio() == pytest.approx(0.25)

    def test_users_of_component(self, graph):
        catalog = ComponentCatalog(graph, {100: [1, 2, 6], 200: [1, 2, 6]})
        assert catalog.distinct_count == 1
        assert sorted(catalog.users_of[0]) == [100, 200]

    def test_no_sharing(self, graph):
        catalog = ComponentCatalog(graph, {100: [1], 200: [2]})
        assert catalog.sharing_ratio() == 0.0

    def test_empty(self):
        catalog = ComponentCatalog(AuthorGraph([], []), {})
        assert catalog.distinct_count == 0
        assert catalog.sharing_ratio() == 0.0

    def test_components_of_user(self, graph):
        catalog = ComponentCatalog(graph, {100: [1, 2, 3]})
        indices = catalog.components_of_user[100]
        node_sets = {catalog.components[i] for i in indices}
        assert node_sets == {frozenset({1, 2}), frozenset({3})}
