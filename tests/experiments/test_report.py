"""Report shapes: the versioned JSON artifact and the self-contained HTML."""

from __future__ import annotations

import json

import pytest

from repro.core import Thresholds
from repro.experiments import (
    EngineSpec,
    MatrixSpec,
    ScenarioSpec,
    render_html,
    report_dict,
    run_matrix,
    write_html_report,
    write_json_report,
)


@pytest.fixture(scope="module")
def result():
    spec = MatrixSpec(
        name="report-test",
        scenarios=(
            ScenarioSpec("spam_flood", seed=37, overrides=(("n_posts", 80), ("n_users", 4))),
        ),
        engines=(
            EngineSpec("s_unibin"),
            EngineSpec("p_unibin", workers=2),
            EngineSpec("s_indexed_unibin"),  # crash row, on purpose
        ),
        thresholds=Thresholds(lambda_c=8, lambda_t=60.0, lambda_a=0.5),
        timeout_s=30.0,
    )
    return run_matrix(spec)


def test_report_dict_shape(result):
    record = report_dict(result)
    assert record["schema"] == 1
    assert record["matrix"]["name"] == "report-test"
    assert record["counts"]["ok"] == 2 and record["counts"]["crash"] == 1
    assert not record["ok"]  # the crash row fails the matrix
    assert len(record["trials"]) == 3
    assert record["cross_checks"][0]["ok"]


def test_json_report_round_trips(result, tmp_path):
    path = write_json_report(result, tmp_path / "report.json")
    record = json.loads(path.read_text())
    assert record == json.loads(json.dumps(report_dict(result)))


def test_html_is_self_contained(result):
    page = render_html(result)
    assert page.startswith("<!DOCTYPE html>")
    assert "report-test" in page
    assert "spam_flood#37" in page
    assert "s_unibin" in page
    # Self-contained: no external stylesheets, scripts, or images.
    assert "http://" not in page and "https://" not in page
    assert "<script" not in page


def test_html_surfaces_crash_and_verdict(result):
    page = render_html(result)
    assert "FAIL" in page  # matrix verdict
    assert "crash" in page
    assert "agree" in page  # the surviving cross-check group


def test_html_escapes_error_text(result):
    # Error strings carry tracebacks with <...> repr fragments; the page
    # must never inject them raw.
    page = render_html(result)
    assert "<module" not in page


def test_write_html_report(result, tmp_path):
    path = write_html_report(result, tmp_path / "report.html")
    assert path.read_text().startswith("<!DOCTYPE html>")
