"""Tests for the scenario-matrix experiment harness (repro.experiments)."""
