"""Differential check: adversarial streams preserve the SPSD guarantee.

Every scenario is hostile by design — bursts that saturate the λt
window, floods of near-duplicates, drifting centroids, heavy-tail author
skew — but none of that may break Definition 1: after any run, every
dropped post is covered by some retained post. The oracle is
:func:`repro.eval.find_uncovered`, the same offline re-check the
generative property suite uses, run here over all four core algorithms
on every scenario's post stream.
"""

from __future__ import annotations

import pytest

from repro.core import ALGORITHMS, CoverageChecker, Thresholds, make_diversifier
from repro.eval import find_uncovered
from repro.experiments import SCENARIO_NAMES, make_workload

from ..properties.worldgen import run_engine

THRESHOLDS = Thresholds(lambda_c=8, lambda_t=60.0, lambda_a=0.5)
SMALL = {"n_posts": 120, "n_users": 4}


@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_dropped_posts_stay_covered(scenario, algorithm):
    workload = make_workload(scenario, 29, **SMALL)
    graph = workload.graph(THRESHOLDS.lambda_a)
    engine = make_diversifier(algorithm, THRESHOLDS, graph)
    admitted = run_engine(engine, workload.posts)
    checker = CoverageChecker(THRESHOLDS, graph)
    uncovered = find_uncovered(workload.posts, admitted, checker)
    assert uncovered == [], (
        f"{algorithm} on {scenario}: {len(uncovered)} dropped posts left "
        f"uncovered, first ids {[p.post_id for p in uncovered[:5]]}"
    )


@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
def test_adversarial_streams_actually_prune(scenario):
    """The scenarios earn their name: near-duplicate pressure makes the
    diversifier drop a visible share of the stream (a stream nothing is
    dropped from exercises no coverage logic at all)."""
    workload = make_workload(scenario, 29, **SMALL)
    graph = workload.graph(THRESHOLDS.lambda_a)
    engine = make_diversifier("unibin", THRESHOLDS, graph)
    admitted = run_engine(engine, workload.posts)
    assert 0 < len(admitted) < len(workload.posts)
