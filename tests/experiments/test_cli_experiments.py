"""End-to-end: ``python -m repro experiments`` (in process via main()).

Includes the acceptance run: the smoke matrix executed twice must emit
identical per-cell receiver-set digests, and a doctored trajectory file
must turn ``--check`` into a non-zero exit naming the metric.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SMOKE = ["experiments", "--matrix", "smoke", "--quiet"]


def _digests(report_path):
    record = json.loads(report_path.read_text())
    return [(t["scenario"], t["engine"], t["digest"]) for t in record["trials"]]


def test_list_prints_registry(capsys):
    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "spam_flood" in out and "churn_storm" in out
    assert "smoke" in out and "adversarial" in out


def test_smoke_matrix_is_deterministic(tmp_path, capsys):
    """Same seed, two runs, byte-identical digests (acceptance run)."""
    first, second = tmp_path / "r1.json", tmp_path / "r2.json"
    assert main(SMOKE + ["--out", str(first)]) == 0
    assert main(SMOKE + ["--out", str(second)]) == 0
    assert _digests(first) == _digests(second)
    record = json.loads(first.read_text())
    assert record["ok"]
    for trial in record["trials"]:
        assert trial["posts_per_sec"] > 0
        assert trial["memory"]["accounted_bytes"] > 0
        assert "shed" in trial and "dropped" in trial


def test_seed_override_changes_digests(tmp_path):
    base, reseeded = tmp_path / "a.json", tmp_path / "b.json"
    assert main(SMOKE + ["--out", str(base)]) == 0
    assert main(SMOKE + ["--seed", "99", "--out", str(reseeded)]) == 0
    assert _digests(base) != _digests(reseeded)


def test_html_report_written(tmp_path, capsys):
    path = tmp_path / "report.html"
    assert main(SMOKE + ["--html", str(path)]) == 0
    assert path.read_text().startswith("<!DOCTYPE html>")


def test_grid_file_path(tmp_path, capsys):
    grid = {
        "scenarios": [{"name": "uniform", "seed": 3, "overrides": {"n_posts": 40}}],
        "engines": [{"name": "s_unibin"}],
    }
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(grid))
    out = tmp_path / "report.json"
    assert main(["experiments", "--matrix", str(path), "--quiet", "--out", str(out)]) == 0
    record = json.loads(out.read_text())
    assert record["matrix"]["name"] == "grid"
    assert len(record["trials"]) == 1


def test_unknown_matrix_exits_2(capsys):
    assert main(["experiments", "--matrix", "nope", "--quiet"]) == 2
    assert "unknown matrix" in capsys.readouterr().err


def test_append_then_check_passes(tmp_path, capsys):
    trajectory = tmp_path / "traj.json"
    args = SMOKE + ["--trajectory", str(trajectory), "--label", "pr-a"]
    assert main(args + ["--append"]) == 0
    assert trajectory.exists()
    assert main(SMOKE + [
        "--trajectory", str(trajectory), "--label", "pr-b", "--check",
    ]) == 0
    assert "trajectory check PASS" in capsys.readouterr().out


def test_doctored_trajectory_fails_check_with_named_metric(tmp_path, capsys):
    trajectory = tmp_path / "traj.json"
    base = SMOKE + ["--trajectory", str(trajectory)]
    assert main(base + ["--append", "--label", "pr-a"]) == 0
    history = json.loads(trajectory.read_text())
    history["entries"][-1]["metrics"]["smoke_deliveries_total"] += 7
    trajectory.write_text(json.dumps(history))
    rc = main(base + ["--check", "--label", "pr-b"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "trajectory check FAIL" in captured.err
    assert "smoke_deliveries_total" in captured.err


def test_corrupt_trajectory_exits_2(tmp_path, capsys):
    trajectory = tmp_path / "traj.json"
    trajectory.write_text("{broken")
    assert main(SMOKE + ["--trajectory", str(trajectory), "--check"]) == 2


def test_crashing_cell_fails_the_run(tmp_path, capsys):
    grid = {
        "scenarios": [{"name": "uniform", "seed": 3, "overrides": {"n_posts": 40}}],
        "engines": [{"name": "s_indexed_unibin"}],
    }
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(grid))
    assert main(["experiments", "--matrix", str(path), "--quiet"]) == 1
    assert "crash" in capsys.readouterr().err


def test_progress_lines_on_stderr_by_default(capsys):
    assert main(["experiments", "--matrix", "smoke"]) == 0
    err = capsys.readouterr().err
    assert err.count("\n") >= 4  # one line per cell
