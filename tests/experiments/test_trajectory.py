"""The trajectory store: folding, appending, and the regression gate.

The doctored-history cases are the acceptance criterion: a metric that
drifts against the committed entry must fail loudly — a raised
:class:`TrajectoryRegressionError` naming the metric, which the CLI
turns into a non-zero exit.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Thresholds
from repro.errors import ExperimentError, TrajectoryRegressionError
from repro.experiments import (
    EngineSpec,
    MatrixSpec,
    ScenarioSpec,
    append_entry,
    check_regression,
    legacy_metrics,
    load_trajectory,
    make_entry,
    matrix_metrics,
    run_matrix,
    write_trajectory,
)


@pytest.fixture(scope="module")
def result():
    spec = MatrixSpec(
        name="traj",
        scenarios=(
            ScenarioSpec("uniform", seed=41, overrides=(("n_posts", 60), ("n_users", 4))),
        ),
        engines=(EngineSpec("s_unibin"),),
        thresholds=Thresholds(lambda_c=8, lambda_t=60.0, lambda_a=0.5),
        timeout_s=30.0,
    )
    return run_matrix(spec)


# -- store mechanics ----------------------------------------------------------


def test_load_missing_file_is_empty_history(tmp_path):
    history = load_trajectory(tmp_path / "absent.json")
    assert history == {"schema": 1, "entries": []}


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "t.json"
    path.write_text("{broken")
    with pytest.raises(ExperimentError, match="invalid trajectory JSON"):
        load_trajectory(path)


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "t.json"
    path.write_text(json.dumps({"schema": 99, "entries": []}))
    with pytest.raises(ExperimentError, match="schema"):
        load_trajectory(path)


def test_load_rejects_malformed_entries(tmp_path):
    path = tmp_path / "t.json"
    path.write_text(json.dumps({"schema": 1, "entries": [{"nope": 1}]}))
    with pytest.raises(ExperimentError, match="malformed entry"):
        load_trajectory(path)


def test_append_preserves_order_and_replaces_same_label():
    history = {"schema": 1, "entries": []}
    history = append_entry(history, {"label": "pr1", "metrics": {"a": 1.0}})
    history = append_entry(history, {"label": "pr2", "metrics": {"a": 2.0}})
    assert [e["label"] for e in history["entries"]] == ["pr1", "pr2"]
    history = append_entry(history, {"label": "pr2", "metrics": {"a": 3.0}})
    assert [e["label"] for e in history["entries"]] == ["pr1", "pr2"]
    assert history["entries"][-1]["metrics"]["a"] == 3.0


def test_write_and_reload_round_trip(tmp_path):
    history = append_entry(
        {"schema": 1, "entries": []}, {"label": "pr1", "metrics": {"a": 1.0}}
    )
    path = write_trajectory(history, tmp_path / "t.json")
    assert load_trajectory(path) == history


# -- metric extraction --------------------------------------------------------


def test_legacy_metrics_fold_committed_baselines():
    """The repo's own four BENCH_*.json gate files feed the store."""
    metrics = legacy_metrics(".")
    assert metrics["parallel_serial_posts_per_sec"] > 0
    assert metrics["dynamic_speedup_vs_rebuild_min"] > 1
    assert metrics["supervision_recovery_latency_s"] > 0
    assert 0 < metrics["memory_peak_ratio"] < 1


def test_legacy_metrics_empty_dir_contributes_nothing(tmp_path):
    assert legacy_metrics(tmp_path) == {}


def test_matrix_metrics_are_prefixed_and_deterministic(result):
    metrics = matrix_metrics(result)
    assert metrics["traj_deliveries_total"] > 0
    assert metrics["traj_crashes"] == 0
    assert metrics["traj_cross_check_failures"] == 0
    assert metrics["traj_posts_per_sec_min"] > 0
    assert metrics["traj_scan_width_mean_max"] > 0


def test_make_entry_combines_sources(result, tmp_path):
    entry = make_entry("pr9", result=result, root=".")
    assert entry["label"] == "pr9"
    assert entry["source"] == "matrix:traj+legacy"
    assert "traj_deliveries_total" in entry["metrics"]
    assert "parallel_serial_posts_per_sec" in entry["metrics"]
    only_matrix = make_entry("pr9", result=result)
    assert only_matrix["source"] == "matrix:traj"


def test_make_entry_records_cpu_count(result):
    import os

    entry = make_entry("pr9", result=result)
    assert entry["cpu_count"] == os.cpu_count()


# -- the regression gate ------------------------------------------------------


def _history(metrics):
    return {"schema": 1, "entries": [{"label": "pr1", "metrics": metrics}]}


def test_empty_history_passes_trivially():
    assert check_regression({"schema": 1, "entries": []}, {"label": "x", "metrics": {"a": 1}}) == []


def test_identical_metrics_pass(result):
    entry = make_entry("pr2", result=result)
    compared = check_regression(_history(dict(entry["metrics"])), entry)
    assert "traj_deliveries_total" in compared


def test_doctored_exact_metric_fails_loudly(result):
    entry = make_entry("pr2", result=result)
    doctored = dict(entry["metrics"])
    doctored["traj_deliveries_total"] += 1
    with pytest.raises(TrajectoryRegressionError, match="traj_deliveries_total"):
        check_regression(_history(doctored), entry)


def test_doctored_perf_metric_fails_loudly():
    candidate = {"label": "pr2", "metrics": {"parallel_serial_posts_per_sec": 100.0}}
    with pytest.raises(
        TrajectoryRegressionError, match="parallel_serial_posts_per_sec"
    ):
        check_regression(
            _history({"parallel_serial_posts_per_sec": 1000.0}), candidate
        )


def test_lower_is_better_direction():
    candidate = {"label": "pr2", "metrics": {"supervision_overhead": 0.9}}
    with pytest.raises(TrajectoryRegressionError, match="supervision_overhead"):
        check_regression(_history({"supervision_overhead": 0.1}), candidate)
    # And improvement (lower) passes with room to spare.
    check_regression(_history({"supervision_overhead": 0.9}),
                     {"label": "pr2", "metrics": {"supervision_overhead": 0.1}})


def test_zero_baseline_lower_metric_rejects_any_rise():
    candidate = {"label": "pr2", "metrics": {"smoke_timeouts": 1.0}}
    with pytest.raises(TrajectoryRegressionError, match="smoke_timeouts"):
        check_regression(_history({"smoke_timeouts": 0.0}), candidate)


def test_within_tolerance_passes():
    check_regression(
        _history({"parallel_serial_posts_per_sec": 1000.0}),
        {"label": "pr2", "metrics": {"parallel_serial_posts_per_sec": 700.0}},
        tolerance=0.5,
    )


def test_tolerance_parameter_tightens_the_gate():
    with pytest.raises(TrajectoryRegressionError):
        check_regression(
            _history({"parallel_serial_posts_per_sec": 1000.0}),
            {"label": "pr2", "metrics": {"parallel_serial_posts_per_sec": 700.0}},
            tolerance=0.1,
        )


def test_env_tolerance_override(monkeypatch):
    monkeypatch.setenv("REPRO_TRAJECTORY_TOLERANCE", "0.01")
    with pytest.raises(TrajectoryRegressionError):
        check_regression(
            _history({"parallel_serial_posts_per_sec": 1000.0}),
            {"label": "pr2", "metrics": {"parallel_serial_posts_per_sec": 900.0}},
        )


def test_unknown_metrics_are_informational():
    compared = check_regression(
        _history({"some_new_number": 5.0}),
        {"label": "pr2", "metrics": {"some_new_number": 500.0}},
    )
    assert compared == []


def test_cpu_count_mismatch_skips_perf_checks_loudly(capsys):
    """A speedup baseline recorded on a different-sized machine must not
    gate this one — the tolerance check is skipped with a loud stderr
    line, while exact metrics stay enforced."""
    history = {
        "schema": 1,
        "entries": [
            {
                "label": "pr1",
                "cpu_count": 1,
                "metrics": {
                    "parallel_serial_posts_per_sec": 1000.0,
                    "smoke_deliveries_total": 7.0,
                },
            }
        ],
    }
    candidate = {
        "label": "pr2",
        "cpu_count": 4,
        "metrics": {
            "parallel_serial_posts_per_sec": 100.0,
            "smoke_deliveries_total": 7.0,
        },
    }
    compared = check_regression(history, candidate)
    assert "parallel_serial_posts_per_sec" not in compared
    assert "smoke_deliveries_total" in compared
    err = capsys.readouterr().err
    assert "SKIPPING" in err and "cpu_count" in err
    # Exact metrics are still gated across machine shapes.
    candidate["metrics"]["smoke_deliveries_total"] = 8.0
    with pytest.raises(TrajectoryRegressionError, match="smoke_deliveries_total"):
        check_regression(history, candidate)


def test_matching_cpu_count_keeps_perf_checks():
    history = {
        "schema": 1,
        "entries": [
            {
                "label": "pr1",
                "cpu_count": 4,
                "metrics": {"parallel_serial_posts_per_sec": 1000.0},
            }
        ],
    }
    candidate = {
        "label": "pr2",
        "cpu_count": 4,
        "metrics": {"parallel_serial_posts_per_sec": 100.0},
    }
    with pytest.raises(TrajectoryRegressionError, match="parallel_serial_posts_per_sec"):
        check_regression(history, candidate)


def test_refreshed_label_compares_to_predecessor(result):
    entry = make_entry("pr2", result=result)
    history = {
        "schema": 1,
        "entries": [
            {"label": "pr1", "metrics": dict(entry["metrics"])},
            {"label": "pr2", "metrics": {"traj_deliveries_total": -1.0}},
        ],
    }
    # The last entry IS pr2 (stale self) — the check must reach past it
    # to pr1 rather than compare the candidate against itself.
    compared = check_regression(history, entry)
    assert "traj_deliveries_total" in compared
