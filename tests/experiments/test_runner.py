"""The trial runner: statuses, digests, cross-checks, stats capture."""

from __future__ import annotations

import pytest

from repro.core import Thresholds
from repro.experiments import (
    EngineSpec,
    MatrixSpec,
    ScenarioSpec,
    make_workload,
    run_matrix,
    run_trial,
)

THRESHOLDS = Thresholds(lambda_c=8, lambda_t=60.0, lambda_a=0.5)
SMALL = {"n_posts": 120, "n_users": 4}


@pytest.fixture(scope="module")
def static_workload():
    return make_workload("flash_crowd", 31, **SMALL)


@pytest.fixture(scope="module")
def churn_workload():
    return make_workload("churn_storm", 31, **SMALL)


class TestRunTrial:
    def test_ok_trial_records_everything(self, static_workload):
        trial = run_trial(static_workload, EngineSpec("s_unibin"), THRESHOLDS)
        assert trial.status == "ok"
        assert trial.posts == trial.posts_offered == SMALL["n_posts"]
        assert trial.digest and len(trial.digest) == 64
        assert trial.deliveries > 0
        assert trial.posts_per_sec > 0
        assert trial.stats["posts_processed"] > 0
        assert trial.obs["scan_width_mean"] > 0
        assert trial.memory["accounted_bytes"] > 0
        assert trial.error is None

    def test_serial_and_sharded_agree(self, static_workload):
        serial = run_trial(static_workload, EngineSpec("s_unibin"), THRESHOLDS)
        sharded = run_trial(
            static_workload, EngineSpec("p_unibin", workers=2), THRESHOLDS
        )
        assert serial.digest == sharded.digest
        assert serial.deliveries == sharded.deliveries

    def test_timeout_is_captured_not_raised(self, static_workload):
        trial = run_trial(
            static_workload, EngineSpec("s_unibin"), THRESHOLDS, timeout_s=0.0
        )
        assert trial.status == "timeout"
        assert trial.dropped > 0
        assert trial.digest is None  # a prefix digest must not join cross-checks
        assert "deadline" in trial.error

    def test_crash_is_captured_not_raised(self, static_workload):
        # indexed_unibin has no shared-component multi-user variant, so
        # the build fails inside the trial — the harness must record it.
        trial = run_trial(
            static_workload, EngineSpec("s_indexed_unibin"), THRESHOLDS
        )
        assert trial.status == "crash"
        assert trial.digest is None
        assert "Traceback" in trial.error

    def test_churn_skips_m_engines(self, churn_workload):
        trial = run_trial(churn_workload, EngineSpec("m_unibin"), THRESHOLDS)
        assert trial.status == "skipped"
        assert "dynamic" in trial.error

    def test_churn_skips_budgeted_variants(self, churn_workload):
        trial = run_trial(
            churn_workload, EngineSpec("s_unibin", memory_budget=1000), THRESHOLDS
        )
        assert trial.status == "skipped"

    def test_churn_trial_applies_events(self, churn_workload):
        trial = run_trial(churn_workload, EngineSpec("s_unibin"), THRESHOLDS)
        assert trial.status == "ok"
        assert trial.churn_events == churn_workload.churn_events > 0
        assert trial.obs["graph_version"] > 0

    def test_governed_trial_sheds_deterministically(self):
        # A longer stream with small batches gives the governor enough
        # ticks to walk the whole ladder (spill → probe → shed).
        workload = make_workload("flash_crowd", 31, n_posts=240, n_users=4)
        spec = EngineSpec(
            "s_unibin", memory_budget=2_000, spill=True, batch_size=16
        )
        first = run_trial(workload, spec, THRESHOLDS, spill_dir=None)
        second = run_trial(workload, spec, THRESHOLDS, spill_dir=None)
        assert first.status == second.status == "ok"
        assert first.shed == second.shed > 0
        assert first.digest == second.digest
        assert first.memory["governor"]["escalations"] > 0
        assert first.memory["peak_accounted_bytes"] > 0

    def test_spill_without_dir_never_creates_a_none_directory(
        self, tmp_path, monkeypatch
    ):
        # Regression: a spill variant run with spill_dir=None used to pass
        # str(None) into SpillConfig, leaving an untracked ``None/``
        # directory at the process cwd. The trial must now succeed in a
        # private temp dir and leave the cwd pristine.
        monkeypatch.chdir(tmp_path)
        workload = make_workload("flash_crowd", 31, **SMALL)
        spec = EngineSpec("s_unibin", spill=True)
        trial = run_trial(workload, spec, THRESHOLDS, spill_dir=None)
        assert trial.status == "ok"
        assert not (tmp_path / "None").exists()

    def test_spill_trial_matches_unspilled_digest(self, static_workload):
        plain = run_trial(static_workload, EngineSpec("s_unibin"), THRESHOLDS)
        spilled = run_trial(
            static_workload, EngineSpec("s_unibin", spill=True), THRESHOLDS
        )
        assert spilled.status == "ok"
        assert spilled.digest == plain.digest

    def test_to_dict_is_json_shaped(self, static_workload):
        import json

        trial = run_trial(static_workload, EngineSpec("s_unibin"), THRESHOLDS)
        record = json.loads(json.dumps(trial.to_dict()))
        assert record["scenario"] == "flash_crowd"
        assert record["engine"] == "s_unibin"


def _matrix(**overrides):
    settings = dict(
        name="t",
        scenarios=(ScenarioSpec("flash_crowd", seed=31, overrides=(("n_posts", 120), ("n_users", 4))),),
        engines=(EngineSpec("s_unibin"), EngineSpec("p_unibin", workers=2)),
        thresholds=THRESHOLDS,
        timeout_s=30.0,
    )
    settings.update(overrides)
    return MatrixSpec(**settings)


class TestRunMatrix:
    def test_cross_checks_pass_for_equivalent_variants(self):
        result = run_matrix(_matrix())
        assert result.ok
        assert result.counts()["ok"] == 2
        [check] = result.cross_checks
        assert check["ok"] and len(check["engines"]) == 2

    def test_cross_check_failure_fails_matrix(self):
        result = run_matrix(_matrix())
        result.trials[0].digest = "doctored"
        checks = __import__(
            "repro.experiments.runner", fromlist=["_cross_checks"]
        )._cross_checks(result.spec, result.trials)
        assert not checks[0]["ok"]

    def test_crash_fails_matrix(self):
        result = run_matrix(
            _matrix(engines=(EngineSpec("s_indexed_unibin"),))
        )
        assert not result.ok
        assert result.counts()["crash"] == 1

    def test_budgeted_variant_excluded_from_cross_checks(self):
        result = run_matrix(
            _matrix(
                engines=(
                    EngineSpec("s_unibin"),
                    EngineSpec("s_unibin", memory_budget=2_000, spill=True),
                )
            )
        )
        [check] = result.cross_checks
        assert check["engines"] == ["s_unibin"]
        assert result.ok

    def test_progress_lines_one_per_cell(self):
        lines = []
        result = run_matrix(_matrix(), progress=lines.append)
        assert len(lines) == result.spec.cells

    def test_scenario_rows_keep_distinct_labels(self):
        spec = _matrix(
            scenarios=(
                ScenarioSpec("uniform", seed=1, overrides=(("n_posts", 40),)),
                ScenarioSpec("uniform", seed=2, overrides=(("n_posts", 40),)),
            ),
            engines=(EngineSpec("s_unibin"),),
        )
        result = run_matrix(spec)
        labels = {t.scenario for t in result.trials}
        assert len(labels) == 2  # same name, different seeds: never merged
