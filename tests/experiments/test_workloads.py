"""Property-based tests of the scenario registry.

The determinism contract every other harness piece leans on: identical
``(seed, config)`` must produce a byte-identical event sequence (checked
via the canonical JSONL digest), timestamps must never decrease, and the
whole stream must survive the :mod:`repro.dynamic.events` codec — the
same round-trip the CLI's ``--events`` mode performs.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Post
from repro.dynamic.events import event_from_dict, event_to_dict, events_digest
from repro.errors import ExperimentError, UnknownScenarioError
from repro.experiments import SCENARIO_NAMES, ScenarioConfig, make_workload, scenario_help

#: Small worlds keep the hypothesis sweeps fast while still exercising
#: every scenario's special phase (bursts, floods, drift steps, storms).
FAST = {"n_posts": 60, "n_users": 4}

seeds = st.integers(min_value=0, max_value=2**16)


@pytest.mark.parametrize("name", SCENARIO_NAMES)
class TestPerScenarioProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_same_seed_same_bytes(self, name, seed):
        first = make_workload(name, seed, **FAST)
        second = make_workload(name, seed, **FAST)
        assert first.digest() == second.digest()
        assert first.events == second.events

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_timestamps_non_decreasing(self, name, seed):
        events = make_workload(name, seed, **FAST).events
        stamps = [event.timestamp for event in events]
        assert stamps == sorted(stamps)

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_codec_round_trip(self, name, seed):
        workload = make_workload(name, seed, **FAST)
        for event in workload.events:
            record = event_to_dict(event)
            json.dumps(record, sort_keys=True)  # must be JSON-serializable
            assert event_from_dict(record) == event

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_post_ids_sequential_and_counted(self, name, seed):
        workload = make_workload(name, seed, **FAST)
        posts = workload.posts
        assert len(posts) == FAST["n_posts"]
        assert [p.post_id for p in posts] == list(range(len(posts)))

    def test_different_seeds_differ(self, name):
        assert (
            make_workload(name, 1, **FAST).digest()
            != make_workload(name, 2, **FAST).digest()
        )

    def test_authors_within_universe(self, name):
        workload = make_workload(name, 3, **FAST)
        universe = set(workload.friends)
        assert all(p.author in universe for p in workload.posts)
        for subscribed in workload.subscriptions.values():
            assert set(subscribed) <= universe


def test_config_changes_the_stream():
    base = make_workload("spam_flood", 5, **FAST)
    wider = make_workload("spam_flood", 5, flood_len=50, **FAST)
    assert base.digest() != wider.digest()


def test_only_churn_storm_carries_churn():
    for name in SCENARIO_NAMES:
        workload = make_workload(name, 7, **FAST)
        if name == "churn_storm":
            assert workload.has_churn and workload.churn_events > 0
        else:
            assert not workload.has_churn


def test_churn_storm_posts_preserved_through_interleave():
    workload = make_workload("churn_storm", 9, **FAST)
    posts = workload.posts
    assert len(posts) == FAST["n_posts"]
    assert all(isinstance(p, Post) for p in posts)


def test_graph_and_subscription_table_build():
    workload = make_workload("uniform", 11, **FAST)
    graph = workload.graph(0.5)
    assert set(graph.nodes) == set(workload.friends)
    table = workload.subscription_table()
    assert len(table.users) == FAST["n_users"]


def test_events_digest_matches_manual_encoding():
    workload = make_workload("uniform", 13, n_posts=5)
    import hashlib

    hasher = hashlib.sha256()
    for event in workload.events:
        hasher.update(json.dumps(event_to_dict(event), sort_keys=True).encode())
        hasher.update(b"\n")
    assert workload.digest() == hasher.hexdigest() == events_digest(workload.events)


def test_unknown_scenario_raises():
    with pytest.raises(UnknownScenarioError, match="unknown scenario"):
        make_workload("nope", 1)


@pytest.mark.parametrize(
    "bad",
    [
        {"n_posts": 0},
        {"n_authors": 1},
        {"n_users": 0},
        {"subscriptions_per_user": 0},
        {"subscriptions_per_user": 99},
        {"mean_gap": 0.0},
        {"echo_prob": 1.5},
        {"storm_count": 3, "storm_fraction": 0.5},
    ],
)
def test_config_validation(bad):
    with pytest.raises(ExperimentError):
        ScenarioConfig(**bad)


def test_config_round_trips_as_plain_data():
    config = ScenarioConfig(n_posts=10, flood_len=7)
    record = config.to_dict()
    assert ScenarioConfig(**record) == config


def test_scenario_help_covers_registry():
    lines = scenario_help()
    assert set(lines) == set(SCENARIO_NAMES)
    assert all(lines[name] for name in lines)
