"""Grid specs: validation, labels, JSON round-trips, the registry."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    MATRICES,
    EngineSpec,
    MatrixSpec,
    ScenarioSpec,
    matrix_from_dict,
    resolve_matrix,
)


class TestEngineSpec:
    def test_label_encodes_every_knob(self):
        spec = EngineSpec(
            "p_unibin", workers=2, supervised=True, memory_budget=512, spill=True
        )
        assert spec.label == "p_unibin@w2+sup+mem512+spill"
        assert EngineSpec("s_unibin").label == "s_unibin"

    def test_algorithm_and_prefix(self):
        spec = EngineSpec("s_neighborbin")
        assert spec.prefix == "s" and spec.algorithm == "neighborbin"

    def test_exact_iff_unbudgeted(self):
        assert EngineSpec("s_unibin").exact
        assert not EngineSpec("s_unibin", memory_budget=1024).exact

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "unibin"},
            {"name": "x_unibin"},
            {"name": "s_"},
            {"name": "s_unibin", "workers": 0},
            {"name": "s_unibin", "batch_size": 0},
            {"name": "s_unibin", "supervised": True},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            EngineSpec(**kwargs)


class TestScenarioSpec:
    def test_unknown_scenario_fails_at_parse_time(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            ScenarioSpec("nope")

    def test_bad_override_fails_at_parse_time(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec("uniform", overrides=(("n_posts", 0),))

    def test_label_includes_seed_and_overrides(self):
        assert ScenarioSpec("uniform", seed=7).label == "uniform#7"
        spec = ScenarioSpec("uniform", seed=7, overrides=(("n_posts", 50),))
        assert spec.label == "uniform#7[n_posts=50]"


class TestMatrixSpec:
    def test_registry_matrices_are_valid(self):
        for name, spec in MATRICES.items():
            assert spec.name == name
            assert spec.cells == len(spec.scenarios) * len(spec.engines)

    def test_duplicate_engines_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate engine"):
            MatrixSpec(
                name="bad",
                scenarios=(ScenarioSpec("uniform"),),
                engines=(EngineSpec("s_unibin"), EngineSpec("s_unibin")),
            )

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate scenario"):
            MatrixSpec(
                name="bad",
                scenarios=(ScenarioSpec("uniform"), ScenarioSpec("uniform")),
                engines=(EngineSpec("s_unibin"),),
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ExperimentError, match="no scenarios"):
            MatrixSpec(name="bad", scenarios=(), engines=(EngineSpec("s_unibin"),))
        with pytest.raises(ExperimentError, match="no engines"):
            MatrixSpec(name="bad", scenarios=(ScenarioSpec("uniform"),), engines=())

    def test_json_round_trip(self):
        spec = MATRICES["smoke"]
        rebuilt = matrix_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_malformed_grid_config(self):
        with pytest.raises(ExperimentError, match="malformed grid config"):
            matrix_from_dict({"scenarios": [{"seed": 1}], "engines": []})
        with pytest.raises(ExperimentError, match="JSON object"):
            matrix_from_dict(["not", "a", "dict"])


class TestResolveMatrix:
    def test_registry_name(self):
        assert resolve_matrix("smoke") is MATRICES["smoke"]

    def test_grid_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(MATRICES["smoke"].to_dict()))
        assert resolve_matrix(str(path)) == MATRICES["smoke"]

    def test_unknown_name(self):
        with pytest.raises(ExperimentError, match="unknown matrix"):
            resolve_matrix("nope")

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError, match="invalid JSON"):
            resolve_matrix(str(path))
