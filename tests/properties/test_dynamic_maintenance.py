"""Property-based correctness of incremental topology maintenance.

The claims that make the dynamic subsystem trustworthy, stated over
*arbitrary* follow/unfollow sequences:

1. :class:`SimilarityMaintainer` is path-independent — after any mutation
   sequence its edge set equals a from-scratch
   :class:`~repro.authors.FriendVectors` build of the final relation.
2. :class:`TopologyManager`'s incrementally maintained components equal a
   from-scratch BFS over its own graph, and its incrementally repaired
   clique cover passes :func:`~repro.authors.verify_cover` at every step.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.authors import FriendVectors, pairwise_similarities, verify_cover
from repro.authors.incremental import SimilarityMaintainer
from repro.dynamic import TopologyManager
from repro.dynamic.topology import scoped_components

N_AUTHORS = 8
N_TARGETS = 10
THRESHOLD = 0.5  # similarity cut == 1 - lambda_a with lambda_a = 0.5

#: One mutation: (is_follow, author index, followee target).
mutations = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=N_AUTHORS - 1),
        st.integers(min_value=100, max_value=100 + N_TARGETS - 1),
    ),
    max_size=60,
)

initial_relations = st.fixed_dictionaries(
    {
        author: st.sets(
            st.integers(min_value=100, max_value=100 + N_TARGETS - 1),
            max_size=4,
        )
        for author in range(N_AUTHORS)
    }
)


def _expected_edges(friends: dict[int, set[int]]) -> set[tuple[int, int]]:
    vectors = FriendVectors(friends)
    return {
        pair
        for pair, sim in pairwise_similarities(vectors).items()
        if sim >= THRESHOLD - 1e-12
    }


@given(initial=initial_relations, steps=mutations)
@settings(max_examples=60, deadline=None)
def test_maintainer_equals_from_scratch_build(initial, steps):
    maintainer = SimilarityMaintainer(initial, threshold=THRESHOLD)
    shadow = {author: set(f) for author, f in initial.items()}
    for is_follow, author, followee in steps:
        if is_follow:
            maintainer.follow(author, followee)
            shadow[author].add(followee)
        else:
            maintainer.unfollow(author, followee)
            shadow[author].discard(followee)
        assert maintainer.edges() == _expected_edges(shadow)
        assert maintainer.friends() == shadow


@given(initial=initial_relations, steps=mutations)
@settings(max_examples=40, deadline=None)
def test_manager_components_and_cover_stay_correct(initial, steps):
    manager = TopologyManager(
        initial,
        lambda_a=1.0 - THRESHOLD,
        maintain_cover=True,
        validate_covers=True,  # verify_cover after every repair
    )
    version = 0
    for is_follow, author, followee in steps:
        delta = (
            manager.follow(author, followee)
            if is_follow
            else manager.unfollow(author, followee)
        )
        if delta.empty:
            assert manager.version == version
        else:
            version += 1
            assert manager.version == version
        assert manager.components() == scoped_components(
            manager.graph, manager.graph.nodes
        )
    verify_cover(manager.graph, manager.cover)
