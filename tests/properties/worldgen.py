"""Seeded random world generator for the property-based suite.

A *world* is an author graph plus a timestamp-ordered post stream with
fingerprints constructed directly (no text hashing), so the generator can
steer the content dimension precisely: a tunable fraction of posts *echo*
an earlier post's fingerprint with a few random bit flips, producing
near-duplicates at controlled Hamming distances — the regime where the
coverage logic actually has to work. Everything is driven by one
``random.Random(seed)``: the same seed always builds the same world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.authors import AuthorGraph
from repro.core import CoverageChecker, Post, Thresholds

#: The four single-user engines under test.
ALL_ENGINES = ("unibin", "neighborbin", "cliquebin", "indexed_unibin")

#: Engines that accept a disabled author dimension (lambda_a >= 1).
AUTHOR_FREE_ENGINES = ("unibin", "indexed_unibin")


@dataclass(frozen=True, slots=True)
class World:
    """One generated test scenario."""

    seed: int
    graph: AuthorGraph
    thresholds: Thresholds
    posts: list[Post]

    @property
    def checker(self) -> CoverageChecker:
        return CoverageChecker(self.thresholds, self.graph)


def _flip_bits(fingerprint: int, flips: int, rng: random.Random) -> int:
    for bit in rng.sample(range(64), flips):
        fingerprint ^= 1 << bit
    return fingerprint


def make_world(
    seed: int,
    *,
    n_posts: int = 250,
    n_authors: int = 12,
    edge_prob: float = 0.3,
    echo_prob: float = 0.6,
    max_flips: int = 24,
    mean_gap: float = 10.0,
    lambda_c: int = 8,
    lambda_t: float = 120.0,
    lambda_a: float = 0.7,
) -> World:
    """Build a deterministic random world.

    ``echo_prob`` of posts copy a recent post's fingerprint with
    ``randint(0, max_flips)`` bit flips — spanning both sides of any λc up
    to ``max_flips``; the rest draw 64 fresh random bits. Timestamps are
    non-decreasing with exponential gaps of mean ``mean_gap`` seconds, so
    streams span several λt windows.
    """
    rng = random.Random(seed)
    authors = list(range(1, n_authors + 1))
    edges = [
        (a, b)
        for i, a in enumerate(authors)
        for b in authors[i + 1 :]
        if rng.random() < edge_prob
    ]
    graph = AuthorGraph(authors, edges)

    posts: list[Post] = []
    t = 0.0
    for i in range(n_posts):
        t += rng.expovariate(1.0 / mean_gap)
        if posts and rng.random() < echo_prob:
            source = posts[-rng.randint(1, min(len(posts), 25))]
            fingerprint = _flip_bits(
                source.fingerprint, rng.randint(0, max_flips), rng
            )
        else:
            fingerprint = rng.getrandbits(64)
        posts.append(
            Post(
                post_id=i,
                author=rng.choice(authors),
                text=f"post-{i}",
                timestamp=t,
                fingerprint=fingerprint,
            )
        )
    return World(
        seed=seed,
        graph=graph,
        thresholds=Thresholds(
            lambda_c=lambda_c, lambda_t=lambda_t, lambda_a=lambda_a
        ),
        posts=posts,
    )


#: The threshold grid every property is exercised across: content from
#: "exact duplicates only" to "almost anything matches", time windows
#: shorter and longer than the stream span, author dimension on and off.
THRESHOLD_GRID = tuple(
    {"lambda_c": lc, "lambda_t": lt, "lambda_a": la}
    for lc in (0, 2, 8, 18)
    for lt in (30.0, 600.0)
    for la in (0.7, 1.0)
)


def run_engine(engine, posts: list[Post]) -> frozenset[int]:
    """Offer ``posts`` in order; return the admitted post-id set."""
    return frozenset(p.post_id for p in posts if engine.offer(p))
