"""Differential and metamorphic properties across the engines.

Differential: UniBin, NeighborBin, CliqueBin and IndexedUniBin all
implement the same greedy semantics — admit iff no earlier retained post
covers the arrival — through different data structures, so on any stream
they must retain the **identical post-id set**. Random worlds turn this
into a cross-implementation oracle: a bug in any one bin structure shows
up as a disagreement.

Metamorphic: transformations of a world with a provably known effect on
the retained set —

* shifting every timestamp by a constant changes nothing (coverage only
  uses gaps);
* XOR-ing every fingerprint with one mask changes nothing (Hamming
  distance is XOR-invariant);
* relabelling authors by a permutation (and relabelling the graph the
  same way) changes nothing;
* injecting an exact duplicate (same timestamp/author/fingerprint)
  immediately after its original changes nothing — the duplicate is
  covered by whatever admitted or covered the original;
* tightening thresholds keeps the coverage guarantee *under the looser
  predicate*: every post dropped by the tight run is loosely covered by a
  tight-retained post (predicate inclusion).

Note what is deliberately absent: |retained| is **not** monotone in the
thresholds — loosening coverage can reshuffle greedy choices and retain
*more* posts — so no size-comparison assertion appears here.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.authors import AuthorGraph
from repro.core import CoverageChecker, Thresholds, make_diversifier
from repro.eval import find_uncovered

from .worldgen import ALL_ENGINES, make_world, run_engine

SEEDS = (7, 19, 31, 53)
GRIDS = (
    {"lambda_c": 2, "lambda_t": 60.0, "lambda_a": 0.7},
    {"lambda_c": 8, "lambda_t": 120.0, "lambda_a": 0.7},
    {"lambda_c": 18, "lambda_t": 600.0, "lambda_a": 0.7},
)


def _retained(engine_name: str, world) -> frozenset[int]:
    engine = make_diversifier(engine_name, world.thresholds, world.graph)
    return run_engine(engine, world.posts)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("grid", GRIDS, ids=lambda g: "c{lambda_c}".format(**g))
def test_all_engines_retain_identical_sets(seed, grid):
    world = make_world(seed, **grid)
    results = {name: _retained(name, world) for name in ALL_ENGINES}
    reference = results["unibin"]
    for name, retained in results.items():
        assert retained == reference, (
            f"{name} disagrees with unibin on seed={seed} grid={grid}: "
            f"only-{name}={sorted(retained - reference)[:5]} "
            f"only-unibin={sorted(reference - retained)[:5]}"
        )


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_time_shift_invariance(engine_name, seed):
    world = make_world(seed)
    shifted = [replace(p, timestamp=p.timestamp + 9999.5) for p in world.posts]
    engine_a = make_diversifier(engine_name, world.thresholds, world.graph)
    engine_b = make_diversifier(engine_name, world.thresholds, world.graph)
    assert run_engine(engine_a, world.posts) == run_engine(engine_b, shifted)


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_fingerprint_xor_invariance(engine_name, seed):
    """XOR with a constant mask is a Hamming isometry."""
    world = make_world(seed)
    mask = random.Random(seed).getrandbits(64)
    masked = [replace(p, fingerprint=p.fingerprint ^ mask) for p in world.posts]
    engine_a = make_diversifier(engine_name, world.thresholds, world.graph)
    engine_b = make_diversifier(engine_name, world.thresholds, world.graph)
    assert run_engine(engine_a, world.posts) == run_engine(engine_b, masked)


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_author_relabelling_invariance(engine_name, seed):
    world = make_world(seed)
    rng = random.Random(seed + 1)
    authors = sorted(world.graph.nodes)
    relabel = dict(zip(authors, rng.sample(authors, len(authors))))
    permuted_graph = AuthorGraph(
        [relabel[a] for a in authors],
        [(relabel[a], relabel[b]) for a, b in world.graph.edges()],
    )
    permuted_posts = [replace(p, author=relabel[p.author]) for p in world.posts]
    engine_a = make_diversifier(engine_name, world.thresholds, world.graph)
    engine_b = make_diversifier(engine_name, world.thresholds, permuted_graph)
    assert run_engine(engine_a, world.posts) == run_engine(engine_b, permuted_posts)


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_exact_duplicate_injection_is_a_noop(engine_name, seed):
    """Duplicating a post in place (identical timestamp, author and
    fingerprint, fresh id) never changes which original ids are retained,
    and no duplicate is ever admitted."""
    world = make_world(seed)
    rng = random.Random(seed + 2)
    stream = []
    duplicate_ids = set()
    next_id = len(world.posts)
    for post in world.posts:
        stream.append(post)
        if rng.random() < 0.3:
            stream.append(replace(post, post_id=next_id))
            duplicate_ids.add(next_id)
            next_id += 1
    engine_a = make_diversifier(engine_name, world.thresholds, world.graph)
    engine_b = make_diversifier(engine_name, world.thresholds, world.graph)
    baseline = run_engine(engine_a, world.posts)
    with_dupes = run_engine(engine_b, stream)
    assert with_dupes & duplicate_ids == frozenset()
    assert with_dupes == baseline


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_tight_run_satisfies_loose_coverage(engine_name, seed):
    """Predicate inclusion: the set retained under tight thresholds covers
    every input post under the *looser* predicate too."""
    tight = make_world(seed, lambda_c=2, lambda_t=60.0, lambda_a=0.7)
    loose = Thresholds(lambda_c=18, lambda_t=600.0, lambda_a=0.7)
    engine = make_diversifier(engine_name, tight.thresholds, tight.graph)
    retained = run_engine(engine, tight.posts)
    loose_checker = CoverageChecker(loose, tight.graph)
    assert find_uncovered(tight.posts, retained, loose_checker) == []
