"""Fault-fuzz: seeded corruption through the resilient pipeline.

Random worlds are damaged with the :mod:`repro.resilience.faults`
injectors and fed through :class:`ResilientIngest`. Under every seed the
pipeline must uphold, *exactly*:

* **conservation** — every arriving input is accounted for once:
  ``offered == admitted + rejected + quarantined + late_dropped``;
* **the coverage guarantee** — after reorder-buffer recovery, every clean
  post that was dropped is covered by a retained post (the invariant
  survives the faults, not just the happy path);
* **recovery** — with ``max_skew >= max_displacement`` and duplicates as
  the only post-level fault, the retained id set equals the clean run's
  (duplicates share their original's id, so the sets match exactly);
* **metrics agreement** — a bound :class:`~repro.obs.Registry` snapshot
  reports the same counts as the pipeline's own accounting;
* **transport accounting** — JSONL-level damage is quarantined line for
  line: quarantine volume equals the line injector's fault count.
"""

from __future__ import annotations

import pytest

from repro.core import make_diversifier
from repro.eval import find_uncovered
from repro.io import post_to_dict
from repro.obs import Registry
from repro.resilience import ResilientIngest
from repro.resilience.faults import FaultSchedule, LineFaultInjector

from .worldgen import make_world, run_engine

SEEDS = (3, 13, 29, 41)
DISPLACEMENT = 25.0


def _ingest_all(pipeline, posts):
    events = []
    for post in posts:
        events.extend(pipeline.ingest(post))
    events.extend(pipeline.flush())
    return events


def _status_counts(events):
    counts = {"admitted": 0, "rejected": 0, "quarantined": 0, "late_dropped": 0}
    for event in events:
        counts[event.status] += 1
    return counts


@pytest.mark.parametrize("seed", SEEDS)
def test_conservation_and_coverage_under_shuffle_and_duplicates(seed):
    world = make_world(seed)
    schedule = FaultSchedule(
        seed=seed, max_displacement=DISPLACEMENT, duplicate_prob=0.2
    )
    damaged = list(schedule.apply(world.posts))

    engine = make_diversifier("unibin", world.thresholds, world.graph)
    pipeline = ResilientIngest(engine, max_skew=DISPLACEMENT)
    events = _ingest_all(pipeline, damaged)

    counts = _status_counts(events)
    assert sum(counts.values()) == len(events)
    assert len(events) == len(damaged)  # conservation: all inputs accounted
    assert counts["quarantined"] == 0
    assert counts["late_dropped"] == 0

    retained = frozenset(e.post.post_id for e in events if e.admitted)
    # Coverage holds over the *clean* world despite the damage.
    assert find_uncovered(world.posts, retained, world.checker) == []


@pytest.mark.parametrize("seed", SEEDS)
def test_reorder_recovery_matches_clean_run(seed):
    """A skew window >= the injected displacement restores the clean
    stream, so the retained set is bit-identical to an undamaged run."""
    world = make_world(seed)
    clean_engine = make_diversifier("unibin", world.thresholds, world.graph)
    clean_retained = run_engine(clean_engine, world.posts)

    schedule = FaultSchedule(
        seed=seed, max_displacement=DISPLACEMENT, duplicate_prob=0.3
    )
    damaged = list(schedule.apply(world.posts))
    engine = make_diversifier("unibin", world.thresholds, world.graph)
    pipeline = ResilientIngest(engine, max_skew=DISPLACEMENT)
    events = _ingest_all(pipeline, damaged)
    retained = frozenset(e.post.post_id for e in events if e.admitted)

    assert retained == clean_retained
    # A duplicate (same id, emitted adjacent to its original) is always
    # covered and must never be double-admitted.
    admitted_events = [e for e in events if e.admitted]
    assert len(admitted_events) == len(retained)


@pytest.mark.parametrize("seed", SEEDS)
def test_metrics_snapshot_agrees_with_pipeline_accounting(seed):
    world = make_world(seed)
    schedule = FaultSchedule(
        seed=seed, max_displacement=DISPLACEMENT, duplicate_prob=0.2
    )
    damaged = list(schedule.apply(world.posts))

    engine = make_diversifier("cliquebin", world.thresholds, world.graph)
    pipeline = ResilientIngest(engine, max_skew=DISPLACEMENT)
    registry = Registry()
    pipeline.bind_metrics(registry)
    _ingest_all(pipeline, damaged)

    accounting = pipeline.counters()
    stats = accounting["engine"]
    assert registry.value("repro_comparisons_total", engine="cliquebin") == (
        stats["comparisons"]
    )
    assert registry.value(
        "repro_offers_total", engine="cliquebin", decision="admitted"
    ) == stats["posts_admitted"]
    reorder = accounting["reorder"]
    assert registry.value("repro_reorder_received_total") == reorder["received"]
    assert registry.value("repro_reorder_released_total") == reorder["released"]
    assert registry.value("repro_reorder_reordered_total") == reorder["reordered"]
    assert registry.value("repro_quarantined_total") == len(pipeline.quarantine)
    assert registry.value("repro_reorder_buffer_depth") == 0  # flushed


@pytest.mark.parametrize("seed", SEEDS)
def test_late_drops_are_counted_not_lost(seed):
    """With a skew window *smaller* than the displacement, late posts are
    dropped — but counted, and conservation still holds."""
    world = make_world(seed)
    schedule = FaultSchedule(seed=seed, max_displacement=DISPLACEMENT)
    damaged = list(schedule.apply(world.posts))

    engine = make_diversifier("unibin", world.thresholds, world.graph)
    pipeline = ResilientIngest(engine, max_skew=DISPLACEMENT / 10, late_policy="drop")
    events = _ingest_all(pipeline, damaged)
    counts = _status_counts(events)
    assert len(events) == len(damaged)
    assert counts["late_dropped"] == pipeline.reorder.counters.late_dropped
    assert (
        counts["admitted"] + counts["rejected"]
        == pipeline.reorder.counters.released
    )
    # Whatever got through still upholds coverage over the posts the
    # engine actually saw.
    seen = [e.post for e in events if e.status in ("admitted", "rejected")]
    seen.sort(key=lambda p: p.timestamp)
    retained = frozenset(e.post.post_id for e in events if e.admitted)
    assert find_uncovered(seen, retained, world.checker) == []


@pytest.mark.parametrize("seed", SEEDS)
def test_transport_damage_quarantined_line_for_line(seed, tmp_path):
    """JSONL corruption: every damaged line lands in quarantine, every
    clean line reaches the engine, counts agree exactly."""
    import json

    from repro.resilience.pipeline import ingest_jsonl

    world = make_world(seed, n_posts=150)
    lines = [json.dumps(post_to_dict(p), sort_keys=True) for p in world.posts]
    injector = LineFaultInjector(
        seed=seed, malformed_prob=0.05, torn_prob=0.05, bad_timestamp_prob=0.05
    )
    damaged = list(injector.apply(lines))
    trace = tmp_path / "damaged.jsonl"
    trace.write_text("\n".join(damaged) + "\n", encoding="utf-8")

    engine = make_diversifier("unibin", world.thresholds, world.graph)
    pipeline = ResilientIngest(engine)
    events = ingest_jsonl(pipeline, trace, on_error="quarantine")

    faults = injector.counts
    injected = faults.malformed + faults.torn + faults.bad_timestamp
    assert len(pipeline.quarantine) == injected
    decided = sum(1 for e in events if e.status in ("admitted", "rejected"))
    assert decided == faults.passed
    assert decided + injected == len(damaged)
