"""Generative test of the SPSD coverage guarantee (paper Definition 1).

For every engine, every seed, and every threshold combination in the grid:
after ingesting a random world, **every dropped post must be covered by
some retained post** — within λc Hamming bits, within λt seconds, and
author-similar under λa. The oracle is :func:`repro.eval.find_uncovered`,
an offline re-check independent of any engine's data structures.

A second invariant rides along: greedy admission must never retain a
*redundant* post — one already covered by an earlier retained post at its
arrival time.
"""

from __future__ import annotations

import pytest

from repro.core import CoverageChecker, Thresholds, make_diversifier
from repro.errors import ConfigurationError
from repro.eval import find_uncovered

from .worldgen import (
    ALL_ENGINES,
    AUTHOR_FREE_ENGINES,
    THRESHOLD_GRID,
    make_world,
    run_engine,
)

SEEDS = (11, 23, 47)


def _skip_if_unsupported(engine_name: str, lambda_a: float) -> None:
    if lambda_a >= 1.0 and engine_name not in AUTHOR_FREE_ENGINES:
        pytest.skip(f"{engine_name} rejects a disabled author dimension")


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "grid", THRESHOLD_GRID, ids=lambda g: "c{lambda_c}_t{lambda_t:g}_a{lambda_a}".format(**g)
)
def test_every_dropped_post_is_covered(engine_name, seed, grid):
    _skip_if_unsupported(engine_name, grid["lambda_a"])
    world = make_world(seed, **grid)
    engine = make_diversifier(engine_name, world.thresholds, world.graph)
    admitted = run_engine(engine, world.posts)
    uncovered = find_uncovered(world.posts, admitted, world.checker)
    assert uncovered == [], (
        f"{engine_name} seed={seed} grid={grid}: "
        f"{len(uncovered)} dropped posts left uncovered, "
        f"first ids {[p.post_id for p in uncovered[:5]]}"
    )


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "grid", THRESHOLD_GRID, ids=lambda g: "c{lambda_c}_t{lambda_t:g}_a{lambda_a}".format(**g)
)
def test_no_redundant_admissions(engine_name, seed, grid):
    """Greedy minimality: a retained post was not covered, at its arrival,
    by any earlier retained post."""
    _skip_if_unsupported(engine_name, grid["lambda_a"])
    world = make_world(seed, **grid)
    engine = make_diversifier(engine_name, world.thresholds, world.graph)
    admitted_ids = run_engine(engine, world.posts)
    checker = world.checker
    retained = [p for p in world.posts if p.post_id in admitted_ids]
    for i, post in enumerate(retained):
        for earlier in retained[:i]:
            assert not checker.covers(post, earlier), (
                f"{engine_name}: post {post.post_id} was admitted although "
                f"already covered by retained post {earlier.post_id}"
            )


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_degenerate_total_coverage_retains_one_post(engine_name):
    """λc=64, huge λt, author dimension off: the first post covers
    everything, so exactly one post survives."""
    _skip_if_unsupported(engine_name, 1.0)
    # indexed_unibin's multi-index needs radius < 64; 63 behaves identically
    # here since no pair in this seeded world is an exact bitwise complement.
    lambda_c = 63 if engine_name == "indexed_unibin" else 64
    world = make_world(5, lambda_c=lambda_c, lambda_t=1e9, lambda_a=1.0)
    engine = make_diversifier(engine_name, world.thresholds, world.graph)
    admitted = run_engine(engine, world.posts)
    assert admitted == frozenset({world.posts[0].post_id})


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_degenerate_no_coverage_retains_everything(engine_name, seed):
    """λt=0 on a strictly-increasing-timestamp stream: no pair is
    time-similar, so nothing can be covered and everything survives."""
    world = make_world(seed, lambda_t=0.0, lambda_a=0.7)
    engine = make_diversifier(engine_name, world.thresholds, world.graph)
    admitted = run_engine(engine, world.posts)
    assert admitted == frozenset(p.post_id for p in world.posts)


@pytest.mark.parametrize("engine_name", ("neighborbin", "cliquebin"))
def test_author_binned_engines_reject_disabled_author_dimension(engine_name):
    """The author-binned engines cannot represent λa >= 1 and must say so
    loudly rather than silently under-cover."""
    world = make_world(3)
    thresholds = Thresholds(lambda_c=8, lambda_t=120.0, lambda_a=1.0)
    with pytest.raises(ConfigurationError):
        make_diversifier(engine_name, thresholds, world.graph)


@pytest.mark.parametrize("seed", SEEDS)
def test_oracle_catches_a_seeded_violation(seed):
    """Sanity-check the oracle itself: deleting one retained post from the
    admitted set must surface at least one coverage violation whenever the
    run actually dropped a post near it (guards against a vacuous oracle)."""
    world = make_world(seed, lambda_c=18, lambda_t=600.0, lambda_a=1.0)
    engine = make_diversifier("unibin", world.thresholds, world.graph)
    admitted = run_engine(engine, world.posts)
    dropped = [p for p in world.posts if p.post_id not in admitted]
    assert dropped, "world too sparse to exercise the oracle"
    checker = CoverageChecker(world.thresholds, world.graph)
    # Remove the sole coverer of some dropped post; the oracle must notice.
    victim = dropped[0]
    coverers = {
        p.post_id
        for p in world.posts
        if p.post_id in admitted
        and p.timestamp <= victim.timestamp
        and checker.covers(victim, p)
    }
    weakened = admitted - coverers
    violations = find_uncovered(world.posts, weakened, checker)
    assert victim.post_id in {p.post_id for p in violations}
