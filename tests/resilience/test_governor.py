"""MemoryGovernor: the degradation ladder, its hysteresis, and the
overload-controller coupling.

Most tests drive the governor with a scripted fake engine whose reported
usage the test controls exactly — the ladder logic is a pure control
policy and deserves pure-control tests. The last class closes the loop
against a real engine with tiered storage.
"""

import pytest

from repro.core import Thresholds, make_diversifier
from repro.errors import MemoryBudgetError
from repro.resilience import (
    GOVERNOR_LEVELS,
    GovernorConfig,
    MemoryGovernor,
    OverloadController,
)
from repro.storage import SpillConfig

from ..support import AUTHORS, EDGES, make_posts


class FakeEngine:
    """An engine whose accounted usage is a test-controlled dial."""

    def __init__(self, window: int = 0):
        self.window = window
        self.spills = 0
        self.probe_limit = None

    def memory_breakdown(self):
        return {"window": self.window}

    def spill(self):
        self.spills += 1
        return 0

    def set_probe_limit(self, limit):
        self.probe_limit = limit


def make_governor(budget=1000, *, overload=None, **overrides):
    engine = FakeEngine()
    config = GovernorConfig(budget_bytes=budget, check_every=1, **overrides)
    return engine, MemoryGovernor(engine, config, overload=overload)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        (
            {"budget_bytes": 0},
            {"budget_bytes": 100, "resume_fraction": 0.0},
            {"budget_bytes": 100, "resume_fraction": 1.0},
            {"budget_bytes": 100, "check_every": 0},
            {"budget_bytes": 100, "probe_limit": 0},
        ),
    )
    def test_rejects_bad_knobs(self, overrides):
        with pytest.raises(MemoryBudgetError):
            GovernorConfig(**overrides)

    def test_ladder_names(self):
        assert GOVERNOR_LEVELS == ("normal", "spill", "probe", "shed")


class TestEscalation:
    def test_one_rung_per_tick(self):
        engine, governor = make_governor(1000)
        engine.window = 5000
        governor.tick()
        assert governor.level_name == "spill"
        governor.tick()
        assert governor.level_name == "probe"
        assert governor.escalations == 2
        assert [t.level for t in governor.transitions] == ["spill", "probe"]
        assert all(t.direction == "escalate" for t in governor.transitions)

    def test_tops_out_at_probe_without_overload(self):
        engine, governor = make_governor(1000)
        engine.window = 5000
        for _ in range(5):
            governor.tick()
        assert governor.level_name == "probe"
        assert governor.escalations == 2

    def test_reaches_shed_with_overload(self):
        overload = OverloadController(max_delay=5.0)
        engine, governor = make_governor(1000, overload=overload)
        engine.window = 5000
        for _ in range(3):
            governor.tick()
        assert governor.level_name == "shed"
        assert overload.should_shed(0.0)
        assert overload.counters.episodes == 1

    def test_probe_rung_caps_the_engine(self):
        engine, governor = make_governor(1000, probe_limit=7)
        engine.window = 5000
        governor.tick()
        assert engine.probe_limit is None  # spill rung: no verdict change
        governor.tick()
        assert engine.probe_limit == 7

    def test_spill_runs_every_tick_while_degraded(self):
        engine, governor = make_governor(1000)
        engine.window = 5000
        governor.tick()
        governor.tick()
        assert engine.spills == 2
        engine.window = 100  # recovered: release to normal, stop spilling
        governor.tick()
        assert engine.spills == 3  # leaving spill still flushed this tick
        governor.tick()
        assert engine.spills == 3

    def test_normal_operation_never_touches_the_engine(self):
        engine, governor = make_governor(1000)
        engine.window = 500
        for _ in range(10):
            governor.tick()
        assert governor.level_name == "normal"
        assert engine.spills == 0
        assert engine.probe_limit is None
        assert governor.transitions == []


class TestHysteresis:
    def test_dead_band_holds_the_rung(self):
        # budget 1000, resume 0.75: the band (750, 1000] must hold steady.
        engine, governor = make_governor(1000)
        engine.window = 1500
        governor.tick()
        assert governor.level_name == "spill"
        engine.window = 900  # inside the dead band
        for _ in range(10):
            governor.tick()
        assert governor.level_name == "spill"
        assert governor.releases == 0

    def test_release_one_rung_per_tick_with_undo(self):
        overload = OverloadController(max_delay=5.0)
        engine, governor = make_governor(1000, overload=overload, probe_limit=9)
        engine.window = 5000
        for _ in range(3):
            governor.tick()
        assert governor.level_name == "shed"
        assert engine.probe_limit == 9

        engine.window = 100
        governor.tick()  # shed -> probe: memory pressure released
        assert governor.level_name == "probe"
        assert not overload.memory_pressure
        governor.tick()  # probe -> spill: exact scans restored
        assert governor.level_name == "spill"
        assert engine.probe_limit is None
        governor.tick()  # spill -> normal: nothing to undo
        assert governor.level_name == "normal"
        assert governor.releases == 3
        assert [t.direction for t in governor.transitions[-3:]] == ["release"] * 3

    def test_no_oscillation_across_a_noisy_boundary(self):
        """Usage bouncing around the budget must not flap the ladder: the
        dips (into the dead band, never below the resume threshold) must
        produce zero releases, so the rung ratchets monotonically to the
        ladder top instead of cycling escalate/release forever."""
        engine, governor = make_governor(1000)
        for i in range(40):
            engine.window = 1050 if i % 2 == 0 else 950
            governor.tick()
        assert governor.level_name == "probe"  # the top, without overload
        assert governor.escalations == 2
        assert governor.releases == 0


class TestObserveCadence:
    def test_ticks_once_per_check_every_posts(self):
        engine = FakeEngine(window=10)
        governor = MemoryGovernor(engine, GovernorConfig(100, check_every=8))
        for _ in range(7):
            governor.observe()
        assert governor.ticks == 0
        governor.observe()
        assert governor.ticks == 1
        governor.observe(posts=16)
        assert governor.ticks == 2  # batched arrivals still pace one tick


class TestAccounting:
    def test_extra_sources_join_the_usage(self):
        engine, governor = make_governor(1000)
        engine.window = 300
        governor.add_source("mailbox", lambda: 250)
        assert governor.usage() == {"window": 300, "mailbox": 250}
        assert governor.total_bytes() == 550

    def test_sources_merge_into_existing_families(self):
        engine, governor = make_governor(1000)
        engine.window = 300
        governor.add_source("window", lambda: 100)
        assert governor.usage() == {"window": 400}

    def test_status_reports_the_last_measurement(self):
        engine, governor = make_governor(1000)
        engine.window = 1500
        governor.tick()
        status = governor.status()
        assert status["level"] == "spill"
        assert status["budget_bytes"] == 1000
        assert status["total_bytes"] == 1500
        assert status["usage"] == {"window": 1500}
        assert status["escalations"] == 1
        assert governor.degraded


class TestOverloadCoupling:
    def test_memory_pressure_sheds_independently_of_backlog(self):
        overload = OverloadController(max_delay=5.0)
        assert not overload.should_shed(0.1)
        overload.set_memory_pressure(True)
        assert overload.should_shed(0.1)  # backlog is fine; memory is not
        assert overload.counters.episodes == 1
        assert overload.snapshot()["memory_pressure"] is True

    def test_pressure_during_backlog_shedding_does_not_double_count(self):
        overload = OverloadController(max_delay=1.0)
        assert overload.should_shed(5.0)  # backlog episode starts
        assert overload.counters.episodes == 1
        overload.set_memory_pressure(True)
        assert overload.counters.episodes == 1  # same episode, second cause

    def test_release_hands_back_to_backlog_hysteresis(self):
        overload = OverloadController(max_delay=1.0, resume_delay=0.5)
        overload.set_memory_pressure(True)
        assert overload.should_shed(0.1)
        overload.set_memory_pressure(False)
        # Below the resume threshold: the episode drains cleanly.
        assert not overload.should_shed(0.1)
        assert overload.counters.episodes == 1


class TestAgainstRealEngine:
    def test_spill_rung_frees_accounted_bytes_without_verdict_drift(self, tmp_path):
        from repro.authors import AuthorGraph

        thresholds = Thresholds(lambda_c=8, lambda_t=40.0, lambda_a=0.5)
        graph = AuthorGraph(nodes=AUTHORS, edges=EDGES)
        posts = make_posts(400, seed=31)

        exact = make_diversifier("unibin", thresholds, graph)
        tiered = make_diversifier(
            "unibin",
            thresholds,
            graph,
            storage=SpillConfig(str(tmp_path), head_limit=256, segment_size=16),
        )
        governor = MemoryGovernor(
            tiered, GovernorConfig(budget_bytes=4000, check_every=32)
        )
        for post in posts:
            assert tiered.offer(post) == exact.offer(post)
            governor.observe()
        assert governor.escalations >= 1
        assert governor.level_name in ("spill", "probe")
        # Spilling kept the resident window under what exact retains.
        assert (
            tiered.memory_breakdown()["window"]
            < exact.memory_breakdown()["window"]
        )
        assert tiered.state_dict() == exact.state_dict()
