"""Tests for repro.resilience.pipeline — the composed ResilientIngest."""

import math

import pytest

from repro.core import NeighborBin, Post, Thresholds, UniBin
from repro.errors import CheckpointError
from repro.multiuser import make_multiuser
from repro.resilience import Quarantine, ResilientIngest, ingest_jsonl


def _post(post_id, timestamp, *, author=1, fp=0):
    return Post(
        post_id=post_id, author=author, text="t", timestamp=timestamp, fingerprint=fp
    )


class TestSemanticsPreserved:
    def test_matches_bare_engine_on_clean_stream(
        self, paper_posts, paper_graph, paper_thresholds
    ):
        bare = UniBin(paper_thresholds, paper_graph)
        expected = [p for p in paper_posts if bare.offer(p)]
        pipeline = ResilientIngest(UniBin(paper_thresholds, paper_graph))
        assert pipeline.diversify(paper_posts) == expected

    def test_skew_absorption_matches_bare_engine(
        self, paper_posts, paper_graph, paper_thresholds
    ):
        bare = UniBin(paper_thresholds, paper_graph)
        expected = [p for p in paper_posts if bare.offer(p)]
        disordered = [paper_posts[i] for i in (1, 0, 3, 2, 4)]
        pipeline = ResilientIngest(
            UniBin(paper_thresholds, paper_graph),
            max_skew=5.0,
            late_policy="raise",
        )
        assert pipeline.diversify(disordered) == expected


class TestQuarantineRouting:
    def test_nan_timestamp_quarantined(self, paper_graph, paper_thresholds):
        pipeline = ResilientIngest(UniBin(paper_thresholds, paper_graph))
        (event,) = pipeline.ingest(_post(1, math.nan))
        assert event.status == "quarantined"
        assert pipeline.quarantine.by_reason == {"non_finite_timestamp": 1}

    def test_negative_timestamp_policy_toggle(self, paper_graph, paper_thresholds):
        strict = ResilientIngest(UniBin(paper_thresholds, paper_graph))
        (event,) = strict.ingest(_post(1, -3.0))
        assert event.status == "quarantined"

        lenient = ResilientIngest(
            UniBin(paper_thresholds, paper_graph),
            require_nonnegative_time=False,
        )
        (event,) = lenient.ingest(_post(1, -3.0))
        assert event.admitted
        assert lenient.quarantine.total == 0

    def test_known_authors_screen_before_engine(
        self, paper_graph, paper_thresholds
    ):
        pipeline = ResilientIngest(
            NeighborBin(paper_thresholds, paper_graph),
            known_authors=set(paper_graph.nodes),
        )
        (event,) = pipeline.ingest(_post(1, 0.0, author=999))
        assert event.status == "quarantined"
        assert pipeline.quarantine.by_reason == {"unknown_author": 1}
        # The engine never saw it; its counters stay clean.
        assert pipeline.engine.stats.posts_processed == 0

    def test_engine_raised_unknown_author_quarantined(
        self, paper_graph, paper_thresholds
    ):
        """Without a known_authors screen, NeighborBin raises on the
        unknown author — the pipeline converts that into quarantine and
        keeps going."""
        pipeline = ResilientIngest(NeighborBin(paper_thresholds, paper_graph))
        events = pipeline.ingest(_post(1, 0.0, author=999))
        assert [e.status for e in events] == ["quarantined"]
        follow_up = pipeline.ingest(_post(2, 1.0, author=1))
        assert [e.status for e in follow_up] == ["admitted"]

    def test_shared_sink_accumulates(self, paper_graph, paper_thresholds):
        sink = Quarantine()
        pipeline = ResilientIngest(
            UniBin(paper_thresholds, paper_graph), quarantine=sink
        )
        pipeline.ingest(_post(1, math.inf))
        pipeline.ingest(_post(2, -1.0))
        assert sink.snapshot() == {
            "quarantined": 2,
            "by_reason": {"non_finite_timestamp": 1, "negative_timestamp": 1},
        }


class TestEvents:
    def test_late_drop_emits_event(self, paper_graph, paper_thresholds):
        pipeline = ResilientIngest(
            UniBin(paper_thresholds, paper_graph), max_skew=1.0, late_policy="drop"
        )
        pipeline.ingest(_post(1, 5.0))
        pipeline.ingest(_post(2, 10.0))  # releases t=5, floor=5
        events = pipeline.ingest(_post(3, 2.0))
        assert [e.status for e in events] == ["late_dropped"]

    def test_buffered_post_produces_no_event_until_released(
        self, paper_graph, paper_thresholds
    ):
        pipeline = ResilientIngest(
            UniBin(paper_thresholds, paper_graph), max_skew=100.0
        )
        assert pipeline.ingest(_post(1, 5.0)) == []
        flushed = pipeline.flush()
        assert [e.status for e in flushed] == ["admitted"]

    def test_counters_structure(self, paper_posts, paper_graph, paper_thresholds):
        pipeline = ResilientIngest(UniBin(paper_thresholds, paper_graph))
        pipeline.diversify(paper_posts)
        counters = pipeline.counters()
        assert counters["reorder"]["received"] == len(paper_posts)
        assert counters["quarantine"]["quarantined"] == 0
        assert counters["engine"]["posts_processed"] == len(paper_posts)


class TestMultiUser:
    def test_receiver_sets_as_verdicts(
        self, paper_posts, paper_graph, paper_thresholds
    ):
        from repro.multiuser import SubscriptionTable

        subscriptions = SubscriptionTable({100: [1, 2, 3, 4], 200: [1]})
        engine = make_multiuser(
            "m_unibin", paper_thresholds, paper_graph, subscriptions
        )
        pipeline = ResilientIngest(engine)
        assert pipeline.is_multiuser
        events = []
        for post in paper_posts:
            events.extend(pipeline.ingest(post))
        events.extend(pipeline.flush())
        assert events[0].verdict == frozenset({100, 200})
        # A post delivered to nobody is a rejection, not an admission.
        assert events[2].status == "rejected"
        assert events[2].verdict == frozenset()


class TestPipelineCheckpoint:
    def test_mid_buffer_round_trip(self, dataset, tmp_path):
        """Checkpoint while the reorder buffer still holds posts; the
        restored pipeline finishes the stream to the identical admitted
        sequence."""
        import json

        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        posts = dataset.posts[:200]
        half = len(posts) // 2

        baseline = ResilientIngest(
            UniBin(thresholds, graph), max_skew=120.0, late_policy="raise"
        )
        expected = [p.post_id for p in baseline.diversify(posts)]

        first = ResilientIngest(
            UniBin(thresholds, graph), max_skew=120.0, late_policy="raise"
        )
        admitted = []
        for post in posts[:half]:
            admitted += [e.post.post_id for e in first.ingest(post) if e.admitted]
        assert len(first.reorder) > 0  # the interesting case: posts in flight

        snapshot = json.loads(json.dumps(first.checkpoint(), sort_keys=True))
        resumed = ResilientIngest.restore(snapshot, graph=graph)
        assert len(resumed.reorder) == len(first.reorder)

        for post in posts[half:]:
            admitted += [e.post.post_id for e in resumed.ingest(post) if e.admitted]
        admitted += [e.post.post_id for e in resumed.flush() if e.admitted]
        assert admitted == expected

    def test_wrong_kind_rejected(self, paper_graph, paper_thresholds):
        from repro.resilience import snapshot_engine

        engine_snapshot = snapshot_engine(UniBin(paper_thresholds, paper_graph))
        with pytest.raises(CheckpointError, match="pipeline"):
            ResilientIngest.restore(engine_snapshot, graph=paper_graph)


class TestIngestJsonl:
    def test_end_to_end(self, paper_posts, paper_graph, paper_thresholds, tmp_path):
        import json

        from repro.io import post_to_dict

        path = tmp_path / "posts.jsonl"
        lines = [json.dumps(post_to_dict(p), sort_keys=True) for p in paper_posts]
        lines.insert(2, "%% torn %%")
        path.write_text("\n".join(lines) + "\n")

        pipeline = ResilientIngest(UniBin(paper_thresholds, paper_graph))
        events = ingest_jsonl(pipeline, path, on_error="quarantine")
        assert [e.status for e in events] == [
            "admitted",
            "admitted",
            "rejected",
            "admitted",
            "rejected",
        ]
        assert pipeline.quarantine.by_reason == {"invalid_json": 1}
        assert pipeline.quarantine.records[0].line_number == 3
