"""Tests for repro.resilience.reorder — the watermark reorder buffer."""

import pytest

from repro.core import Post
from repro.errors import ConfigurationError, StreamOrderError
from repro.resilience import ArrivalShuffler, ReorderBuffer


def _post(post_id: int, timestamp: float) -> Post:
    return Post(post_id=post_id, author=1, text="t", timestamp=timestamp, fingerprint=0)


def _drain(buffer: ReorderBuffer, posts) -> list[Post]:
    released = []
    for post in posts:
        released.extend(buffer.offer(post))
    released.extend(buffer.flush())
    return released


class TestInOrder:
    def test_zero_skew_is_immediate_passthrough(self):
        buffer = ReorderBuffer(max_skew=0.0)
        for i in range(5):
            assert [p.post_id for p in buffer.offer(_post(i, float(i)))] == [i]
        assert len(buffer) == 0
        assert buffer.counters.reordered == 0

    def test_ordered_stream_unchanged_with_skew(self):
        buffer = ReorderBuffer(max_skew=10.0)
        posts = [_post(i, float(i)) for i in range(20)]
        released = _drain(buffer, posts)
        assert released == posts
        assert buffer.counters.late_dropped == 0

    def test_equal_timestamps_keep_arrival_order(self):
        buffer = ReorderBuffer(max_skew=5.0)
        posts = [_post(i, 3.0) for i in range(6)]
        assert [p.post_id for p in _drain(buffer, posts)] == [0, 1, 2, 3, 4, 5]


class TestReordering:
    def test_releases_in_timestamp_order(self):
        buffer = ReorderBuffer(max_skew=2.0)
        arrival = [0.0, 2.0, 1.0, 3.0, 5.0, 4.0]
        released = _drain(buffer, [_post(i, t) for i, t in enumerate(arrival)])
        assert [p.timestamp for p in released] == sorted(arrival)
        assert buffer.counters.reordered == 2
        assert buffer.counters.received == buffer.counters.released == 6

    def test_shuffled_stream_recovered_exactly(self):
        clean = [_post(i, float(i)) for i in range(200)]
        shuffler = ArrivalShuffler(seed=7, max_displacement=10.0)
        buffer = ReorderBuffer(max_skew=10.0)
        released = _drain(buffer, shuffler.apply(clean))
        assert released == clean
        assert buffer.counters.late_dropped == 0
        assert buffer.counters.late_clamped == 0

    def test_watermark_tracks_max_seen(self):
        buffer = ReorderBuffer(max_skew=3.0)
        buffer.offer(_post(1, 10.0))
        assert buffer.watermark == pytest.approx(7.0)
        buffer.offer(_post(2, 20.0))
        assert buffer.watermark == pytest.approx(17.0)


class TestLatePolicies:
    def _late_setup(self, policy: str) -> ReorderBuffer:
        buffer = ReorderBuffer(max_skew=1.0, late_policy=policy)
        buffer.offer(_post(1, 5.0))
        buffer.offer(_post(2, 10.0))  # watermark 9: releases t=5, floor=5
        return buffer

    def test_drop_counts_and_discards(self):
        buffer = self._late_setup("drop")
        assert buffer.offer(_post(3, 2.0)) == []
        assert buffer.counters.late_dropped == 1

    def test_clamp_rewrites_timestamp(self):
        buffer = self._late_setup("clamp")
        released = buffer.offer(_post(3, 2.0))
        # Clamped to the release floor (t=5), which is already below the
        # watermark, so the clamped post is released immediately.
        assert [p.post_id for p in released] == [3]
        assert released[0].timestamp == pytest.approx(5.0)
        assert buffer.counters.late_clamped == 1

    def test_raise_propagates(self):
        buffer = self._late_setup("raise")
        with pytest.raises(StreamOrderError, match="release floor"):
            buffer.offer(_post(3, 2.0))

    def test_never_late_without_releases(self):
        buffer = ReorderBuffer(max_skew=1.0, late_policy="raise")
        # Nothing released yet -> nothing can be late, any order accepted.
        buffer.offer(_post(1, 5.0))
        assert len(buffer) == 1


class TestBoundedBuffer:
    def test_max_buffered_forces_release(self):
        buffer = ReorderBuffer(max_skew=1e9, max_buffered=3)
        released = []
        for i in range(6):
            released.extend(buffer.offer(_post(i, float(i))))
        assert len(buffer) == 3
        assert buffer.counters.forced_releases == 3
        assert [p.timestamp for p in released] == [0.0, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReorderBuffer(max_skew=-1.0)
        with pytest.raises(ConfigurationError):
            ReorderBuffer(late_policy="explode")
        with pytest.raises(ConfigurationError):
            ReorderBuffer(max_buffered=0)


class TestStateRoundTrip:
    def test_mid_buffer_checkpoint(self):
        buffer = ReorderBuffer(max_skew=5.0, late_policy="drop")
        posts = [_post(i, t) for i, t in enumerate([0.0, 4.0, 2.0, 9.0, 7.0])]
        released = []
        for post in posts:
            released.extend(buffer.offer(post))
        state = buffer.state_dict()

        clone = ReorderBuffer(max_skew=0.0)
        clone.load_state(state)
        assert len(clone) == len(buffer)
        assert clone.watermark == buffer.watermark
        assert clone.counters.snapshot() == buffer.counters.snapshot()
        assert clone.flush() == buffer.flush()
