"""Checkpoint/restore round-trips for every engine.

The acceptance bar: run half a stream, snapshot, push the snapshot through
actual JSON (save/load), restore into a fresh engine, feed the second half
— the retained post-id sequence and the run counters must be bit-identical
to a run that was never interrupted.
"""

import json
import math

import pytest

from repro.core import Thresholds, make_diversifier
from repro.errors import CheckpointError
from repro.multiuser import IndependentMultiUser, make_multiuser
from repro.resilience import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_engine,
    save_checkpoint,
    snapshot_engine,
)

SINGLE_ENGINES = ("unibin", "neighborbin", "cliquebin", "indexed_unibin")
MULTI_ENGINES = ("m_unibin", "m_cliquebin", "s_unibin", "s_neighborbin")


def _roundtrip(snapshot, tmp_path):
    """Force the snapshot through real JSON on disk."""
    path = tmp_path / "checkpoint.json"
    save_checkpoint(snapshot, path)
    return load_checkpoint(path)


@pytest.mark.parametrize("name", SINGLE_ENGINES)
class TestSingleEngineRoundTrip:
    def test_resume_matches_uninterrupted(self, name, dataset, tmp_path):
        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        posts = dataset.posts[:400]
        half = len(posts) // 2

        baseline = make_diversifier(name, thresholds, graph)
        expected = [p.post_id for p in posts if baseline.offer(p)]

        first = make_diversifier(name, thresholds, graph)
        admitted = [p.post_id for p in posts[:half] if first.offer(p)]
        snapshot = _roundtrip(snapshot_engine(first), tmp_path)

        resumed = restore_engine(snapshot, graph=graph)
        admitted += [p.post_id for p in posts[half:] if resumed.offer(p)]

        assert admitted == expected
        assert resumed.stats.snapshot() == baseline.stats.snapshot()
        assert resumed.last_timestamp == baseline.last_timestamp
        assert resumed.stored_copies() == baseline.stored_copies()

    def test_order_cursor_survives(self, name, dataset, tmp_path):
        """The restored engine still rejects posts older than the cursor."""
        from repro.errors import StreamOrderError

        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        engine = make_diversifier(name, thresholds, graph)
        for post in dataset.posts[:50]:
            engine.offer(post)
        resumed = restore_engine(_roundtrip(snapshot_engine(engine), tmp_path), graph=graph)
        stale = dataset.posts[0]
        with pytest.raises(StreamOrderError):
            resumed.offer(stale)


@pytest.mark.parametrize("name", MULTI_ENGINES)
class TestMultiUserRoundTrip:
    def test_resume_matches_uninterrupted(self, name, dataset, tmp_path):
        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        subscriptions = dataset.subscriptions()
        posts = dataset.posts[:200]
        half = len(posts) // 2

        baseline = make_multiuser(name, thresholds, graph, subscriptions)
        expected = [(p.post_id, baseline.offer(p)) for p in posts]

        first = make_multiuser(name, thresholds, graph, subscriptions)
        deliveries = [(p.post_id, first.offer(p)) for p in posts[:half]]
        snapshot = _roundtrip(snapshot_engine(first), tmp_path)

        resumed = restore_engine(
            snapshot, graph=graph, subscriptions=subscriptions
        )
        deliveries += [(p.post_id, resumed.offer(p)) for p in posts[half:]]

        assert deliveries == expected
        assert (
            resumed.aggregate_stats().snapshot()
            == baseline.aggregate_stats().snapshot()
        )

    def test_requires_graph_and_subscriptions(self, name, dataset, tmp_path):
        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        engine = make_multiuser(name, thresholds, graph, dataset.subscriptions())
        snapshot = _roundtrip(snapshot_engine(engine), tmp_path)
        with pytest.raises(CheckpointError, match="requires the original graph"):
            restore_engine(snapshot, graph=graph)


class TestPerUserThresholds:
    def test_overrides_survive_restore(self, dataset, tmp_path):
        thresholds = Thresholds()
        graph = dataset.graph(thresholds.lambda_a)
        subscriptions = dataset.subscriptions()
        special = sorted(subscriptions.users)[0]
        override = Thresholds(
            lambda_c=thresholds.lambda_c + 2,
            lambda_t=thresholds.lambda_t * 2,
            lambda_a=thresholds.lambda_a,
        )
        engine = IndependentMultiUser(
            "unibin",
            thresholds,
            graph,
            subscriptions,
            per_user_thresholds={special: override},
        )
        for post in dataset.posts[:100]:
            engine.offer(post)
        resumed = restore_engine(
            _roundtrip(snapshot_engine(engine), tmp_path),
            graph=graph,
            subscriptions=subscriptions,
        )
        assert resumed.instance_of(special).thresholds == override
        other = sorted(subscriptions.users)[1]
        assert resumed.instance_of(other).thresholds == thresholds


class TestFormat:
    def test_non_finite_thresholds_round_trip(self, paper_graph, tmp_path):
        """λt = ∞ (time dimension off) and the -∞ order cursor of a fresh
        engine must survive JSON."""
        engine = make_diversifier(
            "unibin", Thresholds(lambda_t=math.inf), paper_graph
        )
        snapshot = _roundtrip(snapshot_engine(engine), tmp_path)
        resumed = restore_engine(snapshot, graph=paper_graph)
        assert resumed.thresholds.lambda_t == math.inf
        assert resumed.last_timestamp == -math.inf

    def test_version_mismatch_rejected(self, paper_graph, tmp_path):
        engine = make_diversifier("unibin", Thresholds(), paper_graph)
        snapshot = snapshot_engine(engine)
        snapshot["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            restore_engine(snapshot, graph=paper_graph)

    def test_algorithm_mismatch_rejected(self, paper_graph):
        engine = make_diversifier("unibin", Thresholds(), paper_graph)
        snapshot = snapshot_engine(engine)
        snapshot["algorithm"] = "cliquebin"
        with pytest.raises(CheckpointError):
            restore_engine(snapshot, graph=paper_graph)

    def test_unknown_kind_rejected(self, paper_graph):
        engine = make_diversifier("unibin", Thresholds(), paper_graph)
        snapshot = snapshot_engine(engine)
        snapshot["kind"] = "mystery"
        with pytest.raises(CheckpointError, match="kind"):
            restore_engine(snapshot, graph=paper_graph)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_text("{torn")
        with pytest.raises(CheckpointError, match="not a valid checkpoint"):
            load_checkpoint(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_text("[1, 2]\n")
        with pytest.raises(CheckpointError, match="JSON object"):
            load_checkpoint(path)


class TestAtomicWrite:
    def test_save_leaves_no_temp_file(self, paper_graph, tmp_path):
        engine = make_diversifier("unibin", Thresholds(), paper_graph)
        path = tmp_path / "checkpoint.json"
        save_checkpoint(snapshot_engine(engine), path)
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]  # temp renamed away

    def test_overwrite_is_all_or_nothing(self, paper_graph, tmp_path):
        """A rewrite replaces the old checkpoint in one rename: at no point
        does the target hold a partially-written file, so a crash leaves
        either the old or the new complete snapshot."""
        engine = make_diversifier("unibin", Thresholds(), paper_graph)
        path = tmp_path / "checkpoint.json"
        save_checkpoint(snapshot_engine(engine), path)
        first = path.read_text()
        save_checkpoint(snapshot_engine(engine), path)
        assert load_checkpoint(path) == json.loads(first)

    def test_simulated_crash_mid_write_keeps_old_checkpoint(
        self, paper_graph, tmp_path
    ):
        """The failure the temp+rename dance exists for: a torn write to
        the temp path must never clobber the committed checkpoint."""
        engine = make_diversifier("unibin", Thresholds(), paper_graph)
        path = tmp_path / "checkpoint.json"
        save_checkpoint(snapshot_engine(engine), path)
        committed = path.read_text()
        # Crash mid-write: the temp file holds garbage and never renames.
        (tmp_path / "checkpoint.json.tmp").write_text("{torn")
        assert path.read_text() == committed
        assert load_checkpoint(path) == json.loads(committed)
