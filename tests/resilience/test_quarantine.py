"""Tests for repro.resilience.quarantine — dead-letter decoding."""

import json
import math

import pytest

from repro.core import Post
from repro.errors import ConfigurationError, DatasetError
from repro.io import read_posts_jsonl, write_posts_jsonl
from repro.resilience import (
    ERROR_POLICIES,
    Quarantine,
    check_policy,
    validate_post,
)


def _post(post_id: int, timestamp: float, *, author: int = 1) -> Post:
    return Post(
        post_id=post_id, author=author, text="t", timestamp=timestamp, fingerprint=0
    )


class TestValidatePost:
    def test_clean_post_passes(self):
        assert validate_post(_post(1, 10.0)) is None

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_timestamp(self, bad):
        reason, detail = validate_post(_post(7, bad))
        assert reason == "non_finite_timestamp"
        assert "7" in detail

    def test_negative_timestamp(self):
        reason, _ = validate_post(_post(1, -0.5))
        assert reason == "negative_timestamp"

    def test_unknown_author(self):
        reason, detail = validate_post(_post(1, 1.0, author=99), known_authors={1, 2})
        assert reason == "unknown_author"
        assert "99" in detail

    def test_known_author_passes(self):
        assert validate_post(_post(1, 1.0, author=2), known_authors={1, 2}) is None


class TestQuarantineSink:
    def test_exact_accounting(self):
        sink = Quarantine()
        sink.add(3, "invalid_json", "boom", "{oops")
        sink.add(9, "invalid_json", "boom again", "{worse")
        sink.add(12, "invalid_record", "missing fields", "{}")
        assert len(sink) == 3
        assert sink.snapshot() == {
            "quarantined": 3,
            "by_reason": {"invalid_json": 2, "invalid_record": 1},
        }
        assert [r.line_number for r in sink.records] == [3, 9, 12]

    def test_max_retained_caps_records_not_counts(self):
        sink = Quarantine(max_retained=2)
        for i in range(5):
            sink.add(i + 1, "invalid_json", "x", "{")
        assert sink.total == 5
        assert len(sink.records) == 2

    def test_skip_mode_retains_nothing(self):
        sink = Quarantine(max_retained=0)
        sink.add(1, "invalid_json", "x", "{")
        assert sink.total == 1
        assert sink.records == []

    def test_add_post_round_trips_reason(self):
        sink = Quarantine()
        record = sink.add_post(_post(5, -1.0), "negative_timestamp", "t=-1")
        assert record.line_number == 0
        payload = json.loads(record.raw)
        assert payload["post_id"] == 5

    def test_write_jsonl(self, tmp_path):
        sink = Quarantine()
        sink.add(4, "invalid_json", "boom", "%%")
        out = tmp_path / "dead_letter.jsonl"
        assert sink.write_jsonl(out) == 1
        lines = out.read_text().splitlines()
        assert json.loads(lines[0]) == {
            "line_number": 4,
            "reason": "invalid_json",
            "detail": "boom",
            "raw": "%%",
        }

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Quarantine(max_retained=-1)


class TestCheckPolicy:
    def test_all_policies_listed(self):
        assert ERROR_POLICIES == ("strict", "skip", "quarantine")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            check_policy("lenient", None)

    def test_quarantine_requires_sink(self):
        with pytest.raises(ConfigurationError, match="requires a Quarantine"):
            check_policy("quarantine", None)
        check_policy("quarantine", Quarantine())
        check_policy("skip", None)


class TestReadPostsJsonlPolicies:
    @pytest.fixture()
    def dirty_trace(self, tmp_path):
        """3 good posts, 1 malformed line (line 2), 1 missing-field record
        (line 4), 1 NaN timestamp (line 6)."""
        path = tmp_path / "posts.jsonl"
        good = [_post(i, float(i)) for i in range(3)]
        lines = [
            json.dumps(
                {
                    "post_id": p.post_id,
                    "author": p.author,
                    "text": p.text,
                    "timestamp": p.timestamp,
                    "fingerprint": p.fingerprint,
                }
            )
            for p in good
        ]
        lines.insert(1, "{not json")
        lines.insert(3, json.dumps({"post_id": 9, "author": 1, "text": "x"}))
        lines.append(
            json.dumps(
                {"post_id": 10, "author": 1, "text": "x", "timestamp": "NaN"}
            )
        )
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_strict_raises_with_line_number(self, dirty_trace):
        with pytest.raises(DatasetError, match=r":2: invalid JSON"):
            list(read_posts_jsonl(dirty_trace))

    def test_strict_names_offending_field(self, tmp_path):
        path = tmp_path / "posts.jsonl"
        path.write_text(
            json.dumps(
                {"post_id": 1, "author": 2, "text": "x", "timestamp": "soon"}
            )
            + "\n"
        )
        with pytest.raises(DatasetError, match=r":1: .*'timestamp'"):
            list(read_posts_jsonl(path))

    def test_skip_drops_and_counts(self, dirty_trace):
        sink = Quarantine(max_retained=0)
        posts = list(read_posts_jsonl(dirty_trace, on_error="skip", quarantine=sink))
        assert [p.post_id for p in posts] == [0, 1, 2]
        assert sink.snapshot() == {
            "quarantined": 3,
            "by_reason": {"invalid_json": 1, "invalid_record": 2},
        }
        assert sink.records == []

    def test_skip_without_sink_still_works(self, dirty_trace):
        posts = list(read_posts_jsonl(dirty_trace, on_error="skip"))
        assert [p.post_id for p in posts] == [0, 1, 2]

    def test_quarantine_retains_offending_lines(self, dirty_trace):
        sink = Quarantine()
        posts = list(
            read_posts_jsonl(dirty_trace, on_error="quarantine", quarantine=sink)
        )
        assert [p.post_id for p in posts] == [0, 1, 2]
        assert [r.line_number for r in sink.records] == [2, 4, 6]
        assert sink.records[0].raw == "{not json"

    def test_quarantine_policy_without_sink_rejected(self, dirty_trace):
        with pytest.raises(ConfigurationError):
            list(read_posts_jsonl(dirty_trace, on_error="quarantine"))

    def test_clean_round_trip_unaffected(self, tmp_path):
        path = tmp_path / "posts.jsonl"
        posts = [_post(i, float(i)) for i in range(5)]
        assert write_posts_jsonl(posts, path) == 5
        sink = Quarantine()
        back = list(read_posts_jsonl(path, on_error="quarantine", quarantine=sink))
        assert back == posts
        assert sink.total == 0
