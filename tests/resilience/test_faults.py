"""Seeded fault injection end-to-end: the acceptance suite.

The contracts asserted here are the PR's headline claims:

* a stream shuffled within ``max_displacement`` seconds, ingested through a
  buffer with ``max_skew >= max_displacement``, admits the *identical*
  post-id sequence as the clean ordered stream — with zero late events;
* transport damage is quarantined with counts exactly equal to the counts
  the injector reports;
* the coverage invariant holds over every non-quarantined post, faults or
  not.
"""

import json

import pytest

from repro.core import CoverageChecker, Thresholds, UniBin, make_diversifier
from repro.eval.metrics import verify_coverage
from repro.io import post_to_dict
from repro.resilience import (
    ArrivalShuffler,
    FaultSchedule,
    LineFaultInjector,
    Quarantine,
    ResilientIngest,
    ingest_jsonl,
)

SEEDS = (1, 7, 42)


@pytest.fixture()
def world(dataset):
    thresholds = Thresholds()
    graph = dataset.graph(thresholds.lambda_a)
    return thresholds, graph, dataset.posts[:300]


def _clean_admitted(thresholds, graph, posts, algorithm="unibin"):
    engine = make_diversifier(algorithm, thresholds, graph)
    return [p.post_id for p in posts if engine.offer(p)]


class TestShuffleRecovery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bounded_shuffle_recovers_exact_output(self, world, seed):
        thresholds, graph, posts = world
        expected = _clean_admitted(thresholds, graph, posts)

        shuffler = ArrivalShuffler(seed=seed, max_displacement=30.0)
        pipeline = ResilientIngest(
            UniBin(thresholds, graph), max_skew=30.0, late_policy="raise"
        )
        admitted = [p.post_id for p in pipeline.diversify(shuffler.apply(posts))]

        assert admitted == expected
        counters = pipeline.reorder.counters
        assert counters.received == counters.released == len(posts)
        assert counters.late_dropped == counters.late_clamped == 0
        # The adversary actually did something.
        assert counters.reordered > 0
        assert shuffler.counts.shuffled > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_insufficient_skew_drops_late_posts_exactly(self, world, seed):
        """With max_skew below the displacement bound, some posts arrive
        behind the release floor; under ``drop`` each one is counted and
        the survivors still form a coverage-clean stream."""
        thresholds, graph, posts = world
        shuffler = ArrivalShuffler(seed=seed, max_displacement=60.0)
        pipeline = ResilientIngest(
            UniBin(thresholds, graph), max_skew=1.0, late_policy="drop"
        )
        pipeline.diversify(shuffler.apply(posts))
        counters = pipeline.reorder.counters
        assert counters.received == len(posts)
        assert counters.released == len(posts) - counters.late_dropped
        assert counters.late_dropped > 0


class TestDuplicateFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_duplicates_never_double_the_output(self, world, seed):
        thresholds, graph, posts = world
        expected = _clean_admitted(thresholds, graph, posts)

        schedule = FaultSchedule(seed=seed, duplicate_prob=0.3)
        pipeline = ResilientIngest(UniBin(thresholds, graph))
        admitted = [p.post_id for p in pipeline.diversify(schedule.apply(posts))]

        duplicated = schedule.post_faults.counts.duplicated
        assert duplicated > 0
        assert pipeline.reorder.counters.received == len(posts) + duplicated
        assert admitted == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_composed_shuffle_and_duplicates(self, world, seed):
        thresholds, graph, posts = world
        expected = _clean_admitted(thresholds, graph, posts)
        schedule = FaultSchedule(
            seed=seed, max_displacement=20.0, duplicate_prob=0.2
        )
        pipeline = ResilientIngest(
            UniBin(thresholds, graph), max_skew=20.0, late_policy="drop"
        )
        admitted = [p.post_id for p in pipeline.diversify(schedule.apply(posts))]
        # Duplicates are coverage-pruned and the shuffle is fully absorbed:
        # identical retained ids, zero late drops.
        assert admitted == expected
        assert pipeline.reorder.counters.late_dropped == 0


class TestTransportFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_quarantined_counts_match_injected_exactly(
        self, world, seed, tmp_path
    ):
        thresholds, graph, posts = world
        clean_lines = [json.dumps(post_to_dict(p), sort_keys=True) for p in posts]
        injector = LineFaultInjector(
            seed=seed,
            malformed_prob=0.05,
            torn_prob=0.05,
            missing_field_prob=0.05,
            bad_timestamp_prob=0.05,
        )
        path = tmp_path / "damaged.jsonl"
        path.write_text("\n".join(injector.apply(clean_lines)) + "\n")
        counts = injector.counts
        injected_bad = (
            counts.malformed + counts.torn + counts.missing_field + counts.bad_timestamp
        )
        assert injected_bad > 0

        pipeline = ResilientIngest(UniBin(thresholds, graph))
        events = ingest_jsonl(pipeline, path, on_error="quarantine")

        snap = pipeline.quarantine.snapshot()
        assert snap["quarantined"] == injected_bad
        by_reason = snap["by_reason"]
        # Malformed and torn lines both fail JSON decoding; missing-field
        # and bad-timestamp records decode but fail field validation.
        assert by_reason.get("invalid_json", 0) == counts.malformed + counts.torn
        assert (
            by_reason.get("invalid_record", 0)
            == counts.missing_field + counts.bad_timestamp
        )
        # Every surviving line decoded and reached a decision.
        decided = [e for e in events if e.status in ("admitted", "rejected")]
        assert len(decided) == counts.passed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_coverage_invariant_over_survivors(self, world, seed, tmp_path):
        """The paper's guarantee must hold for every post the pipeline did
        not refuse, no matter the damage."""
        thresholds, graph, posts = world
        clean_lines = [json.dumps(post_to_dict(p), sort_keys=True) for p in posts]
        injector = LineFaultInjector(
            seed=seed, malformed_prob=0.1, bad_timestamp_prob=0.1, duplicate_prob=0.1
        )
        path = tmp_path / "damaged.jsonl"
        path.write_text("\n".join(injector.apply(clean_lines)) + "\n")

        pipeline = ResilientIngest(UniBin(thresholds, graph))
        events = ingest_jsonl(pipeline, path, on_error="quarantine")

        survivors = [e.post for e in events if e.status in ("admitted", "rejected")]
        admitted = frozenset(e.post.post_id for e in events if e.admitted)
        verify_coverage(survivors, admitted, CoverageChecker(thresholds, graph))


class TestDeterminism:
    def test_same_seed_same_faults(self, world):
        _, _, posts = world
        first = list(ArrivalShuffler(seed=5, max_displacement=10.0).apply(posts))
        second = list(ArrivalShuffler(seed=5, max_displacement=10.0).apply(posts))
        assert first == second

    def test_different_seed_different_order(self, world):
        _, _, posts = world
        first = list(ArrivalShuffler(seed=5, max_displacement=10.0).apply(posts))
        second = list(ArrivalShuffler(seed=6, max_displacement=10.0).apply(posts))
        assert first != second

    def test_shuffler_respects_displacement_bound(self, world):
        _, _, posts = world
        shuffled = list(
            ArrivalShuffler(seed=11, max_displacement=25.0).apply(posts)
        )
        assert sorted(shuffled, key=lambda p: p.timestamp) == posts
        max_seen = float("-inf")
        for post in shuffled:
            # No post is emitted after another more than 25 s ahead of it.
            assert max_seen - post.timestamp <= 25.0
            max_seen = max(max_seen, post.timestamp)
