"""Tests for repro.resilience.overload + the shedding replay in the service."""

import pytest

from repro.core import Thresholds, UniBin
from repro.errors import ConfigurationError
from repro.resilience import LatencySpikes, OverloadController
from repro.service import DiversificationService, SheddingReport


class TestHysteresis:
    def test_starts_not_shedding(self):
        controller = OverloadController(max_delay=1.0)
        assert not controller.should_shed(0.0)
        assert not controller.shedding

    def test_sheds_above_max_delay_only(self):
        controller = OverloadController(max_delay=1.0, resume_delay=0.4)
        assert not controller.should_shed(1.0)  # at the budget: still fine
        assert controller.should_shed(1.01)
        assert controller.counters.episodes == 1

    def test_keeps_shedding_until_resume_threshold(self):
        controller = OverloadController(max_delay=1.0, resume_delay=0.4)
        controller.should_shed(2.0)
        # Backlog between resume and max: hysteresis holds the shed state.
        assert controller.should_shed(0.7)
        assert controller.should_shed(0.41)
        # At/below resume: recover.
        assert not controller.should_shed(0.4)
        assert not controller.shedding

    def test_episodes_count_distinct_entries(self):
        controller = OverloadController(max_delay=1.0, resume_delay=0.4)
        for backlog in (2.0, 2.0, 0.1, 3.0, 0.1, 1.5):
            controller.should_shed(backlog)
        assert controller.counters.episodes == 3

    def test_default_resume_is_half_max(self):
        controller = OverloadController(max_delay=2.0)
        assert controller.resume_delay == pytest.approx(1.0)

    def test_policy_routes_counters(self):
        dropper = OverloadController(max_delay=1.0, policy="drop")
        passer = OverloadController(max_delay=1.0, policy="passthrough")
        dropper.record_shed()
        passer.record_shed()
        assert dropper.counters.shed_dropped == 1
        assert dropper.counters.shed_passthrough == 0
        assert passer.counters.shed_passthrough == 1
        assert dropper.counters.shed_total == passer.counters.shed_total == 1

    def test_snapshot_keys(self):
        controller = OverloadController(max_delay=1.0)
        controller.should_shed(5.0)
        controller.record_shed()
        snap = controller.snapshot()
        assert snap["shedding"] is True
        assert snap["shed_total"] == 1
        assert snap["policy"] == "drop"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OverloadController(max_delay=0.0)
        with pytest.raises(ConfigurationError):
            OverloadController(max_delay=1.0, resume_delay=1.0)
        with pytest.raises(ConfigurationError):
            OverloadController(max_delay=1.0, resume_delay=-0.1)
        with pytest.raises(ConfigurationError):
            OverloadController(max_delay=1.0, policy="panic")


class TestSheddingReplay:
    def _slow_service(self, dataset, *, policy: str) -> DiversificationService:
        """An engine with ~2 ms injected on every offer, so an extreme
        speedup (arrivals compressed to nothing) overloads it immediately."""
        thresholds = Thresholds()
        engine = UniBin(thresholds, dataset.graph(thresholds.lambda_a))
        slow = LatencySpikes(engine, seed=1, spike_prob=1.0, spike_seconds=0.002)
        controller = OverloadController(
            max_delay=0.01, resume_delay=0.005, policy=policy
        )
        return DiversificationService(slow, overload=controller)

    def test_overload_sheds_with_exact_accounting(self, dataset):
        service = self._slow_service(dataset, policy="drop")
        posts = dataset.posts[:120]
        (report,) = service.replay(posts, speedups=(1e9,))
        assert isinstance(report, SheddingReport)
        assert report.posts == 120
        # Conservation: every post is either processed or shed, exactly.
        assert report.processed + report.shed_total == report.posts
        assert report.shed_dropped > 0
        assert report.shed_passthrough == 0
        assert report.shed_episodes >= 1
        assert report.shed_fraction == pytest.approx(
            report.shed_total / report.posts
        )
        # The budget was honoured: processing stopped once delay passed it,
        # so the backlog cannot accumulate beyond budget + one service time.
        assert report.final_backlog_delay < 1.0

    def test_passthrough_policy_counts_separately(self, dataset):
        service = self._slow_service(dataset, policy="passthrough")
        (report,) = service.replay(dataset.posts[:120], speedups=(1e9,))
        assert report.shed_passthrough > 0
        assert report.shed_dropped == 0

    def test_underloaded_replay_sheds_nothing(self, dataset):
        thresholds = Thresholds()
        engine = UniBin(thresholds, dataset.graph(thresholds.lambda_a))
        controller = OverloadController(max_delay=5.0)
        service = DiversificationService(engine, overload=controller)
        # Real-time replay: microsecond decisions vs multi-second gaps.
        (report,) = service.replay(dataset.posts[:120], speedups=(1.0,))
        assert report.shed_total == 0
        assert report.processed == report.posts == 120
        assert report.shed_episodes == 0

    def test_multiple_speedups_rejected_with_controller(self, dataset):
        service = self._slow_service(dataset, policy="drop")
        with pytest.raises(ConfigurationError, match="exactly one speedup"):
            service.replay(dataset.posts[:10], speedups=(1.0, 2.0))

    def test_as_row_is_flat(self, dataset):
        service = self._slow_service(dataset, policy="drop")
        (report,) = service.replay(dataset.posts[:60], speedups=(1e9,))
        row = report.as_row()
        assert row["speedup"] == 1e9
        assert row["shed_dropped"] == report.shed_dropped
        assert row["processed"] == report.processed
        assert all(isinstance(v, (int, float)) for v in row.values())


class TestLatencySpikes:
    def test_delegates_decisions(self, paper_posts, paper_graph, paper_thresholds):
        plain = UniBin(paper_thresholds, paper_graph)
        spiky = LatencySpikes(
            UniBin(paper_thresholds, paper_graph),
            seed=3,
            spike_prob=1.0,
            spike_seconds=0.0001,
        )
        assert [spiky.offer(p) for p in paper_posts] == [
            plain.offer(p) for p in paper_posts
        ]
        assert spiky.spikes_injected == len(paper_posts)
        # Stats flow through to the wrapped engine untouched.
        assert spiky.stats.posts_processed == plain.stats.posts_processed
