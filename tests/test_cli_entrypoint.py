"""The module entry point (``python -m repro``) in a real subprocess."""

import subprocess
import sys


class TestModuleEntryPoint:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_list(self):
        result = self.run_cli("list")
        assert result.returncode == 0
        assert "figure11" in result.stdout

    def test_static_table(self):
        result = self.run_cli("table4")
        assert result.returncode == 0
        assert "Twitter" in result.stdout

    def test_unknown_exits_nonzero(self):
        result = self.run_cli("figure99")
        assert result.returncode == 2
        assert "unknown experiment" in result.stderr

    def test_console_script_help(self):
        result = self.run_cli("--help")
        # argparse prints help and exits 0 when no experiment id is given
        # with --help.
        assert result.returncode == 0
        assert "Reproduce experiments" in result.stdout
