"""Property tests for the interchange formats (repro.io)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Post
from repro.io import post_from_dict, post_to_dict, read_posts_jsonl, write_posts_jsonl

# Arbitrary unicode except control characters pytest's JSONL lines dislike.
texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=120
)
post_records = st.builds(
    Post,
    post_id=st.integers(min_value=0, max_value=2**40),
    author=st.integers(min_value=0, max_value=2**32),
    text=texts,
    timestamp=st.floats(
        min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
    fingerprint=st.integers(min_value=0, max_value=2**64 - 1),
)


@given(post_records)
def test_dict_round_trip_exact(post):
    assert post_from_dict(post_to_dict(post)) == post


@settings(max_examples=25, deadline=None)
@given(st.lists(post_records, max_size=20))
def test_jsonl_round_trip_exact(tmp_path_factory_posts):
    # hypothesis can't use pytest fixtures directly; use an in-module tmp dir.
    import tempfile
    from pathlib import Path

    posts = tmp_path_factory_posts
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "posts.jsonl"
        write_posts_jsonl(posts, path)
        assert list(read_posts_jsonl(path)) == posts


@given(texts)
def test_text_fidelity_through_jsonl(text):
    """Arbitrary unicode content survives the trace format byte-exactly."""
    import tempfile
    from pathlib import Path

    post = Post(post_id=1, author=2, text=text, timestamp=0.0, fingerprint=7)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "one.jsonl"
        write_posts_jsonl([post], path)
        (loaded,) = list(read_posts_jsonl(path))
    assert loaded.text == text
