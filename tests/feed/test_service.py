"""FeedService: the write path's fanout, backpressure and accounting."""

from __future__ import annotations

import pytest

from repro.core import Thresholds, make_diversifier
from repro.errors import ConfigurationError, FeedOverloadError
from repro.feed import FeedService, MailboxConfig
from repro.multiuser import make_multiuser
from repro.obs import Registry, snapshot
from repro.resilience import GovernorConfig, MemoryGovernor, OverloadController
from repro.service import DiversificationService

from .conftest import THRESHOLDS, make_posts


def make_feed(service, **kwargs) -> FeedService:
    return FeedService(service, mailboxes=MailboxConfig(**kwargs))


class TestConstruction:
    def test_rejects_single_user_engines(self, graph):
        single = DiversificationService(
            make_diversifier("unibin", THRESHOLDS, graph)
        )
        with pytest.raises(ConfigurationError, match="multi-user"):
            FeedService(single)

    def test_users_default_to_the_subscription_table(self, service, subscriptions):
        feed = make_feed(service)
        assert feed.store.users == frozenset(subscriptions.users)


class TestWritePath:
    def test_ingest_fans_out_to_the_engine_receiver_set(self, service, posts):
        feed = make_feed(service)
        delivered: dict[int, list[int]] = {}
        for post in posts:
            for user in feed.ingest(post):
                delivered.setdefault(user, []).append(post.post_id)
        assert delivered  # the world actually routes posts
        for user, post_ids in delivered.items():
            assert [e.post_id for e in reversed(feed.store.read_all(user))] == post_ids

    def test_replay_summary_balances(self, service, posts):
        feed = make_feed(service)
        summary = feed.replay(posts)
        assert summary["accepted"] == len(posts)
        assert summary["shed"] == 0
        assert summary["deliveries"] == feed.store.deliveries > 0
        assert feed.posts_received == feed.posts_processed + feed.posts_shed

    def test_expiry_cadence_follows_stream_time(self, graph, subscriptions, posts):
        engine = make_multiuser("s_unibin", THRESHOLDS, graph, subscriptions)
        feed = FeedService(
            DiversificationService(engine),
            mailboxes=MailboxConfig(window=30.0),
            expire_every=16,
        )
        feed.replay(posts)
        assert feed.store.evicted_expired > 0
        newest = max(p.timestamp for p in posts)
        # Expiry lags by at most one cadence (16 posts, each advancing
        # stream time < 2s), never serves the deep past: everything left
        # is within window + one cadence of slack.
        slack = 30.0 + 16 * 2.0
        for box in feed.store._boxes.values():
            for entry in box.entries:
                assert entry.timestamp >= newest - slack


class TestBackpressure:
    def make_overloaded(self, graph, subscriptions):
        controller = OverloadController(max_delay=0.05)
        engine = make_multiuser("s_unibin", THRESHOLDS, graph, subscriptions)
        service = DiversificationService(engine, overload=controller)
        return make_feed(service), controller

    def test_forced_shedding_raises_with_retry_after(self, graph, subscriptions, posts):
        feed, controller = self.make_overloaded(graph, subscriptions)
        controller.set_memory_pressure(True)
        with pytest.raises(FeedOverloadError) as excinfo:
            feed.ingest(posts[0])
        assert excinfo.value.retry_after > 0
        assert feed.posts_shed == 1

    def test_accounting_stays_exactly_balanced_under_shedding(
        self, graph, subscriptions, posts
    ):
        feed, controller = self.make_overloaded(graph, subscriptions)
        accepted = 0
        for i, post in enumerate(posts):
            if i == 20:
                controller.set_memory_pressure(True)
            if i == 60:
                controller.set_memory_pressure(False)
            try:
                feed.ingest(post)
                accepted += 1
            except FeedOverloadError:
                pass
        assert feed.posts_shed == 40
        assert feed.posts_processed == accepted == len(posts) - 40
        assert feed.posts_received == feed.posts_processed + feed.posts_shed
        assert controller.counters.processed == feed.posts_processed
        assert controller.counters.shed_dropped == feed.posts_shed

    def test_shed_posts_never_reach_mailboxes(self, graph, subscriptions, posts):
        feed, controller = self.make_overloaded(graph, subscriptions)
        controller.set_memory_pressure(True)
        for post in posts[:10]:
            with pytest.raises(FeedOverloadError):
                feed.ingest(post)
        assert feed.store.deliveries == 0
        assert feed.store.total_entries == 0


class TestGovernorIntegration:
    def test_mailbox_bytes_join_the_governed_budget(self, graph, subscriptions, posts):
        engine = make_multiuser("s_unibin", THRESHOLDS, graph, subscriptions)
        governor = MemoryGovernor(
            engine, GovernorConfig(budget_bytes=50_000_000, check_every=16)
        )
        service = DiversificationService(engine, governor=governor)
        feed = make_feed(service)
        feed.bind_metrics()
        feed.replay(posts)
        governor.observe(16)  # force a tick so last_usage is current
        usage = governor.last_usage
        assert usage.get("mailbox", 0) == feed.store.approx_bytes() > 0


class TestMetrics:
    def test_feed_families_are_scrapable_and_exact(self, service, posts):
        service.bind_metrics(Registry())
        feed = make_feed(service)
        feed.replay(posts)
        user = sorted(feed.store.users)[0]
        page = feed.read(user, None, 5)
        feed.record_impressions(user, [e.seq for e in page.entries])
        feed.read(user, None, 5)
        snap = {m["name"]: m for m in snapshot(service.registry)["metrics"]}
        series = {
            name: {
                tuple(sorted(s["labels"].items())): s.get("value", s.get("count"))
                for s in snap[name]["samples"]
            }
            for name in snap
            if name.startswith("repro_feed")
        }
        assert series["repro_feed_posts_total"][(("status", "accepted"),)] == len(posts)
        assert series["repro_feed_posts_total"][(("status", "shed"),)] == 0
        assert series["repro_feed_deliveries_total"][()] == feed.store.deliveries
        assert series["repro_feed_reads_total"][()] == 2
        assert series["repro_feed_entries_filtered_total"][()] == feed.entries_filtered > 0
        assert series["repro_feed_mailbox_bytes"][()] == feed.store.approx_bytes()
