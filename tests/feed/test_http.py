"""FeedServer over real HTTP: routing edge cases, pagination exactness,
backpressure semantics and health degradation."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.feed import FeedService, MailboxConfig
from repro.io import post_to_dict
from repro.multiuser import make_multiuser
from repro.resilience import OverloadController
from repro.service import DiversificationService

from .conftest import THRESHOLDS


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.load(response)


def post_json(url: str, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


def http_error(fn) -> urllib.error.HTTPError:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fn()
    return excinfo.value


@pytest.fixture()
def feed(graph, subscriptions):
    controller = OverloadController(max_delay=10.0)
    engine = make_multiuser("s_unibin", THRESHOLDS, graph, subscriptions)
    service = DiversificationService(engine, overload=controller)
    feed = FeedService(service, mailboxes=MailboxConfig(capacity=512))
    feed.controller = controller
    return feed


@pytest.fixture()
def server(feed):
    with feed.serve() as server:
        yield server


class TestRoutingEdgeCases:
    def test_unknown_route_is_404(self, server):
        assert http_error(lambda: get_json(server.url + "/nope")).code == 404

    def test_wrong_method_is_404(self, server):
        # GET on a POST-only route falls off the route table.
        assert http_error(lambda: get_json(server.url + "/posts")).code == 404

    def test_missing_user_param_is_400(self, server):
        error = http_error(lambda: get_json(server.url + "/feed"))
        assert error.code == 400
        assert "user" in json.load(error)["error"]

    def test_malformed_query_params_are_400(self, server):
        for query in ("user=abc", "user=100&cursor=x", "user=100&limit=0",
                      "user=100&limit=9999", "user=100&cursor=0"):
            error = http_error(lambda q=query: get_json(f"{server.url}/feed?{q}"))
            assert error.code == 400, query

    def test_unknown_user_is_404(self, server):
        assert http_error(lambda: get_json(server.url + "/feed?user=777")).code == 404

    def test_malformed_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/posts", data=b"{not json", method="POST"
        )
        error = http_error(lambda: urllib.request.urlopen(request, timeout=10))
        assert error.code == 400
        assert "JSON" in json.load(error)["error"]

    def test_incomplete_post_record_is_400(self, server):
        error = http_error(
            lambda: post_json(server.url + "/posts", {"author": 1})
        )
        assert error.code == 400

    def test_malformed_impressions_are_400(self, server):
        for payload in ([1, 2], {"user": 100}, {"user": "x", "seqs": [1]},
                        {"user": 100, "seqs": "nope"}):
            error = http_error(
                lambda p=payload: post_json(server.url + "/impressions", p)
            )
            assert error.code == 400, payload


class TestEndToEnd:
    def test_pagination_union_equals_receiver_sets(self, feed, server, posts):
        summary = post_json(server.url + "/posts", [post_to_dict(p) for p in posts])
        assert summary["accepted"] == len(posts)
        # Reference receiver sets from the service's own fanout counters.
        for user in sorted(feed.store.users):
            expected = [e.post_id for e in feed.store.read_all(user)]
            collected: list[int] = []
            cursor = None
            while True:
                query = f"user={user}&limit=7"
                if cursor is not None:
                    query += f"&cursor={cursor}"
                page = get_json(f"{server.url}/feed?{query}")
                collected.extend(e["post_id"] for e in page["entries"])
                if page["next_cursor"] is None:
                    break
                cursor = page["next_cursor"]
            assert collected == expected

    def test_single_post_reports_exact_receivers(self, feed, server, posts):
        record = post_json(server.url + "/posts", post_to_dict(posts[0]))
        assert record["accepted"] == 1
        expected = sorted(
            user for user in feed.store.users if feed.store.depth_of(user)
        )
        assert record["receivers"] == expected

    def test_impressions_suppress_reserving(self, feed, server, posts):
        post_json(server.url + "/posts", [post_to_dict(p) for p in posts])
        user = next(u for u in sorted(feed.store.users) if feed.store.depth_of(u) > 3)
        first = get_json(f"{server.url}/feed?user={user}&limit=3")
        seqs = [e["seq"] for e in first["entries"]]
        marked = post_json(
            server.url + "/impressions", {"user": user, "seqs": seqs}
        )
        assert marked["recorded"] == len(seqs)
        refresh = get_json(f"{server.url}/feed?user={user}&limit=3")
        assert not set(seqs) & {e["seq"] for e in refresh["entries"]}
        assert refresh["filtered"] >= len(seqs)

    def test_cursors_stay_stable_under_concurrent_ingestion(
        self, feed, server, posts
    ):
        head, tail = posts[:80], posts[80:]
        post_json(server.url + "/posts", [post_to_dict(p) for p in head])
        user = max(feed.store.users, key=feed.store.depth_of)
        first = get_json(f"{server.url}/feed?user={user}&limit=2")
        before = [e["post_id"] for e in first["entries"]]
        # New posts land between two pages of the same read.
        post_json(server.url + "/posts", [post_to_dict(p) for p in tail])
        rest: list[int] = []
        cursor = first["next_cursor"]
        while cursor is not None:
            page = get_json(f"{server.url}/feed?user={user}&cursor={cursor}&limit=5")
            rest.extend(e["post_id"] for e in page["entries"])
            cursor = page["next_cursor"]
        # The paginated union is exactly the head-stream deliveries: no
        # duplicates, no holes, nothing from the concurrent tail.
        head_ids = {p.post_id for p in head}
        assert set(before + rest) <= head_ids
        assert sorted(before + rest, reverse=True) == before + rest

    def test_concurrent_readers_see_consistent_pages(self, feed, server, posts):
        post_json(server.url + "/posts", [post_to_dict(p) for p in posts])
        users = [u for u in sorted(feed.store.users) if feed.store.depth_of(u)]
        failures: list[str] = []

        def read_loop(user: int) -> None:
            try:
                expected = [e.post_id for e in feed.store.read_all(user)]
                for _ in range(5):
                    collected, cursor = [], None
                    while True:
                        query = f"user={user}&limit=3" + (
                            f"&cursor={cursor}" if cursor is not None else ""
                        )
                        page = get_json(f"{server.url}/feed?{query}")
                        collected.extend(e["post_id"] for e in page["entries"])
                        if page["next_cursor"] is None:
                            break
                        cursor = page["next_cursor"]
                    if collected != expected:
                        failures.append(f"user {user}: {collected} != {expected}")
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(f"user {user}: {exc!r}")

        threads = [threading.Thread(target=read_loop, args=(u,)) for u in users]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert failures == []

    def test_stats_route_balances(self, feed, server, posts):
        post_json(server.url + "/posts", [post_to_dict(p) for p in posts])
        stats = get_json(server.url + "/feed/stats")
        assert stats["posts"]["received"] == (
            stats["posts"]["processed"] + stats["posts"]["shed"]
        )
        assert stats["deliveries"] == feed.store.deliveries

    def test_metrics_and_feed_share_the_port(self, server, posts):
        post_json(server.url + "/posts", post_to_dict(posts[0]))
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as response:
            text = response.read().decode()
        assert 'repro_feed_posts_total{status="accepted"} 1' in text


class TestBackpressure:
    def test_shed_ingestion_is_429_with_retry_after(self, feed, server, posts):
        feed.controller.set_memory_pressure(True)
        error = http_error(
            lambda: post_json(server.url + "/posts", post_to_dict(posts[0]))
        )
        assert error.code == 429
        assert float(error.headers["Retry-After"]) > 0
        assert "shedding" in json.load(error)["error"]
        # Exactly balanced: the shed request is accounted, nothing leaked.
        stats = get_json(server.url + "/feed/stats")
        assert stats["posts"] == {
            "received": 1,
            "processed": 0,
            "shed": 1,
            "deduped": 0,
        }

    def test_healthz_degrades_while_shedding(self, feed, server, posts):
        assert get_json(server.url + "/healthz.json")["status"] == "ok"
        feed.controller.set_memory_pressure(True)
        http_error(lambda: post_json(server.url + "/posts", post_to_dict(posts[0])))
        with urllib.request.urlopen(server.url + "/healthz", timeout=10) as response:
            body = response.read().decode()
        assert body.startswith("degraded:")
        assert "shedding arrivals" in body
        report = get_json(server.url + "/healthz.json")
        assert report["status"] == "degraded"
        assert report["shedding"]["memory_pressure"] is True

    def test_bulk_replay_counts_sheds_instead_of_erroring(
        self, feed, server, posts
    ):
        feed.controller.set_memory_pressure(True)
        summary = post_json(
            server.url + "/posts", [post_to_dict(p) for p in posts[:10]]
        )
        assert summary == {"accepted": 0, "shed": 10, "deliveries": 0}
