"""Fixtures for the feed suite: the shared multi-component world plus
engine/service factories every test builds on."""

from __future__ import annotations

import pytest

from repro.authors import AuthorGraph
from repro.core import Thresholds
from repro.multiuser import SubscriptionTable, make_multiuser
from repro.service import DiversificationService

from ..support import AUTHORS, EDGES, SUBSCRIPTIONS_SPEC, make_posts

__all__ = ["AUTHORS", "EDGES", "SUBSCRIPTIONS_SPEC", "make_posts"]

THRESHOLDS = Thresholds(lambda_c=8, lambda_t=60.0, lambda_a=0.5)


@pytest.fixture(scope="session")
def graph() -> AuthorGraph:
    return AuthorGraph(nodes=AUTHORS, edges=EDGES)


@pytest.fixture(scope="session")
def subscriptions() -> SubscriptionTable:
    return SubscriptionTable(SUBSCRIPTIONS_SPEC)


@pytest.fixture(scope="session")
def posts():
    return make_posts(120)


@pytest.fixture()
def service(graph, subscriptions) -> DiversificationService:
    engine = make_multiuser("s_unibin", THRESHOLDS, graph, subscriptions)
    return DiversificationService(engine)
