"""Reads around recovery: cursor stability across restart, stale-flagged
degraded serving while the WAL replays, seeded Retry-After jitter, and
per-request deadlines on the HTTP front end."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.errors import FeedOverloadError
from repro.feed import DurabilityConfig, FeedService, MailboxConfig
from repro.feed.durable import DurableFeedLog
from repro.multiuser import make_multiuser
from repro.resilience import OverloadController
from repro.service import DiversificationService

from .conftest import THRESHOLDS, make_posts

USER = 100


def build_feed(graph, subscriptions, wal_dir=None, **kwargs):
    engine = make_multiuser("s_unibin", THRESHOLDS, graph, subscriptions)
    service = DiversificationService(engine, overload=kwargs.pop("overload", None))
    durability = (
        DurabilityConfig(wal_dir=wal_dir, fsync="never", snapshot_every=100_000)
        if wal_dir is not None
        else None
    )
    return FeedService(
        service,
        mailboxes=kwargs.pop("mailboxes", MailboxConfig(capacity=64, window=600.0)),
        expire_every=1000,
        durability=durability,
        **kwargs,
    )


class TestCursorStabilityAcrossRestart:
    def test_pagination_resumes_after_crash_without_dupes_or_gaps(
        self, graph, subscriptions, tmp_path
    ):
        live = build_feed(graph, subscriptions, tmp_path)
        for post in make_posts(60):
            live.ingest(post)
        full = [entry.seq for entry in live.store.read_all(USER)]
        assert full

        # Page 1 before the crash; the client holds the cursor.
        first = live.read(USER, cursor=None, limit=3)
        seen_before = [entry.seq for entry in first.entries]
        cursor = first.next_cursor

        # Crash (no close), recover into a fresh process image.
        recovered = build_feed(graph, subscriptions, tmp_path)
        recovered.recover(snapshot_after=False)

        collected = list(seen_before)
        while cursor is not None:
            page = recovered.read(USER, cursor=cursor, limit=3)
            collected.extend(entry.seq for entry in page.entries)
            cursor = page.next_cursor
        assert collected == full  # no duplicates, no gaps, same order

    def test_impressions_stay_filtered_after_restart(
        self, graph, subscriptions, tmp_path
    ):
        live = build_feed(graph, subscriptions, tmp_path)
        for post in make_posts(60):
            live.ingest(post)
        first = live.read(USER, cursor=None, limit=5)
        rendered = [entry.seq for entry in first.entries]
        live.record_impressions(USER, rendered)

        recovered = build_feed(graph, subscriptions, tmp_path)
        recovered.recover(snapshot_after=False)
        refresh = recovered.read(USER, cursor=None, limit=500)
        served = {entry.seq for entry in refresh.entries}
        assert served.isdisjoint(rendered), "recovery re-served impressions"
        assert refresh.filtered >= len(rendered)

    def test_reader_paginating_mid_recovery_is_consistent(
        self, graph, subscriptions, tmp_path
    ):
        """Reads run concurrently with the WAL replay (and the capacity
        evictions it triggers): every page a reader sees is internally
        consistent — strictly descending seqs, no duplicates."""
        live = build_feed(
            graph,
            subscriptions,
            tmp_path,
            mailboxes=MailboxConfig(capacity=16, window=600.0),
        )
        for post in make_posts(200):  # capacity 16: replay evicts constantly
            live.ingest(post)
        expected = [entry.seq for entry in live.store.read_all(USER)]

        recovered = build_feed(
            graph,
            subscriptions,
            tmp_path,
            mailboxes=MailboxConfig(capacity=16, window=600.0),
        )
        failures: list[str] = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                page = recovered.read(USER, cursor=None, limit=10)
                seqs = [entry.seq for entry in page.entries]
                if seqs != sorted(seqs, reverse=True):
                    failures.append(f"page not descending: {seqs}")
                if len(set(seqs)) != len(seqs):
                    failures.append(f"duplicates in page: {seqs}")

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            recovered.recover(snapshot_after=False)
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=30)
        assert failures == []
        assert [entry.seq for entry in recovered.store.read_all(USER)] == expected


class TestStaleDegradedReads:
    def test_reads_are_stale_and_health_degraded_during_replay(
        self, graph, subscriptions, tmp_path, monkeypatch
    ):
        live = build_feed(graph, subscriptions, tmp_path)
        for post in make_posts(40):
            live.ingest(post)

        recovered = build_feed(graph, subscriptions, tmp_path)
        observed: list[tuple[bool, str]] = []
        original = DurableFeedLog._replay_record

        def spying(self, feed, record, *, source):
            if len(observed) == 20:  # one probe mid-replay
                report = feed.degradation_report()
                observed.append((feed.stale, report["status"]))
            else:
                observed.append((feed.stale, ""))
            return original(self, feed, record, source=source)

        monkeypatch.setattr(DurableFeedLog, "_replay_record", spying)
        recovered.recover(snapshot_after=False)
        assert all(stale for stale, _ in observed)
        assert ("degraded" in [status for _, status in observed])
        # Recovery done: fresh reads are authoritative again.
        assert recovered.stale is False
        assert recovered.degradation_report()["status"] == "ok"

    def test_http_feed_page_carries_stale_flag(self, graph, subscriptions):
        feed = build_feed(graph, subscriptions)
        for post in make_posts(10):
            feed.ingest(post)
        server = feed.serve(port=0)
        try:
            page = json.load(
                urllib.request.urlopen(
                    f"{server.url}/feed?user={USER}&limit=5", timeout=10
                )
            )
            assert page["stale"] is False
            feed.stale = True  # what recovery sets while replaying
            page = json.load(
                urllib.request.urlopen(
                    f"{server.url}/feed?user={USER}&limit=5", timeout=10
                )
            )
            assert page["stale"] is True
        finally:
            feed.stale = False
            server.stop()
            feed.close()


class TestRetryAfterJitter:
    def shed_values(self, graph, subscriptions, seed, count=6):
        feed = build_feed(
            graph,
            subscriptions,
            overload=OverloadController(max_delay=0.05),
            retry_jitter=0.5,
            jitter_seed=seed,
        )
        feed.service.overload.set_memory_pressure(True)
        values = []
        for post in make_posts(count):
            with pytest.raises(FeedOverloadError) as info:
                feed.ingest(post)
            values.append(info.value.retry_after)
        return values

    def test_fixed_seed_is_deterministic(self, graph, subscriptions):
        a = self.shed_values(graph, subscriptions, seed=42)
        b = self.shed_values(graph, subscriptions, seed=42)
        assert a == b

    def test_jitter_spreads_and_seeds_differ(self, graph, subscriptions):
        a = self.shed_values(graph, subscriptions, seed=42)
        b = self.shed_values(graph, subscriptions, seed=7)
        assert a != b
        assert len(set(a)) > 1  # actually spread, not a constant offset
        base = 0.001  # the un-jittered floor for an idle backlog
        for value in a:
            assert base <= value <= base * 1.5 + 1e-9

    def test_zero_jitter_is_exact(self, graph, subscriptions):
        feed = build_feed(
            graph, subscriptions, overload=OverloadController(max_delay=0.05)
        )
        feed.service.overload.set_memory_pressure(True)
        with pytest.raises(FeedOverloadError) as info:
            feed.ingest(make_posts(1)[0])
        assert info.value.retry_after == pytest.approx(0.001)


class TestRequestDeadlines:
    def test_overrunning_handler_answers_504_and_counts(
        self, graph, subscriptions
    ):
        feed = build_feed(graph, subscriptions)
        for post in make_posts(5):
            feed.ingest(post)
        server = feed.serve(port=0, request_deadline=1e-9)
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(
                    f"{server.url}/feed?user={USER}&limit=5", timeout=10
                )
            assert info.value.code == 504
            body = json.load(info.value)
            assert "deadline exceeded" in body["error"]
            assert feed.deadlines_exceeded == 1
        finally:
            server.stop()
            feed.close()

    def test_generous_deadline_is_invisible(self, graph, subscriptions):
        feed = build_feed(graph, subscriptions)
        for post in make_posts(40):
            feed.ingest(post)
        server = feed.serve(port=0, request_deadline=30.0)
        try:
            page = json.load(
                urllib.request.urlopen(
                    f"{server.url}/feed?user={USER}&limit=5", timeout=10
                )
            )
            assert page["entries"]
            assert feed.deadlines_exceeded == 0
        finally:
            server.stop()
            feed.close()

    def test_deadline_metric_exported(self, graph, subscriptions):
        from repro.obs import render_prometheus

        feed = build_feed(graph, subscriptions)
        server = feed.serve(port=0, request_deadline=1e-9)
        try:
            # Every route overruns a 1e-9 budget, /metrics included —
            # scrape the registry directly.
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{server.url}/feed/stats", timeout=10)
            assert info.value.code == 504
            text = render_prometheus(feed.registry)
            assert "repro_feed_deadline_exceeded_total 1" in text
        finally:
            server.stop()
            feed.close()
