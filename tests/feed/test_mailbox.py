"""Mailbox semantics: bounding, cursor pagination, the impression filter,
and the store's incremental accounting."""

from __future__ import annotations

import math

import pytest

from repro.core import Post
from repro.errors import ConfigurationError, UnknownUserError
from repro.feed import FeedEntry, Mailbox, MailboxConfig, MailboxStore
from repro.storage.accounting import estimate_mailbox_bytes


def make_post(i: int, ts: float | None = None, author: int = 1) -> Post:
    return Post(
        post_id=i, author=author, text=f"p{i}", timestamp=float(i if ts is None else ts), fingerprint=i
    )


def entry(seq: int, ts: float | None = None) -> FeedEntry:
    return FeedEntry(seq, post_id=seq, author=1, timestamp=float(seq if ts is None else ts))


def filled(n: int, capacity: int = 100) -> Mailbox:
    box = Mailbox()
    for seq in range(1, n + 1):
        box.append(entry(seq), capacity)
    return box


class TestConfig:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            MailboxConfig(capacity=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            MailboxConfig(window=0.0)
        with pytest.raises(ConfigurationError):
            MailboxConfig(window=float("nan"))

    def test_defaults_are_unbounded_in_time(self):
        config = MailboxConfig()
        assert config.capacity == 1024
        assert math.isinf(config.window)


class TestBounding:
    def test_capacity_evicts_oldest(self):
        box = filled(7, capacity=5)
        assert [e.seq for e in box.entries] == [3, 4, 5, 6, 7]
        assert box.evicted_capacity == 2

    def test_capacity_eviction_prunes_seen(self):
        box = filled(5, capacity=5)
        box.record_impressions([1, 2])
        box.append(entry(6), 5)
        box.append(entry(7), 5)
        assert box.seen == set()  # 1 and 2 fell off the left

    def test_window_expiry_drops_stale_prefix(self):
        box = filled(10)
        evicted, _ = box.expire(now=10.0, window=4.0)
        assert evicted == 5  # timestamps 1..5 < 10 - 4
        assert [e.seq for e in box.entries] == [6, 7, 8, 9, 10]
        assert box.evicted_expired == 5


class TestPagination:
    def test_first_page_is_newest_first(self):
        page = filled(10).page(cursor=None, limit=3)
        assert [e.seq for e in page.entries] == [10, 9, 8]
        assert page.next_cursor == 8

    def test_cursor_continues_without_overlap_or_gap(self):
        box = filled(10)
        seen: list[int] = []
        cursor = None
        while True:
            page = box.page(cursor, 3)
            seen.extend(e.seq for e in page.entries)
            if page.next_cursor is None:
                break
            cursor = page.next_cursor
        assert seen == list(range(10, 0, -1))

    def test_exhausted_page_has_no_cursor(self):
        page = filled(2).page(cursor=None, limit=10)
        assert page.next_cursor is None

    def test_cursor_is_stable_under_concurrent_appends(self):
        # New deliveries only prepend (higher seqs): a reader mid-paginate
        # sees exactly the snapshot below their cursor.
        box = filled(6)
        first = box.page(None, 3)
        for seq in range(7, 12):
            box.append(entry(seq), 100)
        rest = box.page(first.next_cursor, 100)
        assert [e.seq for e in first.entries] == [6, 5, 4]
        assert [e.seq for e in rest.entries] == [3, 2, 1]

    def test_filtered_entries_still_advance_the_cursor(self):
        box = filled(6)
        box.record_impressions([5, 4])
        page = box.page(None, 2)
        assert [e.seq for e in page.entries] == [6, 3]
        assert page.filtered == 2
        assert page.next_cursor == 3


class TestImpressions:
    def test_recorded_entries_never_reserve(self):
        box = filled(5)
        first = box.page(None, 5)
        box.record_impressions([e.seq for e in first.entries])
        refresh = box.page(None, 5)
        assert refresh.entries == ()
        assert refresh.filtered == 5

    def test_unknown_and_evicted_seqs_are_ignored(self):
        box = filled(4, capacity=3)  # seq 1 evicted
        recorded, ignored = box.record_impressions([1, 3, 99])
        assert (recorded, ignored) == (1, 2)

    def test_duplicate_impressions_count_once(self):
        box = filled(3)
        assert box.record_impressions([2, 2, 2]) == (1, 0)


class TestStore:
    def make_store(self, **kwargs) -> MailboxStore:
        return MailboxStore([100, 200, 300], MailboxConfig(**kwargs))

    def test_fanout_delivers_one_seq_to_all_receivers(self):
        store = self.make_store()
        seq, delivered = store.fanout(make_post(1), [100, 300])
        assert delivered == 2
        assert [e.seq for e in store.read_all(100)] == [seq]
        assert [e.seq for e in store.read_all(300)] == [seq]
        assert store.read_all(200) == []

    def test_mailboxes_materialize_lazily(self):
        store = self.make_store()
        assert store.mailbox_count == 0
        store.fanout(make_post(1), [100])
        assert store.mailbox_count == 1

    def test_unknown_user_raises(self):
        store = self.make_store()
        with pytest.raises(UnknownUserError):
            store.read(999, None, 10)
        with pytest.raises(UnknownUserError):
            store.record_impressions(999, [1])
        with pytest.raises(UnknownUserError):
            store.fanout(make_post(1), [999])

    def test_read_validates_cursor_and_limit(self):
        store = self.make_store()
        with pytest.raises(ConfigurationError):
            store.read(100, None, 0)
        with pytest.raises(ConfigurationError):
            store.read(100, 0, 10)

    def test_empty_user_set_is_rejected(self):
        with pytest.raises(ConfigurationError):
            MailboxStore([])

    def test_expire_runs_on_stream_time(self):
        store = self.make_store(window=4.0)
        for i in range(1, 11):
            store.fanout(make_post(i), [100, 200])
        dropped = store.expire(now=10.0)
        assert dropped == 10  # 5 stale entries in each of two mailboxes
        assert store.evicted_expired == 10

    def test_incremental_accounting_matches_recount(self):
        store = self.make_store(capacity=6, window=5.0)
        for i in range(1, 21):
            store.fanout(make_post(i), [100, 200] if i % 2 else [100, 300])
        store.record_impressions(100, [e.seq for e in store.read(100, None, 3).entries])
        store.expire(now=17.0)
        boxes = store._boxes.values()
        assert store.total_entries == sum(len(b.entries) for b in boxes)
        assert store.total_seen == sum(len(b.seen) for b in boxes)
        assert store.approx_bytes() == estimate_mailbox_bytes(
            store.mailbox_count, store.total_entries, store.total_seen
        )

    def test_approx_bytes_shrinks_after_expiry(self):
        store = self.make_store(window=3.0)
        for i in range(1, 11):
            store.fanout(make_post(i), [100])
        before = store.approx_bytes()
        store.expire(now=10.0)
        assert store.approx_bytes() < before
