"""``repro serve`` in a real subprocess: startup banner, live ingest and
reads over HTTP, clean SIGTERM shutdown with a faithful summary."""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import urllib.request

import pytest

from repro.authors import AuthorGraph
from repro.io import write_graph_json, write_posts_jsonl, write_subscriptions_json
from repro.multiuser import SubscriptionTable

from .conftest import AUTHORS, EDGES, SUBSCRIPTIONS_SPEC, make_posts


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-trace")
    write_graph_json(AuthorGraph(nodes=AUTHORS, edges=EDGES), root / "graph.json")
    write_subscriptions_json(
        SubscriptionTable(SUBSCRIPTIONS_SPEC), root / "subscriptions.json"
    )
    write_posts_jsonl(make_posts(60), root / "posts.jsonl")
    return root


def start_server(trace, *extra: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(trace / "graph.json"),
            "--subscriptions", str(trace / "subscriptions.json"),
            "--algorithm", "s_unibin",
            "--port", "0",
            "--lambda-c", "8", "--lambda-t", "60", "--lambda-a", "0.5",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    banner = proc.stdout.readline()
    assert "serving feeds on http://" in banner, banner
    return proc, "http://" + banner.split("http://")[1].split()[0]


def test_serve_roundtrip_and_clean_shutdown(trace):
    proc, url = start_server(trace, "--posts", str(trace / "posts.jsonl"))
    try:
        users = sorted(json.loads((trace / "subscriptions.json").read_text()), key=int)
        served = 0
        for user in users:
            page = json.load(
                urllib.request.urlopen(f"{url}/feed?user={user}&limit=50", timeout=10)
            )
            served += len(page["entries"])
        assert served > 0
        health = urllib.request.urlopen(url + "/healthz", timeout=10).read()
        assert health == b"ok\n"
    finally:
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0
    assert "preloaded 60 posts" in err
    assert "feed: 60 posts received (60 processed, 0 shed)" in out
    assert f"{served} entries" in out


def test_serve_rejects_unknown_algorithm(trace):
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(trace / "graph.json"),
            "--subscriptions", str(trace / "subscriptions.json"),
            "--algorithm", "bogus",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "unknown multi-user algorithm" in result.stderr
