"""``repro serve`` in a real subprocess: startup banner, live ingest and
reads over HTTP, clean SIGTERM shutdown with a faithful summary."""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import urllib.request

import pytest

from repro.authors import AuthorGraph
from repro.io import write_graph_json, write_posts_jsonl, write_subscriptions_json
from repro.multiuser import SubscriptionTable

from .conftest import AUTHORS, EDGES, SUBSCRIPTIONS_SPEC, make_posts


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-trace")
    write_graph_json(AuthorGraph(nodes=AUTHORS, edges=EDGES), root / "graph.json")
    write_subscriptions_json(
        SubscriptionTable(SUBSCRIPTIONS_SPEC), root / "subscriptions.json"
    )
    write_posts_jsonl(make_posts(60), root / "posts.jsonl")
    return root


def start_server(trace, *extra: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(trace / "graph.json"),
            "--subscriptions", str(trace / "subscriptions.json"),
            "--algorithm", "s_unibin",
            "--port", "0",
            "--lambda-c", "8", "--lambda-t", "60", "--lambda-a", "0.5",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    banner = proc.stdout.readline()
    assert "serving feeds on http://" in banner, banner
    return proc, "http://" + banner.split("http://")[1].split()[0]


def test_serve_roundtrip_and_clean_shutdown(trace):
    proc, url = start_server(trace, "--posts", str(trace / "posts.jsonl"))
    try:
        users = sorted(json.loads((trace / "subscriptions.json").read_text()), key=int)
        served = 0
        for user in users:
            page = json.load(
                urllib.request.urlopen(f"{url}/feed?user={user}&limit=50", timeout=10)
            )
            served += len(page["entries"])
        assert served > 0
        health = urllib.request.urlopen(url + "/healthz", timeout=10).read()
        assert health == b"ok\n"
    finally:
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0
    assert "preloaded 60 posts" in err
    assert "feed: 60 posts received (60 processed, 0 shed, 0 deduplicated)" in out
    assert f"{served} entries" in out


def test_serve_rejects_unknown_algorithm(trace):
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(trace / "graph.json"),
            "--subscriptions", str(trace / "subscriptions.json"),
            "--algorithm", "bogus",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "unknown multi-user algorithm" in result.stderr


def post_json(url: str, payload) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return json.load(urllib.request.urlopen(request, timeout=10))


def test_serve_durable_roundtrip_and_flush_summary(trace, tmp_path):
    wal_dir = tmp_path / "wal"
    proc, url = start_server(
        trace, "--wal-dir", str(wal_dir), "--fsync", "interval"
    )
    try:
        posts = [
            json.loads(line)
            for line in (trace / "posts.jsonl").read_text().splitlines()
        ][:20]
        for i, post in enumerate(posts):
            post["idempotency_key"] = f"cli-{i}"
            reply = post_json(url + "/posts", post)
            assert reply["deduplicated"] is False
        # A retried key answers from the dedup window, no double fanout.
        retry = dict(posts[3], idempotency_key="cli-3")
        reply = post_json(url + "/posts", retry)
        assert reply["deduplicated"] is True
    finally:
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0, err
    assert "durability: flushed clean" in out
    assert "1 idempotent retries answered" in out
    assert list(wal_dir.glob("snapshot-*.ckpt")), "shutdown flush wrote no snapshot"


def test_serve_refuses_nonempty_wal_dir_without_recover(trace, tmp_path):
    wal_dir = tmp_path / "wal"
    wal_dir.mkdir()
    (wal_dir / "wal-000001.log").write_bytes(b"")
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(trace / "graph.json"),
            "--subscriptions", str(trace / "subscriptions.json"),
            "--wal-dir", str(wal_dir),
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "pass --recover" in result.stderr


def test_serve_recover_flag_needs_wal_dir(trace):
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(trace / "graph.json"),
            "--subscriptions", str(trace / "subscriptions.json"),
            "--recover",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "--recover needs --wal-dir" in result.stderr


def test_serve_recovers_preloaded_state_across_restart(trace, tmp_path):
    wal_dir = tmp_path / "wal"
    proc, url = start_server(
        trace,
        "--wal-dir", str(wal_dir),
        "--posts", str(trace / "posts.jsonl"),
    )
    try:
        baseline = json.load(
            urllib.request.urlopen(url + "/feed?user=100&limit=50", timeout=10)
        )
    finally:
        proc.kill()  # SIGKILL: no flush, recovery rebuilds from WAL alone
        proc.communicate(timeout=60)

    proc, url = start_server(trace, "--wal-dir", str(wal_dir), "--recover")
    try:
        recovered = json.load(
            urllib.request.urlopen(url + "/feed?user=100&limit=50", timeout=10)
        )
        assert recovered["entries"] == baseline["entries"]
        assert recovered["stale"] is False
    finally:
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0, err
    assert "recovered from" in err


def test_serve_exits_nonzero_when_shutdown_flush_fails(trace, tmp_path):
    import os

    wal_dir = tmp_path / "wal"
    env = dict(os.environ)
    env["REPRO_FEED_FAULT_PLAN"] = json.dumps({"fail_snapshots": 100})
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(trace / "graph.json"),
            "--subscriptions", str(trace / "subscriptions.json"),
            "--algorithm", "s_unibin",
            "--port", "0",
            "--wal-dir", str(wal_dir),
            "--lambda-c", "8", "--lambda-t", "60", "--lambda-a", "0.5",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    assert "serving feeds on http://" in banner, banner
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=60)
    assert proc.returncode == 1
    assert "durability flush FAILED" in err
    assert "durability: FLUSH FAILED" in out
