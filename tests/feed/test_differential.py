"""Fanout correctness differential.

For every algorithm the registry exposes, the feed path must be a pure
materialization of the engine: the mailbox contents after ingesting a
stream equal the receiver sets a second, feed-less engine produces from
the same seed/dataset — per user, in order. Mailboxes are sized so
nothing evicts; any divergence is a fanout bug, not bounding.

``p_*`` names cover all four algorithms (``s_indexed_unibin`` does not
exist — the shared-component layer has no indexed variant), and the
supervised case injects a mid-stream worker crash: recovery replays the
journal, so the mailboxes must still match the crash-free reference.
"""

from __future__ import annotations

import math

import pytest

from repro.feed import FeedService, MailboxConfig
from repro.multiuser import make_multiuser
from repro.parallel import ParallelSharedMultiUser
from repro.resilience import WorkerFaultPlan
from repro.service import DiversificationService

from .conftest import THRESHOLDS

ALGORITHMS = ("p_unibin", "p_neighborbin", "p_cliquebin", "p_indexed_unibin")

UNBOUNDED = MailboxConfig(capacity=100_000, window=math.inf)


def reference_deliveries(engine, posts) -> dict[int, list[int]]:
    """Per-user post_id sequences from a plain engine replay."""
    delivered: dict[int, list[int]] = {}
    try:
        for post, receivers in zip(posts, engine.offer_batch(posts)):
            for user in receivers:
                delivered.setdefault(user, []).append(post.post_id)
    finally:
        engine.close()
    return delivered


def feed_deliveries(feed: FeedService, posts) -> dict[int, list[int]]:
    """Per-user post_id sequences read back out of the mailboxes."""
    feed.replay(posts)
    delivered: dict[int, list[int]] = {}
    for user in feed.store.users:
        entries = feed.store.read_all(user)  # newest-first
        if entries:
            delivered[user] = [e.post_id for e in reversed(entries)]
    feed.close()
    return delivered


@pytest.mark.parametrize("name", ALGORITHMS)
def test_mailboxes_equal_engine_receiver_sets(name, graph, subscriptions, posts):
    reference = reference_deliveries(
        make_multiuser(name, THRESHOLDS, graph, subscriptions, workers=2),
        posts,
    )
    feed = FeedService(
        DiversificationService(
            make_multiuser(name, THRESHOLDS, graph, subscriptions, workers=2)
        ),
        mailboxes=UNBOUNDED,
    )
    assert feed_deliveries(feed, posts) == reference
    assert reference  # the differential is not vacuous


def test_supervised_crash_recovery_preserves_fanout(graph, subscriptions, posts):
    algorithm = "unibin"
    reference = reference_deliveries(
        make_multiuser("p_unibin", THRESHOLDS, graph, subscriptions, workers=2),
        posts,
    )
    engine = ParallelSharedMultiUser(
        algorithm,
        THRESHOLDS,
        graph,
        subscriptions,
        workers=2,
        batch_size=16,
        supervised=True,
        fault_plans={0: WorkerFaultPlan(crash_on_batch=3)},
    )
    feed = FeedService(DiversificationService(engine), mailboxes=UNBOUNDED)
    try:
        feed.replay(posts)
        delivered = {
            user: [e.post_id for e in reversed(feed.store.read_all(user))]
            for user in feed.store.users
            if feed.store.read_all(user)
        }
        status = engine.supervision_status()
    finally:
        feed.close()
    assert delivered == reference
    assert status["restarts"] >= 1  # the fault actually fired
