"""Rolling snapshots: CRC validation, corrupt-snapshot fallback, full-disk
absorption, WAL truncation keyed to snapshot retention."""

from __future__ import annotations

import pytest

from repro.core import Thresholds
from repro.errors import CheckpointError
from repro.feed import DurabilityConfig, FeedService, MailboxConfig
from repro.feed.durable import SnapshotStore
from repro.feed.wal import list_segments
from repro.multiuser import make_multiuser
from repro.resilience import FeedFaultPlan
from repro.service import DiversificationService
from repro.storage.framing import write_framed

from .conftest import THRESHOLDS, make_posts


def build_feed(graph, subscriptions, wal_dir, **durability_kwargs):
    durability_kwargs.setdefault("fsync", "never")
    engine = make_multiuser("s_unibin", THRESHOLDS, graph, subscriptions)
    return FeedService(
        DiversificationService(engine),
        mailboxes=MailboxConfig(capacity=64, window=120.0),
        expire_every=16,
        durability=DurabilityConfig(wal_dir=wal_dir, **durability_kwargs),
    )


class TestSnapshotStore:
    def test_save_prunes_to_keep(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for i in range(4):
            store.save({"version": 1, "i": i})
        names = [p.name for p in store.list()]
        assert names == ["snapshot-000003.ckpt", "snapshot-000004.ckpt"]
        payload, path, skipped = store.load_best()
        assert payload["i"] == 3 and path.name == names[-1] and skipped == []

    def test_load_best_skips_corrupt_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        store.save({"version": 1, "i": 0})
        store.save({"version": 1, "i": 1})
        newest = store.list()[-1]
        raw = bytearray(newest.read_bytes())
        raw[-3] ^= 0xFF  # bit rot inside the newest snapshot's payload
        newest.write_bytes(bytes(raw))
        payload, path, skipped = store.load_best()
        assert payload["i"] == 0
        assert path.name == "snapshot-000001.ckpt"
        assert len(skipped) == 1 and "CRC" in skipped[0][1]

    def test_load_best_skips_torn_write(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        store.save({"version": 1, "i": 0})
        torn = tmp_path / "snapshot-000002.ckpt"
        write_framed(torn, {"version": 1, "i": 1})
        torn.write_bytes(torn.read_bytes()[:-10])
        payload, path, skipped = store.load_best()
        assert payload["i"] == 0
        assert "truncated" in skipped[0][1]

    def test_all_corrupt_returns_none_with_trail(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        store.save({"version": 1})
        store.list()[0].write_bytes(b"garbage")
        payload, path, skipped = store.load_best()
        assert payload is None and path is None and len(skipped) == 1


class TestDurableSnapshots:
    def test_rolling_snapshot_rotates_and_prunes_wal(
        self, graph, subscriptions, tmp_path
    ):
        feed = build_feed(
            graph, subscriptions, tmp_path, snapshot_every=25, keep_snapshots=2
        )
        for post in make_posts(120):
            feed.ingest(post)
        durable = feed.durable
        assert durable.snapshots_taken >= 3
        # WAL segments older than the oldest retained snapshot are gone.
        snaps = durable.snapshots.list()
        assert len(snaps) == 2
        from repro.storage.framing import read_framed

        oldest_needed = min(
            int(read_framed(p)["wal_segment"]) for p in snaps
        )
        on_disk = [p for p in list_segments(tmp_path)]
        from repro.feed.wal import segment_index

        assert all(segment_index(p) >= oldest_needed for p in on_disk)
        feed.close()

    def test_corrupt_newest_snapshot_falls_back_to_longer_replay(
        self, graph, subscriptions, tmp_path
    ):
        posts = make_posts(120)
        live = build_feed(graph, subscriptions, tmp_path, snapshot_every=25)
        for post in posts:
            live.ingest(post)
        expected = live.store.state_dict()
        # Corrupt the newest snapshot; recovery must use the previous one
        # and replay a longer WAL tail to the same state.
        newest = live.durable.snapshots.list()[-1]
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))

        recovered = build_feed(graph, subscriptions, tmp_path, snapshot_every=25)
        report = recovered.recover()
        assert report.used_snapshot != newest.name
        assert len(report.snapshots_skipped) == 1
        assert recovered.store.state_dict() == expected
        recovered.close()

    def test_injected_full_disk_absorbed_and_counted(
        self, graph, subscriptions, tmp_path
    ):
        feed = build_feed(
            graph,
            subscriptions,
            tmp_path,
            snapshot_every=25,
            fault_plan=FeedFaultPlan(fail_snapshots=2),
        )
        posts = make_posts(120)
        for post in posts:
            feed.ingest(post)
        assert feed.durable.snapshot_failures == 2
        assert feed.durable.snapshots_taken >= 1  # disk "recovered" later
        # Recovery still lands on the exact live state despite the misses.
        expected = feed.store.state_dict()
        recovered = build_feed(graph, subscriptions, tmp_path, snapshot_every=25)
        recovered.recover()
        assert recovered.store.state_dict() == expected
        recovered.close()

    def test_flush_failure_propagates_from_close(
        self, graph, subscriptions, tmp_path
    ):
        feed = build_feed(
            graph,
            subscriptions,
            tmp_path,
            snapshot_every=10_000,
            fault_plan=FeedFaultPlan(fail_snapshots=1),
        )
        for post in make_posts(10):
            feed.ingest(post)
        with pytest.raises(OSError, match="No space left"):
            feed.close()

    def test_pruned_wal_with_unreadable_snapshots_refuses_recovery(
        self, graph, subscriptions, tmp_path
    ):
        live = build_feed(
            graph, subscriptions, tmp_path, snapshot_every=20, keep_snapshots=1
        )
        for post in make_posts(100):
            live.ingest(post)
        assert min(
            int(p.name.split("-")[1].split(".")[0]) for p in list_segments(tmp_path)
        ) > 1
        for snap in live.durable.snapshots.list():
            snap.write_bytes(b"garbage")
        recovered = build_feed(graph, subscriptions, tmp_path)
        with pytest.raises(CheckpointError, match="cannot be reconstructed"):
            recovered.recover()
