"""The write-ahead log: framing, torn tails, fsync policies, segments —
and the chaos injectors (:class:`FeedFaultPlan`) that tear it on purpose."""

from __future__ import annotations

import os

import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.feed.wal import (
    WriteAheadLog,
    decode_frames,
    encode_record,
    list_segments,
    segment_path,
)
from repro.resilience import FeedFaultPlan


class TestFraming:
    def test_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        records = [
            {"t": "post", "seq": 1, "post": {"post_id": 7}, "receivers": [1, 2]},
            {"t": "impressions", "user": 100, "seqs": [1]},
            {"t": "expire", "now": 42.5},
        ]
        for record in records:
            wal.append(record)
        wal.close()
        read, torn = wal.read_segment(1)
        assert read == records
        assert torn == 0

    def test_torn_tail_detected_and_reported(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append({"t": "expire", "now": 1.0})
        wal.append({"t": "expire", "now": 2.0})
        wal.close()
        path = segment_path(tmp_path, 1)
        raw = path.read_bytes()
        # Cut mid-way through the second frame: a torn append.
        path.write_bytes(raw[: len(raw) - 5])
        records, torn = decode_frames(path.read_bytes(), source=str(path))
        assert [r["now"] for r in records] == [1.0]
        assert torn > 0

    def test_every_truncation_point_is_either_clean_or_torn(self, tmp_path):
        """No truncation offset can ever decode garbage: each prefix yields
        exactly the records whose frames fit, and counts the rest torn."""
        wal = WriteAheadLog(tmp_path, fsync="never")
        for i in range(5):
            wal.append({"t": "expire", "now": float(i)})
        wal.close()
        raw = segment_path(tmp_path, 1).read_bytes()
        boundaries = []
        offset = 0
        records, _ = decode_frames(raw)
        for record in records:
            offset += len(encode_record(record))
            boundaries.append(offset)
        assert boundaries[-1] == len(raw)
        for cut in range(len(raw) + 1):
            got, torn = decode_frames(raw[:cut])
            complete = sum(1 for b in boundaries if b <= cut)
            assert len(got) == complete
            assert torn == cut - (boundaries[complete - 1] if complete else 0)

    def test_corruption_at_rest_raises_not_replays(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append({"t": "expire", "now": 1.0})
        wal.close()
        path = segment_path(tmp_path, 1)
        raw = bytearray(path.read_bytes())
        # A CRC-valid frame whose payload is not a WAL record: forge one.
        import json
        import struct
        import zlib

        payload = json.dumps(["not", "a", "record"]).encode()
        raw = struct.pack("<QI", len(payload), zlib.crc32(payload)) + payload
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="damaged at rest"):
            wal.read_segment(1)

    def test_truncate_torn_on_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append({"t": "expire", "now": 1.0})
        wal.close()
        path = segment_path(tmp_path, 1)
        path.write_bytes(path.read_bytes() + b"\x13\x37partial")
        reopened = WriteAheadLog(tmp_path, fsync="never")
        torn = reopened.open_segment(1, truncate_torn=True)
        assert torn == 9
        reopened.append({"t": "expire", "now": 2.0})
        reopened.close()
        records, torn_after = reopened.read_segment(1)
        assert [r["now"] for r in records] == [1.0, 2.0]
        assert torn_after == 0


class TestPoliciesAndSegments:
    def test_bad_policy_and_interval_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fsync policy"):
            WriteAheadLog(tmp_path, fsync="sometimes")
        with pytest.raises(ConfigurationError, match="fsync_interval"):
            WriteAheadLog(tmp_path, fsync_interval=0)

    def test_interval_policy_group_commits(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="interval", fsync_interval=4)
        for i in range(10):
            wal.append({"t": "expire", "now": float(i)})
        assert wal.fsyncs_total == 2  # at appends 4 and 8
        wal.close()  # close forces the final fsync
        assert wal.fsyncs_total == 3

    def test_always_policy_fsyncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        for i in range(3):
            wal.append({"t": "expire", "now": float(i)})
        assert wal.fsyncs_total == 3
        wal.close()

    def test_rotation_and_pruning(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append({"t": "expire", "now": 1.0})
        assert wal.rotate() == 2
        wal.append({"t": "expire", "now": 2.0})
        assert wal.rotate() == 3
        assert wal.segments_on_disk() == 3
        removed = wal.prune_segments(3)
        assert [p.name for p in removed] == ["wal-000001.log", "wal-000002.log"]
        assert [p.name for p in list_segments(tmp_path)] == ["wal-000003.log"]
        wal.close()

    def test_counters_track_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append({"t": "post", "seq": 1, "post": {}, "receivers": []})
        wal.append({"t": "expire", "now": 1.0})
        wal.append({"t": "expire", "now": 2.0})
        assert wal.records_total == 3
        assert wal.records_by_type == {"post": 1, "expire": 2}
        assert wal.bytes_total == os.path.getsize(segment_path(tmp_path, 1))
        restored = WriteAheadLog(tmp_path, fsync="never")
        restored.load_counters(wal.snapshot_counters())
        assert restored.snapshot_counters() == wal.snapshot_counters()
        wal.close()


def _exit_raises(monkeypatch):
    """Stand in for ``os._exit``: raise instead of dying (the real seam
    never returns, so the raise models the post-kill control flow)."""
    from repro.resilience import faults

    def fake_exit(code):
        raise SystemExit(code)

    monkeypatch.setattr(faults, "_exit", fake_exit)


class TestFaultPlan:
    def test_kill_on_append_writes_full_frame_then_exits(self, tmp_path, monkeypatch):
        _exit_raises(monkeypatch)
        plan = FeedFaultPlan(kill_on_append=2)
        wal = WriteAheadLog(tmp_path, fsync="never", fault_plan=plan)
        wal.append({"t": "expire", "now": 1.0})
        with pytest.raises(SystemExit) as info:
            wal.append({"t": "expire", "now": 2.0})
        assert info.value.code == 23
        # The killed append is durable: both records decode cleanly.
        records, torn = decode_frames(segment_path(tmp_path, 1).read_bytes())
        assert [r["now"] for r in records] == [1.0, 2.0]
        assert torn == 0

    def test_torn_tail_on_append_leaves_partial_frame(self, tmp_path, monkeypatch):
        _exit_raises(monkeypatch)
        plan = FeedFaultPlan(torn_tail_on_append=2, torn_tail_bytes=7)
        wal = WriteAheadLog(tmp_path, fsync="never", fault_plan=plan)
        wal.append({"t": "expire", "now": 1.0})
        with pytest.raises(SystemExit):
            wal.append({"t": "expire", "now": 2.0})
        records, torn = decode_frames(segment_path(tmp_path, 1).read_bytes())
        assert [r["now"] for r in records] == [1.0]
        assert torn == 7

    def test_slow_fsync_delays_sync(self, tmp_path, monkeypatch):
        import time

        plan = FeedFaultPlan(slow_fsync_seconds=0.05)
        wal = WriteAheadLog(tmp_path, fsync="always", fault_plan=plan)
        start = time.perf_counter()
        wal.append({"t": "expire", "now": 1.0})
        assert time.perf_counter() - start >= 0.05
        wal.close()

    def test_fail_snapshots_injects_enospc(self):
        plan = FeedFaultPlan(fail_snapshots=2)
        with pytest.raises(OSError, match="No space left"):
            plan.on_snapshot()
        with pytest.raises(OSError):
            plan.on_snapshot()
        plan.on_snapshot()  # budget exhausted: disk "recovers"

    def test_from_dict_validates_keys(self):
        plan = FeedFaultPlan.from_dict({"kill_on_append": 5, "fail_snapshots": 1})
        assert plan.kill_on_append == 5
        with pytest.raises(ConfigurationError):
            FeedFaultPlan.from_dict({"explode": True})
