"""The durability differential: kill the feed at EVERY WAL offset.

The contract under test is absolute: truncate the write-ahead log at any
byte — every record boundary (a crash between appends) and inside every
record (a torn append) — recover, re-drive the ops the crash lost (the
client retry path, idempotency keys attached), and the final mailboxes,
seen sets, engine state and pagination are **identical** to the run that
never crashed. All four sharded ``p_*`` algorithms are driven through the
same harness; the recovery path itself cross-checks engine determinism
(recorded receiver set and sequence number must reproduce exactly).
"""

from __future__ import annotations

import pytest

from repro.feed import DurabilityConfig, FeedService, MailboxConfig
from repro.feed.wal import decode_frames, encode_record, segment_path
from repro.multiuser import PARALLEL_NAMES, make_multiuser
from repro.resilience import snapshot_engine
from repro.service import DiversificationService

from .conftest import THRESHOLDS, make_posts

POSTS = 48
IMPRESSION_EVERY = 6  # one impression batch per this many posts
EXPIRE_EVERY = 16
READ_USERS = (100, 200, 300)


def build_feed(algorithm, graph, subscriptions, wal_dir):
    engine = make_multiuser(
        algorithm, THRESHOLDS, graph, subscriptions, workers=1
    )
    service = DiversificationService(engine)
    return FeedService(
        service,
        mailboxes=MailboxConfig(capacity=64, window=120.0),
        expire_every=EXPIRE_EVERY,
        durability=DurabilityConfig(
            wal_dir=wal_dir,
            snapshot_every=100_000,  # no rolling snapshot: pure-WAL recovery
            fsync="never",
        ),
    )


def script_ops():
    """The client-visible op script: posts (with idempotency keys) and
    impression batches. Impression seqs are computed *at execution time*
    from the current feed state, exactly as a client rendering a page
    would — deterministic given identical state."""
    ops = []
    for i, post in enumerate(make_posts(POSTS)):
        ops.append(("post", post, f"idem-{i}"))
        if (i + 1) % IMPRESSION_EVERY == 0:
            ops.append(("impressions", READ_USERS[i % len(READ_USERS)]))
    return ops


def apply_op(feed, op):
    if op[0] == "post":
        feed.ingest(op[1], idempotency_key=op[2])
    else:
        user = op[1]
        seqs = [entry.seq for entry in feed.store.read_all(user)[:5]]
        feed.record_impressions(user, seqs)


def fingerprint(feed):
    """Everything the differential compares: full mailbox state (entries,
    seen sets, sequence counter), the engine checkpoint, the idempotency
    window, and the pages a real reader would receive."""
    pages = {
        user: [
            (entry.seq, entry.post_id)
            for entry in feed.store.read_all(user, page_size=7)
        ]
        for user in READ_USERS
    }
    return {
        "store": feed.store.state_dict(),
        "engine": snapshot_engine(feed.service.engine),
        "dedup": list(feed.durable._dedup.items()),
        "pages": pages,
    }


def cut_points(raw: bytes) -> list[int]:
    """Every record boundary plus a torn cut inside every record."""
    records, torn = decode_frames(raw)
    assert torn == 0
    cuts = [0]
    offset = 0
    for record in records:
        frame_len = len(encode_record(record))
        cuts.append(offset + frame_len // 2)  # torn: mid-record
        cuts.append(offset + frame_len)  # clean: record boundary
        offset += frame_len
    assert offset == len(raw)
    return cuts


@pytest.mark.parametrize("algorithm", PARALLEL_NAMES)
def test_kill_at_every_wal_offset_recovers_identically(
    algorithm, graph, subscriptions, tmp_path
):
    ops = script_ops()

    # -- the uninterrupted reference run --------------------------------
    ref_dir = tmp_path / "ref"
    reference = build_feed(algorithm, graph, subscriptions, ref_dir)
    for op in ops:
        apply_op(reference, op)
    expected = fingerprint(reference)
    raw = segment_path(ref_dir, 1).read_bytes()
    records, _ = decode_frames(raw)
    # Map each WAL record count -> how many *script ops* it covers
    # (expire records are internal cadence, not client ops).
    ops_covered = []
    covered = 0
    for record in records:
        if record["t"] != "expire":
            covered += 1
        ops_covered.append(covered)

    cuts = cut_points(raw)
    assert len(cuts) == 2 * len(records) + 1

    for cut in cuts:
        wal_dir = tmp_path / f"cut-{cut}"
        wal_dir.mkdir()
        segment_path(wal_dir, 1).write_bytes(raw[:cut])

        recovered = build_feed(algorithm, graph, subscriptions, wal_dir)
        report = recovered.recover(snapshot_after=False)
        applied_records = report.records_total
        applied_ops = ops_covered[applied_records - 1] if applied_records else 0

        # The client retries the last acked op too (its timeout fired even
        # though the write committed): with an idempotency key that retry
        # must answer from the dedup window, not fan out twice.
        if applied_ops and ops[applied_ops - 1][0] == "post":
            before = recovered.posts_deduped
            apply_op(recovered, ops[applied_ops - 1])
            assert recovered.posts_deduped == before + 1

        for op in ops[applied_ops:]:
            apply_op(recovered, op)

        assert fingerprint(recovered) == expected, (
            f"{algorithm}: state diverged after crash at WAL byte {cut} "
            f"({applied_records} records survived)"
        )


def test_torn_tail_is_truncated_and_overwritten(graph, subscriptions, tmp_path):
    """After recovery from a torn tail the WAL keeps appending cleanly at
    the truncation point — the torn bytes never resurface."""
    feed = build_feed("p_unibin", graph, subscriptions, tmp_path)
    for op in script_ops():
        apply_op(feed, op)
    raw = segment_path(tmp_path, 1).read_bytes()
    torn_cut = len(raw) - 4
    segment_path(tmp_path, 1).write_bytes(raw[:torn_cut])

    recovered = build_feed("p_unibin", graph, subscriptions, tmp_path)
    report = recovered.recover(snapshot_after=False)
    assert report.torn_bytes > 0
    extra = make_posts(POSTS + 4)[-4:]
    for i, post in enumerate(extra):
        recovered.ingest(post, idempotency_key=f"extra-{i}")
    records, torn = decode_frames(segment_path(tmp_path, 1).read_bytes())
    assert torn == 0
    assert sum(1 for r in records if r["t"] == "post") == (
        recovered.posts_processed
    )


def test_idempotency_survives_restart(graph, subscriptions, tmp_path):
    """A key acked before the crash still dedups after recovery."""
    posts = make_posts(10)
    live = build_feed("p_unibin", graph, subscriptions, tmp_path)
    for i, post in enumerate(posts):
        live.ingest(post, idempotency_key=f"k{i}")
    deliveries = live.store.deliveries

    recovered = build_feed("p_unibin", graph, subscriptions, tmp_path)
    recovered.recover(snapshot_after=False)
    for i, post in enumerate(posts):
        receivers, deduped = recovered.ingest_detailed(
            post, idempotency_key=f"k{i}"
        )
        assert deduped, f"retry of k{i} fanned out twice after recovery"
    assert recovered.store.deliveries == deliveries
